"""Tests for the progressive linear scaling rule (Eqs. 1-3)."""

import pytest

from repro.core import LrRamp, ramp_for_scale, ramp_from_runtime_info, ramp_to_runtime_info
from repro.training import RuntimeInfo


class TestLrRamp:
    def test_equation3_piecewise(self):
        ramp = LrRamp(start_iteration=100, length=50, base_lr=0.1, target_lr=0.4)
        assert ramp.lr_at(50) == pytest.approx(0.1)  # before T_0
        assert ramp.lr_at(100) == pytest.approx(0.1)  # t = T_0
        assert ramp.lr_at(125) == pytest.approx(0.25)  # halfway
        assert ramp.lr_at(150) == pytest.approx(0.4)  # t = T_0 + T
        assert ramp.lr_at(1000) == pytest.approx(0.4)  # afterwards

    def test_monotone_for_scale_up(self):
        ramp = LrRamp(start_iteration=0, length=100, base_lr=0.1, target_lr=0.8)
        values = [ramp.lr_at(t) for t in range(0, 120)]
        assert values == sorted(values)

    def test_scale_down_ramp_decreases(self):
        """Scaling in halves the batch: the LR ramps *down* (Eq. 1 works
        both directions)."""
        ramp = ramp_for_scale(0.4, 0.5, start_iteration=0, length=10)
        assert ramp.target_lr == pytest.approx(0.2)
        assert ramp.lr_at(5) < ramp.lr_at(0)

    def test_zero_length_jumps(self):
        ramp = LrRamp(start_iteration=10, length=0, base_lr=0.1, target_lr=0.2)
        assert ramp.lr_at(10) == pytest.approx(0.2)

    def test_scale_factor_is_k(self):
        ramp = ramp_for_scale(0.1, 4.0, start_iteration=0)
        assert ramp.scale_factor == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LrRamp(start_iteration=0, length=-1, base_lr=0.1, target_lr=0.2)
        with pytest.raises(ValueError):
            LrRamp(start_iteration=0, length=10, base_lr=0.0, target_lr=0.2)
        with pytest.raises(ValueError):
            ramp_for_scale(0.1, 0.0, start_iteration=0)

    def test_unit_scale_has_no_ramp(self):
        ramp = ramp_for_scale(0.1, 1.0, start_iteration=5, length=100)
        assert ramp.length == 0
        assert ramp.lr_at(5) == pytest.approx(0.1)


class TestRuntimeInfoRoundtrip:
    def test_ramp_survives_replication(self):
        """An in-flight ramp is part of the replicable state (Table II):
        a new worker must continue the ramp mid-flight."""
        info = RuntimeInfo()
        ramp = LrRamp(start_iteration=40, length=100, base_lr=0.1, target_lr=0.4)
        ramp_to_runtime_info(info, ramp)
        restored = ramp_from_runtime_info(RuntimeInfo.from_dict(info.to_dict()))
        assert restored == ramp
        assert restored.lr_at(90) == pytest.approx(ramp.lr_at(90))

    def test_no_ramp_is_none(self):
        assert ramp_from_runtime_info(RuntimeInfo()) is None
