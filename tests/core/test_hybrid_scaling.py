"""Tests for Algorithm 1 (hybrid scaling) and the scaling policies."""

import pytest

from repro.core import (
    HybridScalingPolicy,
    StrongScalingPolicy,
    WeakScalingPolicy,
)
from repro.perfmodel import RESNET50, ThroughputModel


@pytest.fixture(scope="module")
def hybrid():
    return HybridScalingPolicy(ThroughputModel(RESNET50))


class TestGetTotalBatchSize:
    """Procedure GETTOTALBATCHSIZE, line by line."""

    def test_strong_scaling_when_optimum_covers_target(self, hybrid):
        """Line 6: try strong scaling first.  ResNet N_opt(512) ~ 25, so
        scaling 16 -> 24 keeps the batch unchanged."""
        tbs, strategy = hybrid.get_total_batch_size(16, 24, 512)
        assert tbs == 512
        assert strategy == "strong"

    def test_doubles_until_optimum_reached(self, hybrid):
        """Line 13: double the batch until N_opt >= N'."""
        tbs, strategy = hybrid.get_total_batch_size(16, 36, 512)
        assert tbs == 1024  # N_opt(1024) ~ 38 >= 36
        assert strategy == "hybrid"

    def test_falls_back_to_weak_scaling(self, hybrid):
        """Line 15: all trials failed -> proportional weak scaling.
        16 -> 64 with batch 512: even 2048 has N_opt ~ 57 < 64."""
        tbs, strategy = hybrid.get_total_batch_size(16, 64, 512)
        assert tbs == 2048  # 512 * 64/16
        assert strategy == "weak"

    def test_minimality(self, hybrid):
        """The mechanism picks the MINIMUM batch that covers the target:
        never a larger doubling than needed."""
        tbs, _strategy = hybrid.get_total_batch_size(16, 36, 512)
        model = ThroughputModel(RESNET50)
        assert model.optimal_workers(tbs) >= 36
        assert model.optimal_workers(tbs // 2) < 36

    def test_scale_in_is_always_strong(self, hybrid):
        tbs, strategy = hybrid.get_total_batch_size(32, 16, 1024)
        assert tbs == 1024
        assert strategy == "strong"

    def test_unchanged_workers_unchanged_batch(self, hybrid):
        tbs, strategy = hybrid.get_total_batch_size(16, 16, 512)
        assert tbs == 512

    def test_validation(self, hybrid):
        with pytest.raises(ValueError):
            hybrid.get_total_batch_size(0, 4, 64)
        with pytest.raises(ValueError):
            hybrid.get_total_batch_size(8, 4, 4)


class TestDecide:
    def test_ramp_targets_scaled_lr(self, hybrid):
        decision = hybrid.decide(16, 64, 512, learning_rate=0.2, iteration=1000)
        assert decision.new_total_batch_size == 2048
        assert decision.batch_scale == pytest.approx(4.0)
        assert decision.lr_ramp.base_lr == pytest.approx(0.2)
        assert decision.lr_ramp.target_lr == pytest.approx(0.8)
        assert decision.lr_ramp.start_iteration == 1000

    def test_no_batch_change_no_ramp_length(self, hybrid):
        decision = hybrid.decide(16, 24, 512, learning_rate=0.2, iteration=0)
        assert decision.new_total_batch_size == 512
        assert decision.lr_ramp.length == 0
        assert decision.lr_ramp.target_lr == pytest.approx(0.2)

    def test_paper_ramp_default_is_100_iterations(self, hybrid):
        decision = hybrid.decide(16, 64, 512, learning_rate=0.2, iteration=0)
        assert decision.lr_ramp.length == 100


class TestBaselinePolicies:
    def test_strong_policy_never_changes_batch(self):
        policy = StrongScalingPolicy()
        decision = policy.decide(4, 32, 256, learning_rate=0.1, iteration=7)
        assert decision.new_total_batch_size == 256
        assert decision.strategy == "strong"
        assert decision.lr_ramp.target_lr == pytest.approx(0.1)

    def test_weak_policy_scales_proportionally(self):
        policy = WeakScalingPolicy(ramp_iterations=50)
        decision = policy.decide(4, 8, 256, learning_rate=0.1, iteration=0)
        assert decision.new_total_batch_size == 512
        assert decision.strategy == "weak"
        assert decision.lr_ramp.target_lr == pytest.approx(0.2)
        assert decision.lr_ramp.length == 50

    def test_weak_policy_scale_in(self):
        policy = WeakScalingPolicy()
        decision = policy.decide(8, 4, 512, learning_rate=0.2, iteration=0)
        assert decision.new_total_batch_size == 256
        assert decision.lr_ramp.target_lr == pytest.approx(0.1)
