"""Tests for LR schedules and their composition with elastic scaling."""

import pytest

from repro.core.lr_schedules import (
    ConstantLr,
    CosineDecay,
    ScaledSchedule,
    StepDecay,
    WarmupSchedule,
)


class TestStepDecay:
    def test_resnet_recipe(self):
        """x0.1 at the 30- and 60-epoch milestones (in iterations)."""
        schedule = StepDecay(base_lr=0.2, milestones=(3000, 6000))
        assert schedule.lr_at(0) == pytest.approx(0.2)
        assert schedule.lr_at(2999) == pytest.approx(0.2)
        assert schedule.lr_at(3000) == pytest.approx(0.02)
        assert schedule.lr_at(6000) == pytest.approx(0.002)

    def test_validation(self):
        with pytest.raises(ValueError):
            StepDecay(base_lr=0.0, milestones=(10,))
        with pytest.raises(ValueError):
            StepDecay(base_lr=0.1, milestones=(10,), factor=1.5)
        with pytest.raises(ValueError):
            StepDecay(base_lr=0.1, milestones=(20, 10))


class TestWarmup:
    def test_linear_rise_then_inner(self):
        schedule = WarmupSchedule(ConstantLr(0.4), warmup_iterations=100)
        assert schedule.lr_at(0) == pytest.approx(0.0)
        assert schedule.lr_at(50) == pytest.approx(0.2)
        assert schedule.lr_at(100) == pytest.approx(0.4)
        assert schedule.lr_at(5000) == pytest.approx(0.4)

    def test_zero_warmup_passthrough(self):
        schedule = WarmupSchedule(ConstantLr(0.1), warmup_iterations=0)
        assert schedule.lr_at(0) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            WarmupSchedule(ConstantLr(0.1), warmup_iterations=-1)


class TestCosine:
    def test_endpoints(self):
        schedule = CosineDecay(base_lr=1.0, total_iterations=100, final_lr=0.1)
        assert schedule.lr_at(0) == pytest.approx(1.0)
        assert schedule.lr_at(100) == pytest.approx(0.1)
        assert schedule.lr_at(50) == pytest.approx(0.55)

    def test_monotone_decreasing(self):
        schedule = CosineDecay(base_lr=1.0, total_iterations=50)
        values = [schedule.lr_at(t) for t in range(60)]
        assert values == sorted(values, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            CosineDecay(base_lr=1.0, total_iterations=0)
        with pytest.raises(ValueError):
            CosineDecay(base_lr=0.5, total_iterations=10, final_lr=0.6)


class TestScaledSchedule:
    def test_single_ramp_matches_eq3(self):
        schedule = ScaledSchedule(ConstantLr(0.1))
        schedule.add_scale(2.0, iteration=100, ramp_iterations=50)
        assert schedule.lr_at(99) == pytest.approx(0.1)
        assert schedule.lr_at(125) == pytest.approx(0.15)
        assert schedule.lr_at(150) == pytest.approx(0.2)

    def test_ramps_compound(self):
        """Two doublings -> cumulative x4, exactly as Eq. 1 demands."""
        schedule = ScaledSchedule(ConstantLr(0.1))
        schedule.add_scale(2.0, iteration=100, ramp_iterations=10)
        schedule.add_scale(2.0, iteration=500, ramp_iterations=10)
        assert schedule.cumulative_scale == pytest.approx(4.0)
        assert schedule.lr_at(300) == pytest.approx(0.2)
        assert schedule.lr_at(1000) == pytest.approx(0.4)

    def test_decay_inside_a_ramp_still_applies(self):
        """A milestone decay landing mid-ramp multiplies through: the
        composition is schedule(t) * scale(t), not either alone."""
        base = StepDecay(base_lr=0.2, milestones=(110,))
        schedule = ScaledSchedule(base)
        schedule.add_scale(2.0, iteration=100, ramp_iterations=20)
        # At t=110: decay fired (0.02) and the ramp is halfway (x1.5).
        assert schedule.lr_at(110) == pytest.approx(0.02 * 1.5)
        assert schedule.lr_at(200) == pytest.approx(0.02 * 2.0)

    def test_scale_down_on_scale_in(self):
        schedule = ScaledSchedule(ConstantLr(0.4))
        schedule.add_scale(0.5, iteration=10, ramp_iterations=10)
        assert schedule.lr_at(30) == pytest.approx(0.2)

    def test_unit_scale_is_instant(self):
        schedule = ScaledSchedule(ConstantLr(0.1))
        schedule.add_scale(1.0, iteration=10, ramp_iterations=100)
        assert schedule.lr_at(10) == pytest.approx(0.1)
        assert schedule.lr_at(11) == pytest.approx(0.1)

    def test_out_of_order_rejected(self):
        schedule = ScaledSchedule(ConstantLr(0.1))
        schedule.add_scale(2.0, iteration=100)
        with pytest.raises(ValueError):
            schedule.add_scale(2.0, iteration=50)

    def test_validation(self):
        schedule = ScaledSchedule(ConstantLr(0.1))
        with pytest.raises(ValueError):
            schedule.add_scale(0.0, iteration=0)
        with pytest.raises(ValueError):
            schedule.add_scale(2.0, iteration=0, ramp_iterations=-1)
