"""Tests for the ElasticJob facade (the Table III API surface)."""

import pytest

from repro.coordination import AdjustmentKind, Hook, params_consistent
from repro.core import ElasticJob, WeakScalingPolicy
from repro.training import make_classification


@pytest.fixture(scope="module")
def dataset():
    return make_classification(train_size=512, test_size=128, seed=41)


class TestLifecycle:
    def test_context_manager_starts_and_stops(self, dataset):
        with ElasticJob(dataset, workers=2, total_batch_size=32, seed=1) as job:
            assert job.wait_until_iteration(5)
        for worker in job.runtime._workers.values():
            assert not worker.thread.is_alive()

    def test_status_reports_current_shape(self, dataset):
        with ElasticJob(dataset, workers=3, total_batch_size=48, seed=2) as job:
            job.wait_until_iteration(3)
            status = job.status()
        assert status["group"] == ("w0", "w1", "w2")
        assert status["total_batch_size"] == 48
        assert status["adjustments"] == 0


class TestServiceApi:
    def test_adjust_resource_scale_out(self, dataset):
        with ElasticJob(dataset, workers=2, total_batch_size=32, seed=3) as job:
            job.wait_until_iteration(3)
            new_ids = job.adjust_resource(AdjustmentKind.SCALE_OUT, count=2)
            assert job.wait_for_adjustments(1)
        assert new_ids == ["w2", "w3"]
        assert len(job.status()["group"]) == 4

    def test_adjust_resource_scale_in(self, dataset):
        with ElasticJob(dataset, workers=3, total_batch_size=48, seed=4) as job:
            job.wait_until_iteration(3)
            removed = job.adjust_resource(AdjustmentKind.SCALE_IN, count=1)
            assert job.wait_for_adjustments(1)
        assert removed == ["w2"]
        assert len(job.status()["group"]) == 2

    def test_adjust_resource_migration(self, dataset):
        with ElasticJob(dataset, workers=2, total_batch_size=32, seed=5) as job:
            job.wait_until_iteration(3)
            new_ids = job.adjust_resource(AdjustmentKind.MIGRATION)
            assert job.wait_for_adjustments(1)
        assert job.status()["group"] == tuple(new_ids)

    def test_scale_out_requires_count(self, dataset):
        job = ElasticJob(dataset, workers=2, total_batch_size=32, seed=6)
        with pytest.raises(ValueError):
            job.adjust_resource(AdjustmentKind.SCALE_OUT)

    def test_history_records_strategy(self, dataset):
        with ElasticJob(
            dataset, workers=2, total_batch_size=32, seed=7,
            scaling_policy=WeakScalingPolicy(ramp_iterations=5),
        ) as job:
            job.wait_until_iteration(3)
            job.scale_out(2)
            assert job.wait_for_adjustments(1)
        assert len(job.history) == 1
        assert job.history[0].strategy == "weak"
        assert job.history[0].total_batch_size == 64


class TestHooksAndEvaluation:
    def test_register_hook_passthrough(self, dataset):
        job = ElasticJob(dataset, workers=2, total_batch_size=32, seed=8)
        job.register_hook(Hook("extra", lambda c: 1, lambda c, s: None))
        assert "extra" in job.runtime.hooks.names

    def test_evaluate_after_stop(self, dataset):
        with ElasticJob(dataset, workers=2, total_batch_size=32,
                        base_lr=0.02, seed=9) as job:
            job.wait_until_iteration(40)
        accuracy = job.evaluate()
        assert 0.0 <= accuracy <= 1.0
        assert params_consistent(job.runtime.final_contexts())

    def test_coordination_interval_exposed(self, dataset):
        job = ElasticJob(dataset, workers=2, total_batch_size=32,
                         coordination_interval=4, seed=10)
        assert job.coordination_interval == 4


class TestCommitLatencyTelemetry:
    def test_live_commit_is_fast(self, dataset):
        """The live analogue of Fig. 15: an in-process commit (steps 4-5)
        completes in milliseconds."""
        with ElasticJob(dataset, workers=2, total_batch_size=32, seed=11) as job:
            job.wait_until_iteration(3)
            job.scale_out(2)
            assert job.wait_for_adjustments(1)
        latencies = job.runtime.commit_latencies
        assert len(latencies) == 1
        assert latencies[0] < 0.5
