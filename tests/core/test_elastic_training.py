"""Tests for the AdaBatch schedule and the §VI-B experiment timelines."""

import pytest

from repro.core import (
    AdaBatchSchedule,
    BatchPhase,
    ElasticTrainingExperiment,
    doubling_schedule,
)
from repro.perfmodel import RESNET50, ThroughputModel


class TestAdaBatchSchedule:
    def test_paper_schedule(self):
        schedule = doubling_schedule()
        assert schedule.total_epochs == 90
        assert [p.total_batch_size for p in schedule.phases] == [512, 1024, 2048]
        assert [p.lr_scale for p in schedule.phases] == [1.0, 2.0, 4.0]

    def test_batch_at_epoch(self):
        schedule = doubling_schedule()
        assert schedule.batch_at(0) == 512
        assert schedule.batch_at(29.9) == 512
        assert schedule.batch_at(30) == 1024
        assert schedule.batch_at(89) == 2048

    def test_epoch_out_of_range(self):
        schedule = doubling_schedule()
        with pytest.raises(ValueError):
            schedule.batch_at(90)
        with pytest.raises(ValueError):
            schedule.batch_at(-1)

    def test_phases_must_be_contiguous(self):
        with pytest.raises(ValueError):
            AdaBatchSchedule(phases=(
                BatchPhase(0, 30, 512, 1.0),
                BatchPhase(40, 60, 1024, 2.0),
            ))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            AdaBatchSchedule(phases=())

    def test_worker_plan_monotone(self):
        plan = doubling_schedule().worker_plan(ThroughputModel(RESNET50))
        assert plan == sorted(plan)
        assert plan[0] >= 1


class TestExperimentTimelines:
    @pytest.fixture(scope="class")
    def experiment(self):
        return ElasticTrainingExperiment(seed=0)

    @pytest.fixture(scope="class")
    def runs(self, experiment):
        static, fixed, elastic = experiment.all_configurations()
        return static, fixed, elastic

    def test_paper_worker_plan(self, runs):
        """16 @ 512, 32 @ 1024, 64 @ 2048 — the Fig. 17-guided plan."""
        _static, _fixed, elastic = runs
        assert [p.workers for p in elastic.phases] == [16, 32, 64]

    def test_final_accuracy_preserved(self, runs):
        """Fig. 18: elastic matches static within ~0.1% (75.87 vs 75.89)."""
        static, _fixed, elastic = runs
        assert static.final_accuracy == pytest.approx(0.759, abs=0.005)
        assert abs(static.final_accuracy - elastic.final_accuracy) < 0.002

    def test_table4_static_absolute_times(self, runs):
        """Static time-to-solution lands near the paper's 45k-49k seconds."""
        static, _fixed, _elastic = runs
        for target, paper_time in ((0.745, 45073), (0.75, 45824), (0.755, 48829)):
            measured = static.time_to_accuracy(target)
            assert measured == pytest.approx(paper_time, rel=0.15)

    def test_table4_elastic_speedup_about_20_percent(self, runs):
        """The headline: elastic training ~20% faster to solution."""
        static, _fixed, elastic = runs
        for target in (0.745, 0.75, 0.755):
            speedup = static.time_to_accuracy(target) / elastic.time_to_accuracy(
                target
            )
            assert 1.15 < speedup < 1.45

    def test_speedup_grows_with_target_accuracy(self, runs):
        """Paper: 'elastic training tends to give a higher speedup for a
        higher target accuracy'."""
        static, _fixed, elastic = runs
        speedups = [
            static.time_to_accuracy(t) / elastic.time_to_accuracy(t)
            for t in (0.745, 0.75, 0.755)
        ]
        assert speedups == sorted(speedups)

    def test_fixed_64_gets_no_speedup(self, runs):
        """Paper: dynamic batches on fixed 64 workers are 'hard to obtain
        a speedup' — resources are underutilized at small batches, so
        elasticity is *necessary*."""
        static, fixed, _elastic = runs
        for target in (0.745, 0.75, 0.755):
            speedup = static.time_to_accuracy(target) / fixed.time_to_accuracy(
                target
            )
            assert speedup < 1.05

    def test_elastic_pays_adjustment_costs(self, experiment):
        """Phase boundaries include the (sub-second) Elan adjustments."""
        elastic = experiment.elastic()
        for prev, nxt in zip(elastic.phases, elastic.phases[1:]):
            assert nxt.start_time > prev.end_time  # gap = adjustment

    def test_time_at_epoch_monotone(self, runs):
        _static, _fixed, elastic = runs
        times = [elastic.time_at_epoch(e) for e in range(0, 91, 10)]
        assert times == sorted(times)
        assert elastic.time_at_epoch(90) == pytest.approx(elastic.total_time)

    def test_accuracy_at_time_reaches_final(self, runs):
        _static, _fixed, elastic = runs
        assert elastic.accuracy_at_time(elastic.total_time) == pytest.approx(
            elastic.final_accuracy, abs=1e-3
        )

    def test_unreachable_target_raises(self, runs):
        static, _fixed, _elastic = runs
        with pytest.raises(ValueError):
            static.time_to_accuracy(0.99)

    def test_custom_worker_plan(self, experiment):
        run = experiment.elastic(worker_plan=[8, 16, 32])
        assert [p.workers for p in run.phases] == [8, 16, 32]
