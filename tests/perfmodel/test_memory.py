"""Tests for the GPU memory-footprint model (the min_res rule)."""

import pytest

from repro.perfmodel import (
    GPU_MEMORY_BYTES,
    MODEL_ZOO,
    RESNET50,
    VGG19,
    fits,
    max_batch_per_worker,
    memory_footprint,
    min_workers_for_batch,
)
from repro.perfmodel.models import ModelSpec


class TestFootprint:
    def test_grows_with_batch(self):
        assert memory_footprint(RESNET50, 64) > memory_footprint(RESNET50, 8)

    def test_includes_fixed_parts_at_batch_zero(self):
        fixed = memory_footprint(RESNET50, 0)
        assert fixed > RESNET50.gpu_state_bytes  # + gradients + framework

    def test_larger_models_bigger_fixed_cost(self):
        assert memory_footprint(VGG19, 0) > memory_footprint(RESNET50, 0)

    def test_negative_batch_rejected(self):
        with pytest.raises(ValueError):
            memory_footprint(RESNET50, -1)

    def test_unknown_model_rejected(self):
        fake = ModelSpec(
            name="GhostNet", family="CNN", domain="CV", parameters=1_000,
            dataset="none", dataset_size=1, flops_per_sample=1e6,
            saturation_batch=8.0,
        )
        with pytest.raises(KeyError):
            memory_footprint(fake, 1)


class TestMaxBatch:
    @pytest.mark.parametrize("spec", list(MODEL_ZOO.values()),
                             ids=lambda s: s.name)
    def test_max_batch_fits_exactly(self, spec):
        limit = max_batch_per_worker(spec)
        assert fits(spec, 1, limit)
        assert not fits(spec, 1, limit + 2)

    def test_small_models_fit_bigger_batches(self):
        assert (
            max_batch_per_worker(MODEL_ZOO["MobileNet-v2"])
            > max_batch_per_worker(VGG19)
        )

    def test_tiny_gpu_rejected(self):
        with pytest.raises(ValueError):
            max_batch_per_worker(VGG19, gpu_memory=1024**3)

    def test_paper_batches_fit_on_the_testbed(self):
        """The §VI-B configuration (batch 32 per worker) must be feasible
        on the 11 GB 1080Ti for every Table I model."""
        for spec in MODEL_ZOO.values():
            assert max_batch_per_worker(spec) >= 32


class TestMinWorkers:
    def test_min_workers_rule(self):
        """min_res workers must fit the total batch (paper §VI-C)."""
        for spec in MODEL_ZOO.values():
            for batch in (256, 1024, 4096):
                workers = min_workers_for_batch(spec, batch)
                assert fits(spec, workers, batch)
                if workers > 1:
                    assert not fits(spec, workers - 1, batch)

    def test_monotone_in_batch(self):
        counts = [
            min_workers_for_batch(RESNET50, batch)
            for batch in (128, 512, 2048, 8192)
        ]
        assert counts == sorted(counts)

    def test_validation(self):
        with pytest.raises(ValueError):
            min_workers_for_batch(RESNET50, 0)
        with pytest.raises(ValueError):
            fits(RESNET50, 0, 128)

    def test_default_memory_is_1080ti(self):
        assert GPU_MEMORY_BYTES == 11 * 1024**3
