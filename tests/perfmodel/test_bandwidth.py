"""Tests for the Fig. 8 bandwidth sweep."""

from repro.perfmodel import DEFAULT_SIZES, bandwidth_sweep, verify_figure8_ordering
from repro.topology import BandwidthProfile, LinkSpec, Transport


class TestBandwidthSweep:
    def test_covers_all_transports_and_sizes(self):
        sweep = bandwidth_sweep()
        assert set(sweep) == set(Transport)
        for points in sweep.values():
            assert [size for size, _bw in points] == list(DEFAULT_SIZES)

    def test_figure8_ordering_holds(self):
        assert verify_figure8_ordering()

    def test_each_curve_monotone_in_size(self):
        for points in bandwidth_sweep().values():
            bws = [bw for _size, bw in points]
            assert bws == sorted(bws)

    def test_saturation_near_peak_at_1gb(self):
        profile = BandwidthProfile()
        sweep = bandwidth_sweep(profile)
        for transport, points in sweep.items():
            peak = profile.spec(transport).peak_bandwidth
            assert points[-1][1] > 0.9 * peak

    def test_ordering_check_detects_violations(self):
        """A profile with SHM faster than P2P must fail the invariant."""
        broken = BandwidthProfile(
            p2p=LinkSpec(peak_bandwidth=1e9, latency=10e-6),
            shm=LinkSpec(peak_bandwidth=9e9, latency=10e-6),
        )
        assert not verify_figure8_ordering(bandwidth_sweep(broken))
