"""Tests for the convergence/accuracy model (paper §III-2, Figs. 5/18)."""

import pytest

from repro.perfmodel import (
    MOBILENETV2_CIFAR100,
    RESNET50_IMAGENET,
    AccuracyModel,
    LrPolicy,
)


@pytest.fixture
def resnet():
    return AccuracyModel(RESNET50_IMAGENET)


@pytest.fixture
def mobilenet():
    return AccuracyModel(MOBILENETV2_CIFAR100)


class TestTrajectory:
    def test_final_accuracy_matches_paper(self, resnet):
        """Paper §VI-B: 512 (16) reaches 75.89% top-1 after 90 epochs."""
        assert resnet.accuracy_at_epoch(90) == pytest.approx(0.7589, abs=0.005)

    def test_monotone_in_epochs(self, resnet):
        accs = [resnet.accuracy_at_epoch(e) for e in range(0, 91, 5)]
        assert accs == sorted(accs)

    def test_lr_decay_phases_visible(self, resnet):
        """Accuracy improves sharply right after each LR decay."""
        before_decay = resnet.accuracy_at_epoch(60) - resnet.accuracy_at_epoch(55)
        after_decay = resnet.accuracy_at_epoch(65) - resnet.accuracy_at_epoch(60)
        assert after_decay > before_decay

    def test_negative_epoch_rejected(self, resnet):
        with pytest.raises(ValueError):
            resnet.accuracy_at_epoch(-1)

    def test_starts_near_chance(self, resnet):
        assert resnet.accuracy_at_epoch(0) == pytest.approx(0.001)


class TestEpochReaching:
    def test_targets_in_final_phase(self, resnet):
        """74.5/75/75.5% are reached between the last decay and epoch 90."""
        for target in (0.745, 0.75, 0.755):
            epoch = resnet.epoch_reaching(target)
            assert 60 < epoch < 90

    def test_ordered_by_target(self, resnet):
        epochs = [resnet.epoch_reaching(t) for t in (0.745, 0.75, 0.755)]
        assert epochs == sorted(epochs)

    def test_unreachable_target_raises(self, resnet):
        with pytest.raises(ValueError):
            resnet.epoch_reaching(0.99)

    def test_penalty_delays_target(self, resnet):
        assert resnet.epoch_reaching(0.745, penalty=0.005) > resnet.epoch_reaching(
            0.745
        )

    def test_inverse_of_accuracy_at_epoch(self, resnet):
        epoch = resnet.epoch_reaching(0.75)
        assert resnet.accuracy_at_epoch(epoch) == pytest.approx(0.75, abs=1e-6)


class TestBatchSizePenalty:
    """Paper Fig. 5: Default decays with TBS; Hybrid holds until 2^12."""

    def test_no_penalty_at_or_below_base(self, mobilenet):
        for policy in LrPolicy:
            assert mobilenet.final_accuracy_penalty(32, policy) == 0.0
            assert mobilenet.final_accuracy_penalty(16, policy) == 0.0

    def test_default_decays_per_doubling(self, mobilenet):
        accs = [
            mobilenet.final_accuracy(2**k, LrPolicy.FIXED) for k in range(5, 13)
        ]
        assert accs == sorted(accs, reverse=True)
        assert accs[0] - accs[-1] > 0.05  # clearly visible decay

    def test_hybrid_flat_until_critical(self, mobilenet):
        base = mobilenet.final_accuracy(32, LrPolicy.PROGRESSIVE_LINEAR)
        for k in range(5, 12):  # up to 2^11 = critical
            acc = mobilenet.final_accuracy(2**k, LrPolicy.PROGRESSIVE_LINEAR)
            assert acc == pytest.approx(base, abs=1e-9)

    def test_hybrid_dips_beyond_critical(self, mobilenet):
        """Fig. 5: accuracy 'still goes down when the TBS is too large (2^12)'."""
        base = mobilenet.final_accuracy(32, LrPolicy.PROGRESSIVE_LINEAR)
        at_4096 = mobilenet.final_accuracy(4096, LrPolicy.PROGRESSIVE_LINEAR)
        assert at_4096 < base - 0.005

    def test_hybrid_beats_default_at_every_large_batch(self, mobilenet):
        for k in range(6, 13):
            hybrid = mobilenet.final_accuracy(2**k, LrPolicy.PROGRESSIVE_LINEAR)
            default = mobilenet.final_accuracy(2**k, LrPolicy.FIXED)
            assert hybrid > default

    def test_abrupt_lr_change_worse_than_progressive(self, mobilenet):
        """§III-3: a sharp LR change risks divergence; the progressive rule
        exists to avoid that cost."""
        abrupt = mobilenet.final_accuracy(1024, LrPolicy.LINEAR_ABRUPT)
        progressive = mobilenet.final_accuracy(1024, LrPolicy.PROGRESSIVE_LINEAR)
        assert abrupt < progressive

    def test_invalid_batch_rejected(self, mobilenet):
        with pytest.raises(ValueError):
            mobilenet.final_accuracy_penalty(0, LrPolicy.FIXED)


class TestHybridKeepsResnetAccuracy:
    """Paper Fig. 18: elastic 512-2048 lands within 0.02% of static 512."""

    def test_elastic_final_accuracy_close_to_static(self, resnet):
        static = resnet.final_accuracy(512, LrPolicy.PROGRESSIVE_LINEAR)
        elastic = resnet.final_accuracy(2048, LrPolicy.PROGRESSIVE_LINEAR)
        assert abs(static - elastic) < 0.002
