"""Tests that the throughput model reproduces the §III-1 observations."""

import pytest

from repro.perfmodel import (
    MODEL_ZOO,
    RESNET50,
    ThroughputModel,
    get_model,
)

WORKERS = [2, 4, 8, 16, 32, 64, 128]


@pytest.fixture
def resnet_model():
    return ThroughputModel(RESNET50)


class TestModelZoo:
    def test_table1_has_five_models(self):
        assert len(MODEL_ZOO) == 5

    def test_table1_parameter_counts(self):
        assert MODEL_ZOO["VGG-19"].parameters == 143_000_000
        assert MODEL_ZOO["MobileNet-v2"].parameters == 3_000_000
        assert MODEL_ZOO["Seq2Seq"].parameters == 45_000_000
        assert MODEL_ZOO["Transformer"].parameters == 47_000_000

    def test_gpu_state_includes_optimizer(self):
        spec = MODEL_ZOO["ResNet-50"]
        assert spec.gpu_state_bytes == spec.param_bytes + spec.optimizer_bytes
        assert spec.gpu_state_bytes > spec.cpu_state_bytes  # Table II

    def test_lookup_case_insensitive(self):
        assert get_model("resnet-50") is RESNET50

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            get_model("AlexNet")


class TestComputeTime:
    def test_monotone_in_batch(self, resnet_model):
        times = [resnet_model.compute_time(b) for b in (1, 8, 32, 128)]
        assert times == sorted(times)

    def test_per_sample_time_decreases_with_batch(self, resnet_model):
        """Larger batches use the GPU more efficiently (§III-1 obs. 2)."""
        per_sample_small = resnet_model.compute_time(4) / 4
        per_sample_large = resnet_model.compute_time(64) / 64
        assert per_sample_large < per_sample_small

    def test_zero_batch_rejected(self, resnet_model):
        with pytest.raises(ValueError):
            resnet_model.compute_time(0)


class TestAllreduce:
    def test_single_worker_free(self, resnet_model):
        assert resnet_model.allreduce_time(1) == 0.0

    def test_monotone_in_workers(self, resnet_model):
        times = [resnet_model.allreduce_time(n) for n in (2, 4, 8, 16, 64)]
        assert times == sorted(times)

    def test_crossing_node_boundary_costs_more(self, resnet_model):
        """9 workers span two nodes and drop to InfiniBand bandwidth."""
        intra = resnet_model.allreduce_time(8)
        inter = resnet_model.allreduce_time(9)
        assert inter > intra * 1.2

    def test_invalid_workers_rejected(self, resnet_model):
        with pytest.raises(ValueError):
            resnet_model.allreduce_time(0)


class TestStrongScaling:
    """Paper Fig. 3: throughput increases then decreases."""

    @pytest.mark.parametrize("name", sorted(MODEL_ZOO))
    def test_rises_then_falls(self, name):
        model = ThroughputModel(get_model(name))
        curve = [tp for _n, tp in model.strong_scaling_curve(512, WORKERS)]
        peak = curve.index(max(curve))
        assert peak > 0, f"{name}: no initial rise"
        assert peak < len(curve) - 1, f"{name}: no eventual decline"
        # Rising before the peak, falling after it.
        assert all(curve[i] < curve[i + 1] for i in range(peak))
        assert all(curve[i] > curve[i + 1] for i in range(peak, len(curve) - 1))

    def test_optimal_workers_grows_with_batch(self, resnet_model):
        """§III-1 obs. 2: the optimum moves right with larger total batch."""
        opts = [
            resnet_model.optimal_workers(tbs, max_workers=256)
            for tbs in (256, 512, 1024, 2048)
        ]
        assert opts == sorted(opts)
        assert opts[0] < opts[-1]

    def test_optimal_workers_in_practical_range(self, resnet_model):
        """Fig. 17 guided the paper to 16/32/64 workers at 512/1024/2048."""
        assert 8 <= resnet_model.optimal_workers(512) <= 48
        assert 32 <= resnet_model.optimal_workers(2048) <= 96

    def test_optimal_workers_validates_input(self, resnet_model):
        with pytest.raises(ValueError):
            resnet_model.optimal_workers(0)

    def test_batch_smaller_than_workers_rejected(self, resnet_model):
        with pytest.raises(ValueError):
            resnet_model.iteration_time(64, 32)


class TestWeakScaling:
    """Paper Fig. 4: near-linear growth, slope grows with per-worker batch."""

    @pytest.mark.parametrize("name", sorted(MODEL_ZOO))
    def test_monotone_increasing(self, name):
        model = ThroughputModel(get_model(name))
        curve = [tp for _n, tp in model.weak_scaling_curve(32, WORKERS[:-1])]
        assert curve == sorted(curve)

    def test_near_linear_up_to_64_workers(self, resnet_model):
        curve = dict(resnet_model.weak_scaling_curve(32, [1, 64]))
        efficiency = curve[64] / (64 * curve[1])
        assert efficiency > 0.8

    def test_slope_grows_with_per_worker_batch(self, resnet_model):
        """§III-1 obs. 2, second aspect."""
        slopes = []
        for batch in (16, 32, 64):
            curve = dict(resnet_model.weak_scaling_curve(batch, [8, 32]))
            slopes.append((curve[32] - curve[8]) / 24)
        assert slopes == sorted(slopes)
        assert slopes[0] < slopes[-1]


class TestElasticConfiguration:
    """The §VI-B configuration: 16@512, 32@1024, 64@2048."""

    def test_each_phase_faster_than_previous(self, resnet_model):
        tp1 = resnet_model.throughput(16, 512)
        tp2 = resnet_model.throughput(32, 1024)
        tp3 = resnet_model.throughput(64, 2048)
        assert tp1 < tp2 < tp3

    def test_fixed_64_workers_underutilized_at_small_batch(self, resnet_model):
        """§VI-B: 512-2048 (64) wastes resources at batch 512."""
        fixed_64 = resnet_model.throughput(64, 512)
        elastic_16 = resnet_model.throughput(16, 512)
        # 64 workers on batch 512 are barely better (or worse) than 16.
        assert fixed_64 < 1.3 * elastic_16

    def test_epoch_time_uses_dataset_size(self, resnet_model):
        epoch = resnet_model.epoch_time(16, 512)
        iters = RESNET50.dataset_size / 512
        assert epoch == pytest.approx(iters * resnet_model.iteration_time(16, 512))
