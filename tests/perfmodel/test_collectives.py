"""Tests for the collective-algorithm cost models."""

import pytest

from repro.perfmodel import (
    best_algorithm,
    hierarchical_allreduce_time,
    ring_allreduce_time,
    tree_allreduce_time,
)

KB, MB = 1024, 1024**2
BANDWIDTH = 8e9
LATENCY = 30e-6


class TestRing:
    def test_single_worker_free(self):
        assert ring_allreduce_time(1, 100 * MB, BANDWIDTH) == 0.0

    def test_monotone_in_size(self):
        times = [
            ring_allreduce_time(8, s, BANDWIDTH, LATENCY)
            for s in (KB, MB, 100 * MB)
        ]
        assert times == sorted(times)

    def test_bandwidth_term_saturates_with_workers(self):
        """2(N-1)/N -> 2: the per-byte cost stops growing for large rings."""
        big = ring_allreduce_time(64, 100 * MB, BANDWIDTH, hop_latency=0.0)
        huge = ring_allreduce_time(1024, 100 * MB, BANDWIDTH, hop_latency=0.0)
        assert huge < 1.02 * big

    def test_validation(self):
        with pytest.raises(ValueError):
            ring_allreduce_time(0, MB, BANDWIDTH)


class TestTree:
    def test_log_depth(self):
        t8 = tree_allreduce_time(8, MB, BANDWIDTH, LATENCY)
        t64 = tree_allreduce_time(64, MB, BANDWIDTH, LATENCY)
        assert t64 == pytest.approx(t8 * 2, rel=1e-9)  # log2 64 = 2 * log2 8

    def test_single_worker_free(self):
        assert tree_allreduce_time(1, MB, BANDWIDTH) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            tree_allreduce_time(0, MB, BANDWIDTH)


class TestAlgorithmCrossover:
    def test_tree_wins_small_messages_large_rings(self):
        """Latency-bound regime: log steps beat 2(N-1) steps."""
        assert best_algorithm(256, 4 * KB, BANDWIDTH, LATENCY) == "tree"

    def test_ring_wins_large_messages(self):
        """Bandwidth-bound regime: moving S/N per step beats moving S."""
        assert best_algorithm(16, 100 * MB, BANDWIDTH, LATENCY) == "ring"

    def test_crossover_exists(self):
        """Sweeping the size at fixed ring length crosses from tree to ring."""
        sizes = [2**k for k in range(10, 30)]
        winners = [best_algorithm(64, s, BANDWIDTH, LATENCY) for s in sizes]
        assert winners[0] == "tree"
        assert winners[-1] == "ring"
        # Single crossover: once ring wins it keeps winning.
        first_ring = winners.index("ring")
        assert all(w == "ring" for w in winners[first_ring:])


class TestHierarchical:
    def test_beats_flat_ring_across_nodes(self):
        """A flat 64-rank ring pays the per-hop cost 126 times; the
        two-level layout pays it 2x7 times locally plus 14 times over the
        network — at the evaluation cluster's per-hop cost the hierarchy
        wins clearly."""
        size = 100 * MB
        hop = 2e-3  # EVAL_ALLREDUCE_HOP_LATENCY
        flat = ring_allreduce_time(64, size, 1.2e9, hop)
        hier = hierarchical_allreduce_time(
            64, size, intra_bandwidth=8e9, inter_bandwidth=1.2e9,
            hop_latency=hop,
        )
        assert hier < 0.8 * flat

    def test_reduces_to_local_ring_inside_one_node(self):
        size = 10 * MB
        hier = hierarchical_allreduce_time(
            8, size, intra_bandwidth=8e9, inter_bandwidth=1.2e9,
            hop_latency=LATENCY,
        )
        local = ring_allreduce_time(8, size, 8e9, LATENCY)
        assert hier == pytest.approx(local, rel=0.01)

    def test_single_worker_free(self):
        assert hierarchical_allreduce_time(1, MB) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            hierarchical_allreduce_time(0, MB)
