"""Tests for the repro-elan command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["schedule", "--policy", "lottery"])


class TestCommands:
    def test_models_prints_table1(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "VGG-19" in out and "143M" in out
        assert "Transformer" in out

    def test_scaling_prints_curves(self, capsys):
        assert main(["scaling", "--model", "MobileNet-v2"]) == 0
        out = capsys.readouterr().out
        assert "strong scaling" in out
        assert "weak scaling" in out
        assert "optimal workers" in out

    def test_scaling_eval_cluster(self, capsys):
        assert main(["scaling", "--cluster", "eval"]) == 0
        assert "eval cluster" in capsys.readouterr().out

    def test_adjust_reports_speedup(self, capsys):
        assert main([
            "adjust", "--kind", "scale_out",
            "--old-workers", "4", "--new-workers", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "Elan" in out and "S&R" in out and "speedup" in out

    def test_elastic_training_prints_table4(self, capsys):
        assert main(["elastic-training"]) == 0
        out = capsys.readouterr().out
        assert "512 (16)" in out
        assert "time to solution" in out

    def test_schedule_runs_small_trace(self, capsys):
        assert main([
            "schedule", "--policy", "e-fifo", "--jobs", "25",
            "--gpus", "64", "--seed", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "average JCT" in out
        assert "utilization" in out

    def test_demo_runs_live_job(self, capsys):
        assert main(["demo", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "replicas consistent: True" in out


class TestTraceAndCapacityCommands:
    def test_trace_generate_and_save(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main(["trace", "--jobs", "20", "--seed", "4",
                     "--save", str(path)]) == 0
        out = capsys.readouterr().out
        assert "20 jobs" in out
        assert path.exists()

    def test_trace_load_summarizes(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        main(["trace", "--jobs", "15", "--seed", "4", "--save", str(path)])
        capsys.readouterr()
        assert main(["trace", "--load", str(path)]) == 0
        out = capsys.readouterr().out
        assert "15 jobs" in out

    def test_capacity_sweep_prints_table(self, capsys):
        assert main(["capacity", "--jobs", "25", "--gpus", "48,96",
                     "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "e-fifo" in out and "Avg JCT" in out


class TestTracingCommand:
    def test_rejects_unknown_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tracing", "replay", "x.json"])

    def test_demo_summarize_validate_pipeline(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main(["tracing", "demo", str(path), "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "events" in out and path.exists()

        assert main(["tracing", "validate", str(path)]) == 0
        assert "OK" in capsys.readouterr().out

        assert main(["tracing", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "iteration" in out and "adjust.commit" in out

    def test_validate_flags_broken_trace(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('[{"name":"x","ph":"X","ts":0}]')
        assert main(["tracing", "validate", str(path)]) == 1
        assert "INVALID" in capsys.readouterr().out


class TestSoakCommand:
    def _trace(self, tmp_path):
        """A miniature soaked-job trace: two busy workers, one failover."""
        import time

        from repro.observability import Tracer

        tracer = Tracer(process="t")
        for worker in ("w0", "w1"):
            with tracer.span("worker.iteration", track=worker):
                time.sleep(0.005)
        tracer.instant("am.failover", track="am", epoch=2, replayed=9)
        tracer.instant("worker.condemned", track="am", worker="w2")
        path = tmp_path / "soak-trace.json"
        tracer.export(str(path))
        return str(path)

    def test_replay_passes_its_floors(self, tmp_path, capsys):
        assert main([
            "soak", "--replay", self._trace(tmp_path),
            "--goodput-floor", "0.0", "--mttr-ceiling", "60",
        ]) == 0
        out = capsys.readouterr().out
        assert "goodput" in out
        assert "failovers" in out and "SLO ok" in out

    def test_replay_violation_exits_nonzero(self, tmp_path, capsys):
        assert main([
            "soak", "--replay", self._trace(tmp_path),
            "--goodput-floor", "1.5",
        ]) == 1
        captured = capsys.readouterr()
        assert "SLO violation" in captured.err
        assert "below floor" in captured.err

    def test_soak_parser_defaults(self):
        args = build_parser().parse_args(["soak"])
        assert args.transport == "memory"
        assert args.workers == 3
        assert args.am_kill_iter == 14
        assert args.worker_kill_iter == 9
        with pytest.raises(SystemExit):
            build_parser().parse_args(["soak", "--transport", "carrier"])


class TestTracingMetricsAction:
    def _metrics_file(self, tmp_path):
        import json

        from repro.observability import MetricRegistry

        registry = MetricRegistry()
        registry.counter("worker.iterations").inc(12)
        for value in (1.0, 2.0, 3.0):
            registry.histogram("iteration.seconds").observe(value)
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(registry.to_json()))
        return str(path)

    def test_metrics_prints_snapshot_table(self, tmp_path, capsys):
        assert main(["tracing", "metrics", self._metrics_file(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "worker.iterations" in out and "12" in out
        assert "iteration.seconds.count" in out
        assert "iteration.seconds.p50" in out

    def test_summarize_reports_instants_and_counters(self, tmp_path, capsys):
        from repro.observability import Tracer

        tracer = Tracer(process="t")
        tracer.add_span("worker.iteration", 0.0, 1.0, track="w0")
        tracer.add_instant("worker.enrolled", 0.5, track="w0")
        tracer.add_instant("worker.enrolled", 0.7, track="w1")
        tracer.add_counter("queue.depth", 0.9, 4.0, track="am")
        path = tmp_path / "trace.json"
        tracer.export(str(path))
        assert main(["tracing", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Instant" in out and "worker.enrolled" in out
        assert "w0=1" in out and "w1=1" in out
        assert "Counter" in out and "queue.depth" in out and "4" in out


class TestFleetCommand:
    def _traces(self, tmp_path):
        """Two per-worker trace files, busy half the one-second wall."""
        from repro.observability import Tracer

        paths = []
        for worker in ("w0", "w1"):
            tracer = Tracer(process=worker)
            tracer.add_span("worker.iteration", 0.0, 0.5, track=worker)
            tracer.add_instant("worker.enrolled", 1.0, track=worker)
            path = tmp_path / f"{worker}.json"
            tracer.export(str(path))
            paths.append(str(path))
        return paths

    def test_rejects_unknown_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "inspect"])

    def test_parser_defaults(self):
        args = build_parser().parse_args(["fleet", "report"])
        assert args.connect is None
        assert args.goodput_floor is None
        assert args.ack_timeout == 2.0

    def test_report_from_files(self, tmp_path, capsys):
        assert main(["fleet", "report", *self._traces(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "[job fleet]" in out
        assert "goodput" in out and "workers" in out

    def test_report_gates_on_goodput_floor(self, tmp_path, capsys):
        assert main([
            "fleet", "report", *self._traces(tmp_path),
            "--goodput-floor", "0.99",
        ]) == 1
        assert "SLO violation" in capsys.readouterr().err

    def test_export_then_validate_round_trip(self, tmp_path, capsys):
        out_path = tmp_path / "fleet.json"
        assert main([
            "fleet", "export", *self._traces(tmp_path),
            "--out", str(out_path),
        ]) == 0
        assert "merged fleet events" in capsys.readouterr().out
        assert main(["tracing", "validate", str(out_path)]) == 0
        # The merged file keeps both workers as named processes and
        # feeds straight back into a file-based report.
        text = out_path.read_text()
        assert '"w0"' in text and '"w1"' in text
        assert main(["fleet", "report", str(out_path)]) == 0
        import re

        assert re.search(r"workers\s+2", capsys.readouterr().out)

    def test_export_requires_out(self, tmp_path, capsys):
        assert main(["fleet", "export", *self._traces(tmp_path)]) == 2
        assert "--out" in capsys.readouterr().err

    def test_actions_need_a_source(self, capsys):
        for action in ("report", "export", "prom"):
            argv = ["fleet", action]
            if action == "export":
                argv += ["--out", "x.json"]
            assert main(argv) == 2
            assert "needs" in capsys.readouterr().err

    def test_prom_from_metric_files(self, tmp_path, capsys):
        import json

        from repro.observability import MetricRegistry

        paths = []
        for worker, count in (("w0", 3), ("w1", 4)):
            registry = MetricRegistry()
            registry.counter("worker.iterations").inc(count)
            path = tmp_path / f"{worker}-metrics.json"
            path.write_text(json.dumps(registry.to_json()))
            paths.append(str(path))
        assert main(["fleet", "prom", *paths]) == 0
        out = capsys.readouterr().out
        assert "# TYPE elan_worker_iterations gauge" in out
        assert "elan_worker_iterations 7" in out
