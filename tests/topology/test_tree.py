"""Unit tests for the topology tree and link-level classification."""

import pytest

from repro.topology import (
    DeviceKind,
    LinkLevel,
    ServerSpec,
    build_cluster,
    cluster_for_gpu_count,
    gpu_by_name,
    gpus_of,
    link_level,
    lowest_common_ancestor,
    nearest_neighbor,
    path_resources,
)


@pytest.fixture
def cluster():
    """Two paper-shaped servers: 2 sockets x 2 switches x 2 GPUs each."""
    return build_cluster(2)


class TestBuilder:
    def test_gpu_count(self, cluster):
        assert len(gpus_of(cluster)) == 16

    def test_gpu_names_are_unique(self, cluster):
        names = [gpu.name for gpu in gpus_of(cluster)]
        assert len(set(names)) == len(names)

    def test_tree_shape(self, cluster):
        assert cluster.kind is DeviceKind.CLUSTER
        nodes = cluster.children
        assert all(n.kind is DeviceKind.NODE for n in nodes)
        sockets = nodes[0].children
        assert len(sockets) == 2
        switches = sockets[0].children
        assert len(switches) == 2
        assert all(len(sw.children) == 2 for sw in switches)

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            build_cluster(0)

    def test_custom_server_spec(self):
        spec = ServerSpec(sockets=1, switches_per_socket=1, gpus_per_switch=4)
        cluster = build_cluster(1, spec=spec)
        assert len(gpus_of(cluster)) == 4
        gpus = gpus_of(cluster)
        assert link_level(gpus[0], gpus[3]) is LinkLevel.L1

    def test_cluster_for_gpu_count_rounds_up(self):
        cluster, gpus = cluster_for_gpu_count(12)
        assert len(gpus) == 12
        assert len(cluster.children) == 2  # 12 GPUs need 2 x 8-GPU nodes

    def test_cluster_for_gpu_count_validates(self):
        with pytest.raises(ValueError):
            cluster_for_gpu_count(0)

    def test_gpu_by_name(self, cluster):
        gpu = gpu_by_name(cluster, "node1/gpu5")
        assert gpu.kind is DeviceKind.GPU
        assert gpu.name == "node1/gpu5"

    def test_gpu_by_name_rejects_non_gpu(self, cluster):
        with pytest.raises(KeyError):
            gpu_by_name(cluster, "node0/socket0")

    def test_find_missing_raises(self, cluster):
        with pytest.raises(KeyError):
            cluster.find("node9/gpu0")


class TestLinkLevel:
    """GPU layout per node: gpu0,1 | switch0; gpu2,3 | switch1 (socket0);
    gpu4,5 | switch2; gpu6,7 | switch3 (socket1)."""

    def test_same_switch_is_l1(self, cluster):
        a = gpu_by_name(cluster, "node0/gpu0")
        b = gpu_by_name(cluster, "node0/gpu1")
        assert link_level(a, b) is LinkLevel.L1

    def test_same_socket_other_switch_is_l2(self, cluster):
        a = gpu_by_name(cluster, "node0/gpu0")
        b = gpu_by_name(cluster, "node0/gpu2")
        assert link_level(a, b) is LinkLevel.L2

    def test_cross_socket_is_l3(self, cluster):
        a = gpu_by_name(cluster, "node0/gpu0")
        b = gpu_by_name(cluster, "node0/gpu4")
        assert link_level(a, b) is LinkLevel.L3

    def test_cross_node_is_l4(self, cluster):
        a = gpu_by_name(cluster, "node0/gpu0")
        b = gpu_by_name(cluster, "node1/gpu0")
        assert link_level(a, b) is LinkLevel.L4

    def test_symmetric(self, cluster):
        gpus = gpus_of(cluster)
        for a in gpus[:4]:
            for b in gpus[4:8]:
                assert link_level(a, b) == link_level(b, a)

    def test_self_level_undefined(self, cluster):
        gpu = gpu_by_name(cluster, "node0/gpu0")
        with pytest.raises(ValueError):
            link_level(gpu, gpu)

    def test_non_gpu_rejected(self, cluster):
        gpu = gpu_by_name(cluster, "node0/gpu0")
        socket = cluster.find("node0/socket0")
        with pytest.raises(ValueError):
            link_level(gpu, socket)

    def test_lca_across_trees_rejected(self):
        a = gpus_of(build_cluster(1))[0]
        b = gpus_of(build_cluster(1))[0]
        with pytest.raises(ValueError):
            lowest_common_ancestor(a, b)


class TestPathResources:
    def test_l1_uses_only_shared_switch(self, cluster):
        a = gpu_by_name(cluster, "node0/gpu0")
        b = gpu_by_name(cluster, "node0/gpu1")
        resources = path_resources(a, b)
        assert resources == {"switch:node0/socket0/switch0"}

    def test_l3_paths_share_qpi(self, cluster):
        a = gpu_by_name(cluster, "node0/gpu0")
        b = gpu_by_name(cluster, "node0/gpu4")
        c = gpu_by_name(cluster, "node0/gpu2")
        d = gpu_by_name(cluster, "node0/gpu6")
        # Two cross-socket transfers in the same node contend on QPI.
        assert path_resources(a, b) & path_resources(c, d)

    def test_disjoint_l1_paths_do_not_contend(self, cluster):
        a = gpu_by_name(cluster, "node0/gpu0")
        b = gpu_by_name(cluster, "node0/gpu1")
        c = gpu_by_name(cluster, "node0/gpu2")
        d = gpu_by_name(cluster, "node0/gpu3")
        assert not path_resources(a, b) & path_resources(c, d)

    def test_l4_uses_nics(self, cluster):
        a = gpu_by_name(cluster, "node0/gpu0")
        b = gpu_by_name(cluster, "node1/gpu0")
        assert path_resources(a, b) == {"nic:node0", "nic:node1"}

    def test_l4_transfers_between_disjoint_node_pairs_ok(self):
        cluster = build_cluster(4)
        a, b = gpu_by_name(cluster, "node0/gpu0"), gpu_by_name(cluster, "node1/gpu0")
        c, d = gpu_by_name(cluster, "node2/gpu0"), gpu_by_name(cluster, "node3/gpu0")
        assert not path_resources(a, b) & path_resources(c, d)


class TestNearestNeighbor:
    def test_prefers_lowest_level(self, cluster):
        new = gpu_by_name(cluster, "node0/gpu1")
        candidates = [
            gpu_by_name(cluster, "node0/gpu0"),  # L1
            gpu_by_name(cluster, "node0/gpu4"),  # L3
            gpu_by_name(cluster, "node1/gpu0"),  # L4
        ]
        assert nearest_neighbor(new, candidates).name == "node0/gpu0"

    def test_paper_figure9_example(self):
        """Fig. 9: E is closest to C (same socket), F closest to D (same node)."""
        cluster = build_cluster(2)
        # Existing workers A,B on node0 switch0; C on node0 socket1;
        # D on node1.  New workers: E next to C's socket, F elsewhere node1.
        a = gpu_by_name(cluster, "node0/gpu0")
        b = gpu_by_name(cluster, "node0/gpu1")
        c = gpu_by_name(cluster, "node0/gpu4")
        d = gpu_by_name(cluster, "node1/gpu0")
        e = gpu_by_name(cluster, "node0/gpu5")  # same switch as C
        f = gpu_by_name(cluster, "node1/gpu4")  # same node as D
        existing = [a, b, c, d]
        assert nearest_neighbor(e, existing) is c
        assert nearest_neighbor(f, existing) is d

    def test_tie_break_is_deterministic(self, cluster):
        new = gpu_by_name(cluster, "node0/gpu2")
        # gpu0 and gpu1 are both L2 from gpu2; name order picks gpu0.
        candidates = [
            gpu_by_name(cluster, "node0/gpu1"),
            gpu_by_name(cluster, "node0/gpu0"),
        ]
        assert nearest_neighbor(new, candidates).name == "node0/gpu0"

    def test_empty_candidates_rejected(self, cluster):
        with pytest.raises(ValueError):
            nearest_neighbor(gpus_of(cluster)[0], [])
