"""Unit tests for the link/bandwidth model (paper Fig. 8)."""

import pytest

from repro.topology import (
    BEST_TRANSPORT,
    BandwidthProfile,
    LinkLevel,
    LinkSpec,
    Transport,
)

KB, MB, GB = 1024, 1024**2, 1024**3


@pytest.fixture
def profile():
    return BandwidthProfile()


class TestLinkSpec:
    def test_effective_bandwidth_saturates_at_peak(self):
        spec = LinkSpec(peak_bandwidth=10e9, latency=10e-6)
        assert spec.effective_bandwidth(10 * GB) == pytest.approx(10e9, rel=0.01)

    def test_effective_bandwidth_latency_bound_for_small(self):
        spec = LinkSpec(peak_bandwidth=10e9, latency=10e-6)
        assert spec.effective_bandwidth(1 * KB) < 0.05 * spec.peak_bandwidth

    def test_effective_bandwidth_monotone_in_size(self):
        spec = LinkSpec(peak_bandwidth=10e9, latency=10e-6)
        sizes = [KB, 64 * KB, MB, 64 * MB, GB]
        bws = [spec.effective_bandwidth(s) for s in sizes]
        assert bws == sorted(bws)

    def test_zero_size_zero_bandwidth(self):
        spec = LinkSpec(peak_bandwidth=10e9, latency=10e-6)
        assert spec.effective_bandwidth(0) == 0.0

    def test_transfer_time_linear_plus_latency(self):
        spec = LinkSpec(peak_bandwidth=1e9, latency=1e-3)
        assert spec.transfer_time(1e9) == pytest.approx(1.001)

    def test_negative_size_rejected(self):
        spec = LinkSpec(peak_bandwidth=1e9, latency=0.0)
        with pytest.raises(ValueError):
            spec.transfer_time(-1)


class TestBandwidthProfile:
    def test_figure8_ordering_p2p_shm_net(self, profile):
        """Fig. 8: P2P > SHM > NET at every message size."""
        for size in (64 * KB, MB, 16 * MB, 256 * MB, GB):
            p2p = profile.p2p.effective_bandwidth(size)
            shm = profile.shm.effective_bandwidth(size)
            net = profile.net.effective_bandwidth(size)
            assert p2p > shm > net, f"ordering violated at size {size}"

    def test_best_transport_per_level(self):
        assert BEST_TRANSPORT[LinkLevel.L1] is Transport.P2P
        assert BEST_TRANSPORT[LinkLevel.L2] is Transport.SHM
        assert BEST_TRANSPORT[LinkLevel.L3] is Transport.SHM
        assert BEST_TRANSPORT[LinkLevel.L4] is Transport.NET

    def test_transfer_time_ordering_by_level(self, profile):
        """Closer levels move the same payload faster."""
        size = 100 * MB
        times = [profile.transfer_time(level, size) for level in LinkLevel]
        assert times[0] < times[1] == times[2] < times[3]

    def test_spec_lookup(self, profile):
        assert profile.spec(Transport.P2P) is profile.p2p
        assert profile.spec(Transport.SHM) is profile.shm
        assert profile.spec(Transport.NET) is profile.net

    def test_measured_loopback_keeps_figure8_ordering(self):
        """The profile calibrated to this repo's own transports (PR 9
        data-plane sweep) preserves P2P > SHM > NET."""
        measured = BandwidthProfile.measured_loopback()
        for size in (64 * KB, MB, 16 * MB, 256 * MB):
            p2p = measured.p2p.effective_bandwidth(size)
            shm = measured.shm.effective_bandwidth(size)
            net = measured.net.effective_bandwidth(size)
            assert p2p > shm > net, f"ordering violated at size {size}"

    def test_resnet50_replication_is_subsecond(self, profile):
        """Sanity: a ResNet-50 state (~100MB params + optimizer) replicates
        in well under a second over P2P — consistent with the paper's ~1s
        end-to-end adjustment figure."""
        state_bytes = 2 * 102 * MB  # params + momentum
        assert profile.transfer_time(LinkLevel.L1, state_bytes) < 0.5
