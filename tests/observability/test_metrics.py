"""Tests for counters, gauges, and P² streaming quantiles."""

import random
import statistics

import pytest

from repro.observability import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    P2Quantile,
)


class TestCounterGauge:
    def test_counter_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(12)
        assert gauge.value == pytest.approx(3.0)


class TestP2Quantile:
    def test_validates_p(self):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                P2Quantile(bad)

    def test_empty_is_none(self):
        assert P2Quantile(0.5).value() is None

    def test_exact_below_five_samples(self):
        estimator = P2Quantile(0.5)
        for x in (3.0, 1.0, 2.0):
            estimator.observe(x)
        assert estimator.value() == pytest.approx(2.0)

    @pytest.mark.parametrize("p", [0.5, 0.95, 0.99])
    def test_tracks_uniform_distribution(self, p):
        rng = random.Random(7)
        samples = [rng.uniform(0.0, 100.0) for _ in range(5000)]
        estimator = P2Quantile(p)
        for x in samples:
            estimator.observe(x)
        # statistics.quantiles with n=100 gives the 1..99 percentiles.
        exact = statistics.quantiles(samples, n=1000)[int(p * 1000) - 1]
        assert estimator.value() == pytest.approx(exact, abs=2.0)

    @pytest.mark.parametrize("p", [0.5, 0.95])
    def test_tracks_skewed_distribution(self, p):
        rng = random.Random(11)
        samples = [rng.expovariate(1 / 0.05) for _ in range(5000)]
        estimator = P2Quantile(p)
        for x in samples:
            estimator.observe(x)
        exact = statistics.quantiles(samples, n=1000)[int(p * 1000) - 1]
        assert estimator.value() == pytest.approx(exact, rel=0.08)


class TestHistogram:
    def test_summary_statistics(self):
        hist = Histogram("h")
        for x in (1.0, 2.0, 3.0, 4.0):
            hist.observe(x)
        snap = hist.snapshot()
        assert snap["count"] == 4
        assert snap["min"] == 1.0
        assert snap["max"] == 4.0
        assert snap["mean"] == pytest.approx(2.5)
        assert set(snap) >= {"p50", "p95", "p99"}

    def test_quantile_accuracy_vs_statistics(self):
        rng = random.Random(3)
        samples = [rng.gauss(10.0, 2.0) for _ in range(4000)]
        hist = Histogram("h")
        for x in samples:
            hist.observe(x)
        for q in (0.5, 0.95, 0.99):
            exact = statistics.quantiles(samples, n=1000)[int(q * 1000) - 1]
            assert hist.quantile(q) == pytest.approx(exact, rel=0.05)

    def test_untracked_quantile_raises(self):
        hist = Histogram("h")
        hist.observe(1.0)
        with pytest.raises(KeyError):
            hist.quantile(0.25)

    def test_empty_histogram(self):
        hist = Histogram("h")
        assert hist.mean is None
        assert hist.quantile(0.5) is None


class TestMetricRegistry:
    def test_get_or_create_is_stable(self):
        registry = MetricRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")
        assert registry.names() == ["a", "b", "c"]

    def test_kind_mismatch_raises(self):
        registry = MetricRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_snapshot_covers_all_kinds(self):
        registry = MetricRegistry()
        registry.counter("hits").inc(3)
        registry.gauge("workers").set(8)
        registry.histogram("lat").observe(0.5)
        snap = registry.snapshot()
        assert snap["hits"] == 3
        assert snap["workers"] == 8
        assert snap["lat"]["count"] == 1
