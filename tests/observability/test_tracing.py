"""Tests for the span tracer and the Chrome trace-event export."""

import json

import pytest

from repro.observability import (
    Tracer,
    load_trace_events,
    summarize_events,
    validate_events,
)


class FakeClock:
    """A settable clock so span timings are exact."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


class TestRecording:
    def test_begin_end_span(self, clock):
        tracer = Tracer(clock=clock)
        span = tracer.begin("work", track="w0", cat="test", key="value")
        clock.now = 2.5
        tracer.end(span, extra="yes")
        (recorded,) = tracer.spans("work")
        assert recorded.duration == pytest.approx(2.5)
        assert recorded.args == {"key": "value", "extra": "yes"}
        assert recorded.track == "w0"

    def test_context_manager_span(self, clock):
        tracer = Tracer(clock=clock)
        with tracer.span("block", track="w0"):
            clock.now = 1.0
        (recorded,) = tracer.spans("block")
        assert recorded.duration == pytest.approx(1.0)

    def test_instants_and_counters(self, clock):
        tracer = Tracer(clock=clock)
        clock.now = 3.0
        tracer.instant("ping", track="am", hello=1)
        tracer.counter("depth", 7.0, track="am")
        (instant,) = tracer.instants("ping")
        assert instant.start == 3.0
        assert instant.args == {"hello": 1}
        assert len(tracer) == 2

    def test_retrospective_recording(self):
        tracer = Tracer()
        tracer.add_span("past", 1.0, 4.0, track="sim")
        tracer.add_instant("mark", 2.0, track="sim")
        tracer.add_counter("gpus", 2.5, 16, track="sim")
        (span,) = tracer.spans("past")
        assert span.duration == pytest.approx(3.0)
        assert tracer.span_names() == {"past"}

    def test_open_spans_not_reported(self, clock):
        tracer = Tracer(clock=clock)
        tracer.begin("never-closed")
        assert tracer.spans("never-closed") == []
        assert all(e["ph"] == "M" for e in tracer.to_events())

    def test_disabled_tracer_records_nothing(self, clock):
        tracer = Tracer(clock=clock, enabled=False)
        tracer.begin("a")
        tracer.instant("b")
        tracer.add_span("c", 0.0, 1.0)
        assert len(tracer) == 0

    def test_end_is_none_safe(self):
        Tracer(enabled=False).end(None)  # must not raise


class TestExport:
    def _sample_tracer(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock, process="test-proc")
        with tracer.span("outer", track="w0", cat="t"):
            clock.now = 1.0
            with tracer.span("inner", track="w0", cat="t"):
                clock.now = 1.5
            clock.now = 2.0
        tracer.instant("event", track="am")
        tracer.counter("gpus", 4, track="cluster")
        return tracer

    def test_to_events_structure(self):
        events = self._sample_tracer().to_events()
        phases = [e["ph"] for e in events]
        # metadata first: process_name + one thread_name per track
        assert phases[:4] == ["M", "M", "M", "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"outer", "inner"}
        outer = next(e for e in complete if e["name"] == "outer")
        assert outer["ts"] == 0.0
        assert outer["dur"] == pytest.approx(2.0 * 1e6)  # microseconds
        instant = next(e for e in events if e["ph"] == "i")
        assert instant["s"] == "t"

    def test_tracks_get_distinct_tids(self):
        events = self._sample_tracer().to_events()
        names = {
            e["args"]["name"]: e["tid"]
            for e in events if e["name"] == "thread_name"
        }
        assert set(names) == {"w0", "am", "cluster"}
        assert len(set(names.values())) == 3

    def test_export_round_trip(self, tmp_path):
        tracer = self._sample_tracer()
        path = tmp_path / "trace.json"
        count = tracer.export(str(path))
        loaded = load_trace_events(str(path))
        assert len(loaded) == count == len(tracer.to_events())
        assert validate_events(loaded) == []
        # The file is strict JSON (Perfetto) ...
        assert json.loads(path.read_text()) == loaded
        # ... and line-parseable (JSONL consumers).
        body = path.read_text().strip().splitlines()[1:-1]
        assert all(json.loads(line.rstrip(",")) for line in body)

    def test_load_tolerates_unterminated_array(self, tmp_path):
        tracer = self._sample_tracer()
        path = tmp_path / "trace.json"
        tracer.export(str(path))
        truncated = tmp_path / "cut.json"
        truncated.write_text(path.read_text().rsplit("]", 1)[0])
        assert load_trace_events(str(truncated)) == load_trace_events(
            str(path)
        )

    def test_load_trace_events_object_form(self, tmp_path):
        path = tmp_path / "obj.json"
        path.write_text(json.dumps(
            {"traceEvents": [{"name": "a", "ph": "i", "ts": 0, "s": "t"}]}
        ))
        assert len(load_trace_events(str(path))) == 1


class TestValidation:
    def test_good_events_pass(self):
        assert validate_events(
            [{"name": "a", "ph": "X", "ts": 0.0, "dur": 1.0}]
        ) == []

    @pytest.mark.parametrize("bad", [
        {"ph": "X", "ts": 0.0, "dur": 1.0},            # no name
        {"name": "a", "ph": "Z", "ts": 0.0},           # unknown phase
        {"name": "a", "ph": "X", "dur": 1.0},          # no ts
        {"name": "a", "ph": "X", "ts": 0.0},           # X without dur
        {"name": "a", "ph": "X", "ts": 0.0, "dur": -1},  # negative dur
    ])
    def test_bad_events_flagged(self, bad):
        events = [{"name": "ok", "ph": "i", "ts": 0.0}, bad]
        assert validate_events(events)

    def test_metadata_only_trace_is_a_problem(self):
        events = [{"name": "process_name", "ph": "M", "args": {}}]
        assert validate_events(events)


class TestSummarize:
    def test_rows_sorted_by_total(self):
        tracer = Tracer()
        tracer.add_span("big", 0.0, 10.0)
        for i in range(4):
            tracer.add_span("small", i, i + 0.5)
        rows = summarize_events(tracer.to_events())
        assert [r[0] for r in rows] == ["big", "small"]
        name, count, total, mean, peak = rows[1]
        assert count == 4
        assert total == pytest.approx(2.0)
        assert mean == pytest.approx(0.5)
        assert peak == pytest.approx(0.5)
