"""Tests for the fleet telemetry plane: clock alignment, trace merging,
metric rollups, the fleet collector, and the goodput-report overhead
accounting."""

import json

import pytest

from repro.observability import (
    ClockSync,
    FleetCollector,
    GoodputReport,
    MetricRegistry,
    TraceMerger,
    Tracer,
    derive_report,
    merge_metric_snapshots,
    prometheus_text,
    validate_events,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt
        return self.now


class TestClockSync:
    def test_midpoint_offset_recovers_constant_skew(self):
        """Client clock = server clock - 5 s, symmetric 10 ms latency."""
        sync = ClockSync()
        offset, rtt = sync.add(
            t0=100.0, t1=105.01, t2=105.02, t3=100.03
        )
        assert offset == pytest.approx(5.0, abs=1e-9)
        assert rtt == pytest.approx(0.02, abs=1e-9)
        assert sync.offset == pytest.approx(5.0, abs=1e-9)

    def test_min_rtt_sample_wins(self):
        """A congested (high-rtt, skewed) sample must not displace a
        clean one — the minimum-delay filter keeps the best estimate."""
        sync = ClockSync()
        sync.add(0.0, 5.001, 5.002, 0.003)  # clean: rtt 2 ms
        sync.add(10.0, 15.9, 15.91, 10.92)  # congested: rtt ~910 ms
        assert sync.rtt == pytest.approx(0.002, abs=1e-9)
        assert sync.offset == pytest.approx(5.0, abs=1e-3)
        assert sync.count == 2

    def test_window_evicts_oldest(self):
        sync = ClockSync(window=2)
        sync.add(0.0, 1.0005, 1.0005, 0.001)  # best, but will be evicted
        sync.add(0.0, 2.01, 2.01, 0.02)
        sync.add(0.0, 3.005, 3.005, 0.01)
        assert sync.offset == pytest.approx(3.0, abs=0.1)
        assert sync.rtt == pytest.approx(0.01, abs=1e-9)

    def test_empty_sync_has_no_estimate(self):
        assert ClockSync().offset is None
        assert ClockSync().rtt is None


def _trace(process, clock, spans=(), instants=(), samples=()):
    """A little per-process tracer: spans are (name, track, start, dur)."""
    tracer = Tracer(clock=clock, process=process)
    for name, track, start, dur in spans:
        tracer.add_span(name, start, start + dur, track=track)
    for name, track, when in instants:
        tracer.add_instant(name, when, track=track, cat="net")
    for offset, rtt, when in samples:
        tracer.add_instant(
            "net.clock_sample", when, track=process, cat="net",
            offset=offset, rtt=rtt,
        )
    return tracer


class TestTraceMerger:
    def test_merge_aligns_clocks_and_names_processes(self):
        clock = FakeClock()
        am = _trace("am", clock, spans=[("serve", "am", 1.0, 0.5)])
        # Worker clock runs 2 s behind the AM; its own clock samples say
        # offset=+2.0 (am_clock - worker_clock).
        w0 = _trace(
            "w0", clock,
            spans=[("worker.iteration", "w0", 0.0, 0.5)],
            samples=[(2.0, 0.001, 0.1)],
        )
        merger = TraceMerger(reference="am")
        merger.add(am.to_events(), process="am")
        merger.add(w0.to_events(), process="w0")
        assert merger.offsets() == {"am": 0.0, "w0": 2.0}
        merged = merger.merge()
        assert not validate_events(merged)
        processes = {
            e["args"]["name"]: e["pid"] for e in merged
            if e.get("ph") == "M" and e.get("name") == "process_name"
        }
        assert set(processes) == {"am", "w0"}
        assert processes["am"] != processes["w0"]
        iteration = next(
            e for e in merged if e.get("name") == "worker.iteration"
        )
        # 0.0 s on the worker clock + 2.0 s offset = 2.0 s fleet time.
        assert iteration["ts"] == pytest.approx(2.0e6)
        assert iteration["pid"] == processes["w0"]

    def test_merge_is_deterministic_regardless_of_add_order(self):
        clock = FakeClock()
        traces = {
            name: _trace(
                name, clock, spans=[("worker.iteration", name, i, 0.25)]
            ).to_events()
            for i, name in enumerate(["w2", "w0", "w1"])
        }
        forward, backward = TraceMerger(), TraceMerger()
        for name in ["w2", "w0", "w1"]:
            forward.add(traces[name], process=name)
        for name in ["w1", "w0", "w2"]:
            backward.add(traces[name], process=name)
        assert forward.merge() == backward.merge()

    def test_re_adding_a_process_replaces_its_events(self):
        clock = FakeClock()
        merger = TraceMerger()
        merger.add(
            _trace("w0", clock, spans=[("a", "w0", 0, 1)]).to_events(),
            process="w0",
        )
        merger.add(
            _trace("w0", clock, spans=[("b", "w0", 0, 1)]).to_events(),
            process="w0",
        )
        names = {e.get("name") for e in merger.merge()}
        assert "b" in names and "a" not in names

    def test_malformed_events_are_dropped_not_fatal(self):
        merger = TraceMerger()
        merger.add(
            [
                {"name": "ok", "ph": "X", "ts": 0.0, "dur": 5.0,
                 "pid": 1, "tid": 1, "args": {}},
                {"name": "negative", "ph": "X", "ts": 0.0, "dur": -1.0,
                 "pid": 1, "tid": 1, "args": {}},
                {"name": "", "ph": "i", "ts": 0.0, "pid": 1, "tid": 1},
                {"ph": "X", "ts": "not-a-number"},
            ],
            process="w0",
        )
        merged = merger.merge()
        assert not validate_events(merged)
        names = {e.get("name") for e in merged if e.get("ph") == "X"}
        assert names == {"ok"}

    def test_empty_merge_is_still_valid(self):
        merged = TraceMerger().merge()
        assert not validate_events(merged)
        assert any(e.get("name") == "fleet.merge" for e in merged)


class TestMetricRoundTrip:
    def test_counters_gauges_histograms_survive_json(self):
        registry = MetricRegistry()
        registry.counter("requests").inc(41)
        registry.gauge("depth").set(3.5)
        histogram = registry.histogram("latency")
        for value in range(1, 101):
            histogram.observe(float(value))
        data = json.loads(json.dumps(registry.to_json()))
        restored = MetricRegistry.from_json(data)
        assert restored.snapshot() == registry.snapshot()

    def test_restored_histogram_continues_streaming(self):
        """Losslessness means future observations continue exactly."""
        original = MetricRegistry()
        for value in range(50):
            original.histogram("h").observe(float(value))
        restored = MetricRegistry.from_json(original.to_json())
        for value in range(50, 100):
            original.histogram("h").observe(float(value))
            restored.histogram("h").observe(float(value))
        assert restored.snapshot() == original.snapshot()

    def test_unknown_kinds_are_skipped(self):
        restored = MetricRegistry.from_json({
            "future": {"kind": "sketch", "state": {}},
            "ok": {"kind": "counter", "value": 2.0},
        })
        assert restored.snapshot() == {"ok": 2.0}


class TestMergeSnapshots:
    def test_counters_sum_and_histograms_combine(self):
        a = MetricRegistry()
        a.counter("n").inc(3)
        a.histogram("t").observe(1.0)
        a.histogram("t").observe(3.0)
        b = MetricRegistry()
        b.counter("n").inc(4)
        b.histogram("t").observe(5.0)
        merged = merge_metric_snapshots([a.snapshot(), b.snapshot()])
        assert merged["n"] == 7
        assert merged["t"]["count"] == 3
        assert merged["t"]["sum"] == pytest.approx(9.0)
        assert merged["t"]["min"] == 1.0
        assert merged["t"]["max"] == 5.0
        assert merged["t"]["mean"] == pytest.approx(3.0)

    def test_prometheus_text_exposition(self):
        registry = MetricRegistry()
        registry.counter("net.sends").inc(5)
        registry.histogram("sync.wait").observe(2.0)
        text = prometheus_text(registry.snapshot())
        assert text.endswith("\n")
        assert "# TYPE elan_net_sends gauge" in text
        assert "elan_net_sends 5" in text
        assert "# TYPE elan_sync_wait summary" in text
        assert 'elan_sync_wait{quantile="0.5"}' in text
        assert "elan_sync_wait_count 1" in text


class TestCollectEventsCursor:
    def test_open_spans_stay_pending_until_closed(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock, process="w0")
        open_span = tracer.begin("slow", track="w0")
        tracer.instant("tick", track="w0")
        records, next_start, pending = tracer.collect_events()
        assert [r["name"] for r in records] == ["tick"]
        assert pending == [0]
        assert next_start == 2
        clock.advance(1.0)
        tracer.end(open_span)
        records, next_start, pending = tracer.collect_events(
            next_start, pending
        )
        assert [r["name"] for r in records] == ["slow"]
        assert pending == []

    def test_limit_bounds_work_per_call(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock, process="w0")
        for i in range(10):
            tracer.instant(f"i{i}", track="w0")
        records, next_start, pending = tracer.collect_events(limit=4)
        assert len(records) == 4 and next_start == 4 and not pending
        records, next_start, _ = tracer.collect_events(next_start, limit=100)
        assert len(records) == 6 and next_start == 10

    def test_records_carry_idx_and_track(self):
        tracer = Tracer(clock=FakeClock(), process="w0")
        tracer.instant("x", track="main")
        [record], _, _ = tracer.collect_events()
        assert record["idx"] == 0
        assert record["track"] == "main"


class TestFleetCollector:
    @staticmethod
    def _delta(worker, records, start, full=False, **extra):
        payload = {
            "worker": worker, "job": "j1", "full": full, "start": start,
            "events": records, "metrics": None, "offset": None,
            "dropped": 0,
        }
        payload.update(extra)
        return payload

    @staticmethod
    def _records(indices):
        return [
            {"idx": i, "name": f"e{i}", "ph": "i", "s": "t", "ts": float(i),
             "pid": 1, "tid": 1, "track": "w0", "args": {}}
            for i in indices
        ]

    def test_deltas_fold_idempotently_by_index(self):
        collector = FleetCollector()
        collector.ingest(self._delta("w0", self._records([0, 1]), 0))
        collector.ingest(self._delta("w0", self._records([1, 2]), 1))
        collector.ingest(self._delta("w0", self._records([1, 2]), 1))  # dup
        assert [e["idx"] for e in collector.worker_events("w0")] == [0, 1, 2]

    def test_gap_triggers_resync_and_full_ship_recovers(self):
        """A successor AM holds nothing; a mid-stream delta must provoke
        a resync, and the follow-up full snapshot must rebuild the view."""
        collector = FleetCollector()
        reply = collector.ingest(self._delta("w0", self._records([7]), 7))
        assert reply["resync"] is True
        reply = collector.ingest(
            self._delta("w0", self._records(range(8)), 0, full=True)
        )
        assert reply["resync"] is False
        assert len(collector.worker_events("w0")) == 8

    def test_full_replaces_stale_view(self):
        collector = FleetCollector()
        collector.ingest(self._delta("w0", self._records([0, 1, 2]), 0))
        collector.ingest(
            self._delta("w0", self._records([5, 6]), 5, full=True)
        )
        assert [e["idx"] for e in collector.worker_events("w0")] == [5, 6]

    def test_payload_round_trip(self):
        collector = FleetCollector(job_id="j1")
        collector.ingest(
            self._delta("w0", self._records([0, 1]), 0, offset=0.25)
        )
        clone = FleetCollector.from_payload(collector.to_payload())
        assert clone.worker_events("w0") == collector.worker_events("w0")
        assert clone.jobs() == collector.jobs()

    def test_report_groups_by_job(self):
        collector = FleetCollector()
        for worker, job in (("w0", "alpha"), ("w1", "alpha"), ("w2", "beta")):
            records = [{
                "idx": 0, "name": "worker.iteration", "ph": "X",
                "ts": 0.0, "dur": 5e5, "pid": 1, "tid": 1,
                "track": worker, "args": {},
            }]
            collector.ingest({
                "worker": worker, "job": job, "full": True, "start": 0,
                "events": records, "metrics": None, "offset": 0.0,
                "dropped": 0,
            })
        reports = collector.report()
        assert set(reports) == {"alpha", "beta", "fleet"}
        assert reports["alpha"].workers == 2
        assert reports["beta"].workers == 1
        assert reports["fleet"].workers == 3
        assert reports["fleet"].iterations == 3


class TestGoodputOverheads:
    def test_overhead_categories_and_upload_series(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock, process="am")
        tracer.add_span("worker.iteration", 0.0, 4.0, track="w0")
        tracer.add_span("net.state_upload", 4.0, 4.5, track="w0")
        tracer.add_span("adjust.commit", 4.5, 5.0, track="am")
        tracer.add_span("net.reconnect", 5.0, 5.2, track="w0")
        report = derive_report(tracer.to_events())
        assert report.overhead["replication"] == pytest.approx(0.5)
        assert report.overhead["rescheduling"] == pytest.approx(0.5)
        assert report.overhead["degradation"] == pytest.approx(0.2, abs=1e-6)
        assert report.upload_series == [
            (pytest.approx(4.0), pytest.approx(0.5))
        ]
        formatted = report.format()
        assert "overhead.replication" in formatted
        assert "uploads" in formatted

    def test_merged_fleet_trace_counts_workers_across_pids(self):
        """Two processes whose iteration lanes share tid must still be
        two workers (the pid/tid collapse regression)."""
        clock = FakeClock()
        merger = TraceMerger()
        for name in ("w0", "w1"):
            merger.add(
                _trace(
                    name, clock,
                    spans=[("worker.iteration", name, 0.0, 1.0)],
                ).to_events(),
                process=name,
            )
        report = derive_report(merger.merge())
        assert report.workers == 2
        assert report.iterations == 2

    def test_report_round_trips_through_payload_dict(self):
        """The live-query path rebuilds reports from plain dicts."""
        original = GoodputReport(
            job="j", goodput=0.5, busy_seconds=1.0, wall_seconds=2.0,
            iterations=10, workers=2, overhead={"replication": 0.1},
            upload_series=[(0.0, 0.1)], counts={"failovers": 1},
        )
        clone = GoodputReport(**json.loads(json.dumps({
            "job": original.job, "goodput": original.goodput,
            "busy_seconds": original.busy_seconds,
            "wall_seconds": original.wall_seconds,
            "iterations": original.iterations, "workers": original.workers,
            "counts": original.counts, "overhead": original.overhead,
            "upload_series": original.upload_series,
        })))
        assert clone.goodput == original.goodput
        assert clone.overhead == original.overhead
        assert "[job j]" in clone.format()
