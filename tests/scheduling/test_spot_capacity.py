"""Dynamic capacity (spot instances / over-subscription, §VI-C).

When transient capacity disappears, static jobs get preempted back to the
queue while elastic jobs shrink in place — the "utilize transient
resources such as spot instances" use case.
"""

import pytest

from repro.perfmodel import RESNET50
from repro.scheduling import (
    ClusterSimulator,
    ElasticFifoPolicy,
    FifoPolicy,
    JobSpec,
    generate_trace,
)


def job(job_id, submit, work, req, min_res=1, max_res=None):
    return JobSpec(
        job_id=job_id,
        model=RESNET50,
        submit_time=submit,
        work=work,
        req_res=req,
        min_res=min_res,
        max_res=max_res or req * 2,
    )


class TestCapacityProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSimulator(
                [job("j", 0.0, 1e6, 4)], FifoPolicy(), total_gpus=8,
                capacity_profile=[(100.0, 0)],
            )

    def test_static_job_evicted_on_capacity_drop(self):
        trace = [job("a", 0.0, 3e7, 8), job("b", 1.0, 3e7, 8)]
        result = ClusterSimulator(
            trace, FifoPolicy(), total_gpus=16,
            capacity_profile=[(5000.0, 8)],  # half the cluster vanishes
        ).run()
        assert result.evictions >= 1
        assert all(e.done for e in result.executions)

    def test_elastic_job_shrinks_instead_of_evicting(self):
        trace = [job("a", 0.0, 3e7, 8, min_res=2),
                 job("b", 1.0, 3e7, 8, min_res=2)]
        result = ClusterSimulator(
            trace, ElasticFifoPolicy(), total_gpus=16,
            capacity_profile=[(5000.0, 8)],
        ).run()
        assert result.evictions == 0
        assert all(e.done for e in result.executions)

    def test_capacity_returning_is_reused(self):
        """After the dip ends, the elastic job expands again."""
        trace = [job("solo", 0.0, 3e7, 8, min_res=2, max_res=16)]
        result = ClusterSimulator(
            trace, ElasticFifoPolicy(), total_gpus=16,
            capacity_profile=[(2000.0, 4), (6000.0, 16)],
        ).run()
        busy = {p.time: p.busy for p in result.utilization}
        during_dip = [b for t, b in busy.items() if 2000 <= t < 6000]
        after = [b for t, b in busy.items() if t >= 6000]
        assert during_dip and max(during_dip) <= 4
        assert after and max(after) > 4

    def test_elastic_beats_static_under_spot_churn(self):
        """The paper's claim: elasticity exploits transient capacity."""
        trace = generate_trace(num_jobs=40, seed=13)
        churn = [(t * 3600.0, 96 if (t // 6) % 2 == 0 else 48)
                 for t in range(0, 72, 6)]
        static = ClusterSimulator(
            trace, FifoPolicy(), total_gpus=96, capacity_profile=churn
        ).run()
        elastic = ClusterSimulator(
            trace, ElasticFifoPolicy(), total_gpus=96, capacity_profile=churn
        ).run()
        assert elastic.evictions == 0
        assert elastic.average_jct < static.average_jct
        assert static.evictions > 0

    def test_constant_profile_matches_no_profile(self):
        trace = generate_trace(num_jobs=25, seed=14)
        plain = ClusterSimulator(trace, ElasticFifoPolicy(),
                                 total_gpus=64).run()
        stepped = ClusterSimulator(
            trace, ElasticFifoPolicy(), total_gpus=64,
            capacity_profile=[(0.0, 64)],
        ).run()
        assert stepped.average_jct == pytest.approx(plain.average_jct)
        assert stepped.makespan == pytest.approx(plain.makespan)
