"""Tests for policies + the cluster simulator (§VI-C behaviour)."""

import pytest

from repro.perfmodel import MOBILENET_V2, RESNET50
from repro.scheduling import (
    BackfillPolicy,
    ClusterSimulator,
    ElanCosts,
    ElasticBackfillPolicy,
    ElasticFifoPolicy,
    FifoPolicy,
    IdealCosts,
    JobExecution,
    JobSpec,
    ShutdownRestartCosts,
    generate_trace,
    summarize,
)


def job(job_id, submit, work, req, min_res=None, max_res=None, model=RESNET50):
    return JobSpec(
        job_id=job_id,
        model=model,
        submit_time=submit,
        work=work,
        req_res=req,
        min_res=min_res if min_res is not None else max(1, req // 4),
        max_res=max_res if max_res is not None else req * 4,
    )


class TestStaticPolicies:
    def test_fifo_runs_everything_to_completion(self):
        trace = [job(f"j{i}", i * 10.0, 1e6, 4) for i in range(5)]
        result = ClusterSimulator(trace, FifoPolicy(), total_gpus=8).run()
        assert all(e.done for e in result.executions)

    def test_fifo_head_blocks_queue(self):
        # j0 occupies the cluster; j1 (too big) blocks small j2.
        trace = [
            job("j0", 0.0, 5e6, 8),
            job("j1", 1.0, 1e5, 8),
            job("j2", 2.0, 1e5, 1),
        ]
        result = ClusterSimulator(trace, FifoPolicy(), total_gpus=8).run()
        by_id = {e.spec.job_id: e for e in result.executions}
        assert by_id["j2"].start_time >= by_id["j1"].start_time

    def test_backfill_lets_small_job_jump(self):
        # Same trace: j2 is short enough to finish before j1's reservation.
        trace = [
            job("j0", 0.0, 5e6, 8),
            job("j1", 1.0, 1e5, 8),
            job("j2", 2.0, 1e4, 1, min_res=1, max_res=1),
        ]
        fifo = ClusterSimulator(trace, FifoPolicy(), total_gpus=9).run()
        backfill = ClusterSimulator(trace, BackfillPolicy(), total_gpus=9).run()
        fifo_j2 = {e.spec.job_id: e for e in fifo.executions}["j2"]
        bf_j2 = {e.spec.job_id: e for e in backfill.executions}["j2"]
        assert bf_j2.start_time < fifo_j2.start_time

    def test_static_jobs_keep_req_res(self):
        trace = [job("j0", 0.0, 1e6, 4)]
        result = ClusterSimulator(trace, FifoPolicy(), total_gpus=8).run()
        assert result.adjustments == 0

    def test_oversized_job_rejected(self):
        trace = [job("j0", 0.0, 1e6, 16)]
        with pytest.raises(ValueError):
            ClusterSimulator(trace, FifoPolicy(), total_gpus=8)


class TestElasticPolicies:
    def test_admits_on_min_res(self):
        """A job that cannot get req_res still starts at min_res."""
        trace = [
            job("big", 0.0, 5e6, 8, min_res=2),
            job("late", 1.0, 1e5, 8, min_res=2),
        ]
        result = ClusterSimulator(
            trace, ElasticFifoPolicy(), total_gpus=8
        ).run()
        late = {e.spec.job_id: e for e in result.executions}["late"]
        assert late.start_time == pytest.approx(1.0, abs=1e-6)

    def test_expands_to_use_free_gpus(self):
        """A lone job scales out toward max_res when the cluster idles."""
        trace = [job("solo", 0.0, 1e7, 4, max_res=16)]
        result = ClusterSimulator(
            trace, ElasticFifoPolicy(), total_gpus=32
        ).run()
        solo = result.executions[0]
        # Finished faster than a static run at req_res would have.
        static_duration = solo.spec.duration_at(4)
        assert solo.completion_time < 0.8 * static_duration

    def test_respects_max_res(self):
        trace = [job("capped", 0.0, 1e6, 4, max_res=6)]
        simulator = ClusterSimulator(trace, ElasticFifoPolicy(), total_gpus=64)
        result = simulator.run()
        assert max(p.busy for p in result.utilization) <= 6

    def test_allocator_follows_marginal_gains(self):
        """With ResNet and MobileNet competing, the extra GPUs flow to
        whoever currently gains more — MobileNet's gains decay fast, so
        ResNet ends up with the larger share."""
        trace = [
            job("res", 0.0, 5e7, 4, min_res=2, max_res=64, model=RESNET50),
            job("mob", 0.0, 5e7, 4, min_res=2, max_res=64, model=MOBILENET_V2),
        ]
        simulator = ClusterSimulator(trace, ElasticFifoPolicy(), total_gpus=64)
        allocation = simulator.policy.allocate(
            0.0,
            [],
            [JobExecution(spec=s, workers=s.min_res) for s in trace],
            64,
        )
        assert allocation["res"] + allocation["mob"] == 64
        assert allocation["res"] > allocation["mob"]

    def test_elastic_never_overcommits(self):
        trace = generate_trace(num_jobs=40, seed=7)
        result = ClusterSimulator(
            trace, ElasticBackfillPolicy(), total_gpus=64
        ).run()
        assert max(p.busy for p in result.utilization) <= 64

    def test_adjustment_downtime_charged(self):
        """Under S&R costs the same trace takes longer than under Ideal."""
        trace = generate_trace(num_jobs=40, seed=8)
        ideal = ClusterSimulator(
            trace, ElasticFifoPolicy(), total_gpus=64, costs=IdealCosts()
        ).run()
        sr = ClusterSimulator(
            trace, ElasticFifoPolicy(), total_gpus=64,
            costs=ShutdownRestartCosts(),
        ).run()
        assert sr.average_jct > ideal.average_jct


class TestPaperHeadlines:
    """Fig. 20/22 shapes on a reduced trace (3 seeds would be a bench)."""

    @pytest.fixture(scope="class")
    def results(self):
        trace = generate_trace(num_jobs=80, seed=1)
        out = {}
        for policy in (FifoPolicy(), BackfillPolicy(), ElasticFifoPolicy(),
                       ElasticBackfillPolicy()):
            out[policy.name] = ClusterSimulator(
                trace, policy, total_gpus=64, costs=ElanCosts()
            ).run()
        return out

    def test_elasticity_cuts_pending_time(self, results):
        assert results["e-fifo"].average_jpt < 0.57 * results["fifo"].average_jpt
        assert results["e-bf"].average_jpt < 0.57 * results["bf"].average_jpt

    def test_elasticity_cuts_completion_time(self, results):
        assert results["e-fifo"].average_jct < 0.85 * results["fifo"].average_jct

    def test_elasticity_cuts_makespan(self, results):
        assert results["e-fifo"].makespan < results["fifo"].makespan

    def test_elasticity_raises_utilization(self, results):
        assert (
            results["e-fifo"].average_utilization()
            > results["fifo"].average_utilization()
        )

    def test_elan_close_to_ideal_sr_behind(self):
        """Fig. 22: Elan ~ Ideal; S&R visibly worse."""
        trace = generate_trace(num_jobs=80, seed=2)
        jcts = {}
        for costs in (IdealCosts(), ElanCosts(), ShutdownRestartCosts()):
            jcts[costs.name] = ClusterSimulator(
                trace, ElasticFifoPolicy(), total_gpus=64, costs=costs
            ).run().average_jct
        assert jcts["elan"] < 1.02 * jcts["ideal"]
        assert jcts["sr"] > jcts["elan"]


class TestMetrics:
    def test_summarize_aggregates(self):
        trace = generate_trace(num_jobs=30, seed=3)
        results = [
            ClusterSimulator(trace, FifoPolicy(), total_gpus=64).run()
            for _ in range(2)
        ]
        summary = summarize(results)
        assert summary["policy"] == "fifo"
        assert summary["jpt_std"] == pytest.approx(0.0, abs=1e-9)
        assert summary["jct_mean"] > 0

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_utilization_series_resamples(self):
        trace = generate_trace(num_jobs=30, seed=4)
        result = ClusterSimulator(trace, FifoPolicy(), total_gpus=64).run()
        series = result.utilization_series(resolution=3600.0)
        assert len(series) > 10
        assert all(0.0 <= frac <= 1.0 for _t, frac in series)


class TestSchedulingTrace:
    def test_simulator_emits_job_allocation_events(self):
        from repro.observability import Tracer

        tracer = Tracer(process="sched")
        trace = generate_trace(num_jobs=20, seed=6)
        result = ClusterSimulator(
            trace, ElasticFifoPolicy(), total_gpus=64,
            costs=ElanCosts(), tracer=tracer,
        ).run()
        # Every job got a start instant and a lifetime span.
        starts = tracer.instants("job.start")
        runs = tracer.spans("job.run")
        assert len(starts) >= len(trace)  # re-starts after eviction allowed
        assert len(runs) == len(trace)
        by_id = {s.track: s for s in runs}
        for execution in result.executions:
            span = by_id[execution.spec.job_id]
            assert span.start == pytest.approx(execution.start_time)
            assert span.end == pytest.approx(execution.completion_time)
        # Elastic reallocation showed up as job.adjust instants and the
        # utilization series as a counter.
        assert len(tracer.instants("job.adjust")) == result.adjustments
        counters = [e for e in tracer.to_events() if e["ph"] == "C"]
        assert counters and all(
            e["name"] == "cluster.busy_gpus" for e in counters
        )
