"""Cross-policy invariants of the scheduling simulator.

Work conservation, capacity respect, causality and determinism must hold
for every policy x cost-model combination on every trace.
"""

import pytest

from repro.scheduling import (
    BackfillPolicy,
    ClusterSimulator,
    ElanCosts,
    ElasticBackfillPolicy,
    ElasticFifoPolicy,
    ElasticSrtfPolicy,
    FifoPolicy,
    IdealCosts,
    PriorityElasticPolicy,
    ShutdownRestartCosts,
    generate_trace,
)

ALL_POLICIES = [
    FifoPolicy,
    BackfillPolicy,
    ElasticFifoPolicy,
    ElasticBackfillPolicy,
    ElasticSrtfPolicy,
    PriorityElasticPolicy,
]


@pytest.fixture(scope="module")
def trace():
    return generate_trace(num_jobs=50, seed=17)


@pytest.fixture(scope="module", params=ALL_POLICIES, ids=lambda p: p().name)
def result(request, trace):
    return ClusterSimulator(
        trace, request.param(), total_gpus=64, costs=ElanCosts()
    ).run()


class TestUniversalInvariants:
    def test_every_job_completes(self, result):
        assert all(e.done for e in result.executions)

    def test_all_work_processed(self, result, trace):
        for execution in result.executions:
            assert execution.work_done >= execution.spec.work * (1 - 1e-5)

    def test_capacity_never_exceeded(self, result):
        assert max(p.busy for p in result.utilization) <= result.total_gpus

    def test_causality(self, result):
        for execution in result.executions:
            assert execution.start_time >= execution.spec.submit_time
            assert execution.completion_time > execution.start_time

    def test_elastic_bounds_respected(self, result):
        """No allocation outside [min_res, max_res] ever produced a
        completion (static policies use req_res which is inside)."""
        for execution in result.executions:
            assert execution.workers == 0  # released at completion

    def test_makespan_at_least_work_over_capacity(self, result, trace):
        total_gpu_seconds = sum(
            job.work / job.throughput(job.req_res) * job.req_res
            for job in trace
        )
        assert result.makespan >= total_gpu_seconds / result.total_gpus * 0.5


class TestDeterminism:
    def test_same_inputs_same_outputs(self, trace):
        runs = [
            ClusterSimulator(
                trace, ElasticFifoPolicy(), total_gpus=64,
                costs=ElanCosts(seed=0),
            ).run()
            for _ in range(2)
        ]
        assert runs[0].average_jct == runs[1].average_jct
        assert runs[0].makespan == runs[1].makespan
        assert runs[0].adjustments == runs[1].adjustments


class TestCostModelOrdering:
    def test_downtime_ordering_ideal_elan_sr(self, trace):
        """More expensive elasticity can only slow the same schedule."""
        jcts = {}
        for costs in (IdealCosts(), ElanCosts(seed=1),
                      ShutdownRestartCosts(seed=1)):
            jcts[costs.name] = ClusterSimulator(
                trace, ElasticFifoPolicy(), total_gpus=64, costs=costs
            ).run().average_jct
        assert jcts["ideal"] <= jcts["elan"] <= jcts["sr"]
