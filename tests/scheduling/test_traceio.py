"""Tests for trace JSON serialization."""

import json

import pytest

from repro.scheduling import (
    ClusterSimulator,
    FifoPolicy,
    generate_trace,
    load_trace,
    save_trace,
    trace_from_dicts,
    trace_to_dicts,
)


class TestRoundtrip:
    def test_file_roundtrip_preserves_trace(self, tmp_path):
        trace = generate_trace(num_jobs=25, seed=6)
        path = tmp_path / "trace.json"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert trace_to_dicts(loaded) == trace_to_dicts(trace)

    def test_replay_is_identical(self, tmp_path):
        """Simulating a reloaded trace gives bit-identical metrics."""
        trace = generate_trace(num_jobs=25, seed=7)
        path = tmp_path / "trace.json"
        save_trace(trace, path)
        original = ClusterSimulator(trace, FifoPolicy(), total_gpus=64).run()
        replayed = ClusterSimulator(
            load_trace(path), FifoPolicy(), total_gpus=64
        ).run()
        assert replayed.average_jct == original.average_jct
        assert replayed.makespan == original.makespan

    def test_loaded_jobs_sorted_by_submit(self, tmp_path):
        trace = generate_trace(num_jobs=10, seed=8)
        records = trace_to_dicts(trace)
        records.reverse()  # scramble on disk
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(
            {"format": "repro-elan-trace-v1", "jobs": records}
        ))
        loaded = load_trace(path)
        submits = [j.submit_time for j in loaded]
        assert submits == sorted(submits)


class TestValidation:
    def test_missing_field_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            trace_from_dicts([{"job_id": "x", "model": "ResNet-50"}])

    def test_unknown_model_rejected(self):
        record = trace_to_dicts(generate_trace(num_jobs=1, seed=0))[0]
        record["model"] = "AlexNet"
        with pytest.raises(KeyError):
            trace_from_dicts([record])

    def test_bad_bounds_rejected(self):
        record = trace_to_dicts(generate_trace(num_jobs=1, seed=0))[0]
        record["min_res"] = record["max_res"] + 1
        with pytest.raises(ValueError):
            trace_from_dicts([record])

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "slurm", "jobs": []}))
        with pytest.raises(ValueError, match="not a repro-elan trace"):
            load_trace(path)
