"""Tests for the priority/preemption scheduling extension."""

import dataclasses

import pytest

from repro.perfmodel import RESNET50
from repro.scheduling import (
    ClusterSimulator,
    JobExecution,
    JobSpec,
    PriorityElasticPolicy,
)


def job(job_id, submit, work, req, priority=0, min_res=None, max_res=None):
    return JobSpec(
        job_id=job_id,
        model=RESNET50,
        submit_time=submit,
        work=work,
        req_res=req,
        min_res=min_res if min_res is not None else max(1, req // 4),
        max_res=max_res if max_res is not None else req * 2,
        priority=priority,
    )


class TestAllocation:
    def test_high_priority_reaches_req_before_gains_flow(self):
        policy = PriorityElasticPolicy()
        low = JobExecution(spec=job("low", 0.0, 1e7, 16, priority=0), workers=16)
        high = JobExecution(spec=job("high", 1.0, 1e7, 16, priority=5))
        allocation = policy.allocate(1.0, [high], [low], total_gpus=24)
        # 24 GPUs: high gets its full req (16); low shrinks toward min.
        assert allocation["high"] == 16
        assert allocation["low"] == 8

    def test_equal_priority_fifo_order(self):
        policy = PriorityElasticPolicy()
        first = JobExecution(spec=job("first", 0.0, 1e7, 16))
        second = JobExecution(spec=job("second", 5.0, 1e7, 16))
        allocation = policy.allocate(5.0, [first, second], [], total_gpus=20)
        assert allocation["first"] >= allocation["second"]

    def test_leftovers_distributed_by_marginal_gain(self):
        policy = PriorityElasticPolicy()
        solo = JobExecution(spec=job("solo", 0.0, 1e7, 8, max_res=32))
        allocation = policy.allocate(0.0, [solo], [], total_gpus=32)
        assert allocation["solo"] == 32  # req guaranteed, then gains


class TestPreemptionEndToEnd:
    def test_arrival_of_high_priority_shrinks_low(self):
        """A late high-priority job preempts (shrinks) the running
        low-priority one instead of pending behind it."""
        trace = [
            job("low", 0.0, 3e7, 24, priority=0, min_res=4, max_res=32),
            job("high", 1000.0, 5e6, 24, priority=9, min_res=4, max_res=32),
        ]
        result = ClusterSimulator(
            trace, PriorityElasticPolicy(), total_gpus=32
        ).run()
        by_id = {e.spec.job_id: e for e in result.executions}
        # The high-priority job started immediately on arrival.
        assert by_id["high"].start_time == pytest.approx(1000.0, abs=1.0)
        # And the low-priority job was adjusted (shrunk) at least once.
        assert by_id["low"].adjustments >= 1
        assert all(e.done for e in result.executions)

    def test_priority_zero_behaves_like_elastic_fifo(self):
        from repro.scheduling import ElasticFifoPolicy, generate_trace

        trace = generate_trace(num_jobs=30, seed=9)  # all priority 0
        fifo = ClusterSimulator(trace, ElasticFifoPolicy(), total_gpus=64).run()
        prio = ClusterSimulator(
            trace, PriorityElasticPolicy(), total_gpus=64
        ).run()
        # Not identical (the guarantee pass orders differently), but the
        # aggregate outcome stays in the same ballpark.
        assert prio.average_jct < 1.3 * fifo.average_jct


class TestPriorityField:
    def test_default_zero(self):
        assert job("j", 0.0, 1.0, 4).priority == 0

    def test_roundtrips_through_traceio(self, tmp_path):
        from repro.scheduling import load_trace, save_trace

        spec = job("vip", 0.0, 1e6, 8, priority=7)
        path = tmp_path / "trace.json"
        save_trace([spec], path)
        (loaded,) = load_trace(path)
        assert loaded.priority == 7

    def test_spec_copy_with_priority(self):
        spec = job("j", 0.0, 1e6, 8)
        promoted = dataclasses.replace(spec, priority=3)
        assert promoted.priority == 3
        assert promoted.req_res == spec.req_res
