"""Capacity churn under the priority and SRTF elastic policies.

``test_spot_capacity.py`` exercises the FIFO family; the live cluster
scheduler also offers ``e-priority`` and ``e-srtf`` as policies, so the
same transient-capacity guarantees need coverage there: shrink in place
instead of evicting, never overcommit a shrunken cluster, and evict
(rather than deadlock) when even the minimums no longer fit.
"""

import pytest

from repro.perfmodel import RESNET50
from repro.scheduling import (
    ClusterSimulator,
    ElasticSrtfPolicy,
    JobSpec,
    PriorityElasticPolicy,
    generate_trace,
)

POLICIES = [PriorityElasticPolicy, ElasticSrtfPolicy]


def job(job_id, submit, work, req, min_res=1, max_res=None, priority=0):
    return JobSpec(
        job_id=job_id,
        model=RESNET50,
        submit_time=submit,
        work=work,
        req_res=req,
        min_res=min_res,
        max_res=max_res or req * 2,
        priority=priority,
    )


@pytest.mark.parametrize("policy_cls", POLICIES)
class TestShrinkInPlace:
    def test_capacity_drop_shrinks_instead_of_evicting(self, policy_cls):
        trace = [job("a", 0.0, 3e7, 8, min_res=2),
                 job("b", 1.0, 3e7, 8, min_res=2)]
        result = ClusterSimulator(
            trace, policy_cls(), total_gpus=16,
            capacity_profile=[(5000.0, 8)],  # half the cluster vanishes
        ).run()
        assert result.evictions == 0
        assert all(e.done for e in result.executions)

    def test_usage_never_exceeds_shrunken_capacity(self, policy_cls):
        trace = generate_trace(num_jobs=20, seed=11)
        churn = [(4000.0, 24), (20000.0, 48)]
        result = ClusterSimulator(
            trace, policy_cls(), total_gpus=48, capacity_profile=churn,
        ).run()
        assert all(e.done for e in result.executions)
        for point in result.utilization:
            capacity = 48
            for change_time, gpus in churn:
                if change_time <= point.time:
                    capacity = gpus
            assert point.busy <= capacity

    def test_minimums_no_longer_fitting_forces_eviction(self, policy_cls):
        """Inelastic jobs (min == max) can't shrink: one must go."""
        trace = [job("a", 0.0, 3e7, 4, min_res=4, max_res=4),
                 job("b", 1.0, 3e7, 4, min_res=4, max_res=4)]
        result = ClusterSimulator(
            trace, policy_cls(), total_gpus=8,
            capacity_profile=[(2000.0, 4)],
        ).run()
        assert result.evictions >= 1
        assert all(e.done for e in result.executions)


class TestPriorityUnderChurn:
    def test_low_priority_twin_absorbs_the_shrink(self):
        """Identical jobs, different tiers: the drop lands on the low one."""
        trace = [job("hi", 0.0, 3e7, 6, min_res=1, max_res=8, priority=5),
                 job("lo", 0.0, 3e7, 6, min_res=1, max_res=8, priority=0)]
        result = ClusterSimulator(
            trace, PriorityElasticPolicy(), total_gpus=12,
            capacity_profile=[(3000.0, 6)],
        ).run()
        assert result.evictions == 0
        by_id = {e.spec.job_id: e for e in result.executions}
        assert by_id["hi"].done and by_id["lo"].done
        assert by_id["hi"].completion_time < by_id["lo"].completion_time


class TestSrtfUnderChurn:
    def test_short_job_still_escapes_first(self):
        """SRTF leverage survives the dip: the short job exits first."""
        trace = [job("long", 0.0, 6e7, 4, min_res=1, max_res=8),
                 job("short", 0.0, 5e6, 4, min_res=1, max_res=8)]
        result = ClusterSimulator(
            trace, ElasticSrtfPolicy(), total_gpus=8,
            capacity_profile=[(1000.0, 4)],
        ).run()
        by_id = {e.spec.job_id: e for e in result.executions}
        assert by_id["short"].done and by_id["long"].done
        assert by_id["short"].completion_time < by_id["long"].completion_time

    @pytest.mark.parametrize("policy_cls", POLICIES)
    def test_constant_profile_matches_no_profile(self, policy_cls):
        trace = generate_trace(num_jobs=25, seed=14)
        plain = ClusterSimulator(trace, policy_cls(), total_gpus=64).run()
        stepped = ClusterSimulator(
            trace, policy_cls(), total_gpus=64,
            capacity_profile=[(0.0, 64)],
        ).run()
        assert stepped.average_jct == pytest.approx(plain.average_jct)
        assert stepped.makespan == pytest.approx(plain.makespan)
