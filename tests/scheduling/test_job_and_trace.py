"""Tests for the scheduling job model and trace generation."""

import pytest

from repro.perfmodel import RESNET50
from repro.scheduling import JobExecution, JobSpec, generate_trace


def make_job(**overrides):
    defaults = dict(
        job_id="j0",
        model=RESNET50,
        submit_time=0.0,
        work=1_000_000.0,
        req_res=8,
        min_res=2,
        max_res=32,
    )
    defaults.update(overrides)
    return JobSpec(**defaults)


class TestJobSpec:
    def test_resource_bounds_validated(self):
        with pytest.raises(ValueError):
            make_job(min_res=10)  # min > req
        with pytest.raises(ValueError):
            make_job(max_res=4)  # max < req
        with pytest.raises(ValueError):
            make_job(work=0.0)

    def test_throughput_monotone_in_practical_range(self):
        job = make_job()
        tps = [job.throughput(n) for n in (1, 2, 4, 8, 16)]
        assert tps == sorted(tps)

    def test_zero_workers_zero_throughput(self):
        assert make_job().throughput(0) == 0.0

    def test_marginal_gain_decreases(self):
        """Diminishing returns — what the allocation rule exploits.
        MobileNet saturates quickly (tiny kernels, comm-bound)."""
        from repro.perfmodel import MOBILENET_V2

        job = make_job(model=MOBILENET_V2)
        assert job.marginal_gain(4) > 2 * job.marginal_gain(40)

    def test_duration_at_shrinks_with_workers(self):
        job = make_job()
        assert job.duration_at(16) < job.duration_at(4)


class TestJobExecution:
    def test_work_accrual(self):
        execution = JobExecution(spec=make_job(), workers=8)
        rate = execution.spec.throughput(8)
        execution.advance(0.0, 10.0)
        assert execution.work_done == pytest.approx(10.0 * rate)

    def test_pause_blocks_accrual(self):
        execution = JobExecution(spec=make_job(), workers=8, paused_until=5.0)
        rate = execution.spec.throughput(8)
        execution.advance(0.0, 10.0)
        assert execution.work_done == pytest.approx(5.0 * rate)

    def test_eta_accounts_for_pause(self):
        execution = JobExecution(spec=make_job(), workers=8, paused_until=100.0)
        eta = execution.eta(0.0)
        assert eta > 100.0

    def test_idle_job_never_finishes(self):
        execution = JobExecution(spec=make_job(), workers=0)
        assert execution.eta(0.0) == float("inf")

    def test_time_backwards_rejected(self):
        execution = JobExecution(spec=make_job(), workers=4)
        with pytest.raises(ValueError):
            execution.advance(10.0, 5.0)


class TestTrace:
    def test_deterministic_by_seed(self):
        a = generate_trace(num_jobs=30, seed=9)
        b = generate_trace(num_jobs=30, seed=9)
        assert [(j.job_id, j.submit_time, j.work) for j in a] == [
            (j.job_id, j.submit_time, j.work) for j in b
        ]

    def test_job_count_and_ordering(self):
        trace = generate_trace(num_jobs=50, seed=1)
        assert len(trace) == 50
        submits = [j.submit_time for j in trace]
        assert submits == sorted(submits)

    def test_resource_bounds_sane(self):
        for job in generate_trace(num_jobs=60, seed=2):
            assert 1 <= job.min_res <= job.req_res <= job.max_res <= 64

    def test_durations_in_range(self):
        """Service demands span minutes to hours on the requested size."""
        for job in generate_trace(num_jobs=60, seed=3):
            duration = job.duration_at(job.req_res)
            assert 10 * 60 <= duration <= 12 * 3600 + 1

    def test_models_drawn_from_table1(self):
        names = {job.model.name for job in generate_trace(num_jobs=80, seed=4)}
        assert len(names) >= 3  # several Table I models appear

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_trace(num_jobs=0)

    def test_arrivals_diurnal(self):
        """Daytime hours receive more arrivals than night hours."""
        trace = generate_trace(num_jobs=400, seed=5)
        day = sum(1 for j in trace if 9 <= (j.submit_time / 3600) % 24 < 21)
        night = len(trace) - day
        assert day > 1.2 * night
