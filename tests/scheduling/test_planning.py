"""Tests for the capacity-planning what-if sweeps."""

import pytest

from repro.scheduling import (
    CapacityPoint,
    ElasticFifoPolicy,
    FifoPolicy,
    capacity_sweep,
    elasticity_hardware_savings,
    generate_trace,
    required_gpus,
)


@pytest.fixture(scope="module")
def trace():
    return generate_trace(num_jobs=50, seed=23)


@pytest.fixture(scope="module")
def sweep(trace):
    return capacity_sweep(trace, FifoPolicy(), [64, 96, 128])


class TestCapacitySweep:
    def test_sorted_and_deduplicated(self, trace):
        points = capacity_sweep(trace, FifoPolicy(), [128, 64, 128])
        assert [p.gpus for p in points] == [64, 128]

    def test_more_gpus_never_hurt_jct(self, sweep):
        jcts = [p.average_jct for p in sweep]
        assert jcts == sorted(jcts, reverse=True)

    def test_utilization_falls_with_size(self, sweep):
        utils = [p.utilization for p in sweep]
        assert utils == sorted(utils, reverse=True)

    def test_empty_sweep_rejected(self, trace):
        with pytest.raises(ValueError):
            capacity_sweep(trace, FifoPolicy(), [])

    def test_point_fields(self, sweep):
        point = sweep[0]
        assert isinstance(point, CapacityPoint)
        assert point.average_jpt >= 0
        assert point.makespan > 0


class TestRequiredGpus:
    def test_finds_smallest_feasible(self, trace, sweep):
        target = sweep[1].average_jct  # achievable at the middle size
        needed = required_gpus(trace, FifoPolicy(), target, [64, 96, 128])
        assert needed == 96

    def test_infeasible_returns_none(self, trace):
        assert required_gpus(trace, FifoPolicy(), 1.0, [64, 128]) is None

    def test_validation(self, trace):
        with pytest.raises(ValueError):
            required_gpus(trace, FifoPolicy(), 0.0, [64])


class TestHardwareSavings:
    def test_elasticity_needs_fewer_gpus(self, trace):
        """The operator's headline: same service level, smaller cluster."""
        static_sweep = capacity_sweep(trace, FifoPolicy(), [96])
        target = static_sweep[0].average_jct  # what FIFO@96 delivers
        savings = elasticity_hardware_savings(
            trace, FifoPolicy(), ElasticFifoPolicy(), target,
            [48, 64, 96, 128],
        )
        assert savings["fifo"] == 96
        assert savings["e-fifo"] is not None
        assert savings["e-fifo"] < savings["fifo"]
