"""Tests for the serial and chunk-based loading semantics (paper §V-C)."""

import numpy as np
import pytest

from repro.training import ChunkLoader, SerialLoader


def drain_epoch(loader, num_workers, batch_per_worker):
    """Collect every index the loader yields for one full epoch."""
    start_epoch = loader.epoch
    seen = []
    while loader.epoch == start_epoch:
        for part in loader.next_iteration(num_workers, batch_per_worker):
            seen.extend(part.tolist())
    return seen


class TestSerialLoader:
    def test_epoch_covers_dataset_exactly_once(self):
        loader = SerialLoader(100, seed=1)
        seen = drain_epoch(loader, num_workers=4, batch_per_worker=8)
        assert sorted(seen) == list(range(100))

    def test_remaining_is_contiguous_single_integer(self):
        """§V-C: loader state is a single position integer."""
        loader = SerialLoader(100, seed=1)
        loader.next_iteration(4, 8)
        assert loader.state_dict() == {"epoch": 0, "position": 32}
        assert loader.remaining_in_epoch == 68

    def test_partial_last_batch_split_evenly(self):
        loader = SerialLoader(10, seed=0)
        parts = loader.next_iteration(4, 2)  # consumes 8
        assert [len(p) for p in parts] == [2, 2, 2, 2]
        parts = loader.next_iteration(4, 2)  # only 2 remain
        assert sum(len(p) for p in parts) == 2
        assert loader.epoch == 1

    def test_repartition_is_free_and_keeps_coverage(self):
        """After an elastic adjustment the remaining data is still exactly
        the contiguous tail of the epoch."""
        loader = SerialLoader(96, seed=2)
        seen = []
        for _ in range(3):
            for part in loader.next_iteration(4, 4):
                seen.extend(part.tolist())
        loader.repartition(6)  # scale out 4 -> 6 workers
        while loader.epoch == 0:
            for part in loader.next_iteration(6, 4):
                seen.extend(part.tolist())
        assert sorted(seen) == list(range(96))

    def test_shuffle_differs_by_epoch(self):
        loader = SerialLoader(50, seed=3)
        first = drain_epoch(loader, 1, 50)
        second = drain_epoch(loader, 1, 50)
        assert first != second
        assert sorted(first) == sorted(second)

    def test_no_shuffle_is_sequential(self):
        loader = SerialLoader(10, shuffle=False)
        (batch,) = loader.next_iteration(1, 4)
        assert batch.tolist() == [0, 1, 2, 3]

    def test_state_roundtrip(self):
        loader = SerialLoader(64, seed=4)
        loader.next_iteration(2, 8)
        state = loader.state_dict()
        other = SerialLoader(64, seed=4)
        other.load_state_dict(state)
        a = loader.next_iteration(2, 8)
        b = other.next_iteration(2, 8)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_state_is_tiny(self):
        assert SerialLoader(10**9).state_size_bytes() == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            SerialLoader(0)
        loader = SerialLoader(10)
        with pytest.raises(ValueError):
            loader.next_iteration(0, 4)
        with pytest.raises(ValueError):
            loader.repartition(0)


class TestChunkLoader:
    def test_epoch_covers_dataset_exactly_once(self):
        loader = ChunkLoader(100, chunk_size=16, num_workers=4, seed=1)
        seen = drain_epoch(loader, num_workers=4, batch_per_worker=8)
        assert sorted(seen) == list(range(100))

    def test_remaining_is_fragmented(self):
        """After some consumption, leftovers span multiple chunks — the
        fragmentation Fig. 13 illustrates."""
        loader = ChunkLoader(128, chunk_size=16, num_workers=4, seed=0)
        loader.next_iteration(4, 4)
        partially_consumed = [
            c for c, used in loader.consumed.items() if 0 < used < 16
        ]
        assert len(partially_consumed) >= 2

    def test_state_is_record_table(self):
        loader = ChunkLoader(1024, chunk_size=16, num_workers=4)
        state = loader.state_dict()
        assert len(state["consumed"]) == 64
        assert loader.state_size_bytes() > SerialLoader(1024).state_size_bytes()

    def test_repartition_preserves_coverage(self):
        loader = ChunkLoader(96, chunk_size=8, num_workers=4, seed=2)
        seen = []
        for _ in range(2):
            for part in loader.next_iteration(4, 4):
                seen.extend(part.tolist())
        loader.repartition(6)
        while loader.epoch == 0:
            for part in loader.next_iteration(6, 4):
                seen.extend(part.tolist())
        assert sorted(seen) == list(range(96))

    def test_repartition_balances_remaining(self):
        loader = ChunkLoader(64, chunk_size=8, num_workers=2, seed=0)
        loader.next_iteration(2, 8)
        loader.repartition(4)
        remaining_per_rank = [
            sum(loader._remaining_of(c) for c in chunks)
            for chunks in loader.ownership.values()
        ]
        assert max(remaining_per_rank) - min(remaining_per_rank) <= 8

    def test_wrong_worker_count_rejected(self):
        loader = ChunkLoader(64, chunk_size=8, num_workers=2)
        with pytest.raises(ValueError):
            loader.next_iteration(3, 4)

    def test_dry_ranks_get_empty_batches(self):
        loader = ChunkLoader(20, chunk_size=10, num_workers=4, seed=0)
        parts = loader.next_iteration(4, 4)
        # 2 chunks across 4 ranks: at least one rank has no chunk at all.
        assert any(len(p) == 0 for p in parts)

    def test_state_roundtrip(self):
        loader = ChunkLoader(64, chunk_size=8, num_workers=2, seed=5)
        loader.next_iteration(2, 4)
        state = loader.state_dict()
        other = ChunkLoader(64, chunk_size=8, num_workers=2, seed=5)
        other.load_state_dict(state)
        a = loader.next_iteration(2, 4)
        b = other.next_iteration(2, 4)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_validation(self):
        with pytest.raises(ValueError):
            ChunkLoader(0)
        with pytest.raises(ValueError):
            ChunkLoader(10, chunk_size=0)


class TestSemanticComparison:
    """The §V-C claim: serial state is a single integer, chunk state is a
    table whose size grows with the dataset."""

    def test_serial_state_constant_in_dataset_size(self):
        small = SerialLoader(1000).state_size_bytes()
        large = SerialLoader(10**8).state_size_bytes()
        assert small == large

    def test_chunk_state_grows_with_dataset_size(self):
        small = ChunkLoader(10_000, chunk_size=256).state_size_bytes()
        large = ChunkLoader(1_000_000, chunk_size=256).state_size_bytes()
        assert large > 10 * small
