"""Unit tests for the numpy neural-network substrate."""

import numpy as np
import pytest

from repro.training import (
    accuracy,
    average_gradients,
    clone_params,
    forward,
    init_mlp,
    loss_and_gradients,
    make_classification,
    param_bytes,
    params_allclose,
    softmax,
)


@pytest.fixture
def dataset():
    return make_classification(train_size=512, test_size=128, seed=7)


@pytest.fixture
def params(dataset):
    return init_mlp(dataset.input_dim, 32, dataset.num_classes, seed=1)


class TestInit:
    def test_deterministic_by_seed(self, dataset):
        a = init_mlp(dataset.input_dim, 32, dataset.num_classes, seed=5)
        b = init_mlp(dataset.input_dim, 32, dataset.num_classes, seed=5)
        assert params_allclose(a, b)

    def test_different_seeds_differ(self, dataset):
        a = init_mlp(dataset.input_dim, 32, dataset.num_classes, seed=5)
        b = init_mlp(dataset.input_dim, 32, dataset.num_classes, seed=6)
        assert not params_allclose(a, b)

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            init_mlp(0, 8, 4)


class TestForwardBackward:
    def test_logit_shape(self, params, dataset):
        logits, hidden = forward(params, dataset.train_x[:10])
        assert logits.shape == (10, dataset.num_classes)
        assert hidden.shape == (10, 32)

    def test_softmax_rows_sum_to_one(self):
        logits = np.random.default_rng(0).standard_normal((5, 7))
        probs = softmax(logits)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert (probs >= 0).all()

    def test_softmax_stable_for_large_logits(self):
        probs = softmax(np.array([[1000.0, 0.0], [0.0, 1000.0]]))
        assert np.isfinite(probs).all()

    def test_empty_batch_rejected(self, params, dataset):
        with pytest.raises(ValueError):
            loss_and_gradients(params, dataset.train_x[:0], dataset.train_y[:0])

    def test_gradients_match_finite_differences(self, dataset):
        """Numerical gradient check on a tiny network."""
        small = init_mlp(4, 3, 2, seed=0)
        x = dataset.train_x[:8, :4]
        y = dataset.train_y[:8] % 2
        _loss, grads = loss_and_gradients(small, x, y)
        eps = 1e-6
        for name in small:
            flat = small[name].reshape(-1)
            for idx in range(0, flat.size, max(1, flat.size // 5)):
                original = flat[idx]
                flat[idx] = original + eps
                loss_plus, _ = loss_and_gradients(small, x, y)
                flat[idx] = original - eps
                loss_minus, _ = loss_and_gradients(small, x, y)
                flat[idx] = original
                numeric = (loss_plus - loss_minus) / (2 * eps)
                analytic = grads[name].reshape(-1)[idx]
                assert analytic == pytest.approx(numeric, abs=1e-4)

    def test_gradient_is_mean_over_batch(self, params, dataset):
        """Doubling the batch by duplication leaves the gradient unchanged."""
        x, y = dataset.train_x[:16], dataset.train_y[:16]
        _l1, g1 = loss_and_gradients(params, x, y)
        _l2, g2 = loss_and_gradients(
            params, np.concatenate([x, x]), np.concatenate([y, y])
        )
        assert params_allclose(g1, g2, atol=1e-12)


class TestHelpers:
    def test_clone_is_independent(self, params):
        cloned = clone_params(params)
        cloned["w1"][0, 0] += 1.0
        assert params["w1"][0, 0] != cloned["w1"][0, 0]

    def test_param_bytes_counts_all(self, params):
        assert param_bytes(params) == sum(a.nbytes for a in params.values())

    def test_params_allclose_detects_key_mismatch(self, params):
        other = {k: v for k, v in params.items() if k != "b2"}
        assert not params_allclose(params, other)

    def test_average_gradients_is_elementwise_mean(self, params, dataset):
        _l, g1 = loss_and_gradients(params, dataset.train_x[:8], dataset.train_y[:8])
        _l, g2 = loss_and_gradients(params, dataset.train_x[8:16], dataset.train_y[8:16])
        avg = average_gradients([g1, g2])
        for name in g1:
            assert np.allclose(avg[name], (g1[name] + g2[name]) / 2)

    def test_average_gradients_empty_rejected(self):
        with pytest.raises(ValueError):
            average_gradients([])

    def test_average_gradients_mismatched_shapes_rejected(self):
        g1 = {"w": np.ones((2, 3))}
        g2 = {"w": np.ones((3, 4))}
        with pytest.raises(ValueError):
            average_gradients([g1, g2])

    def test_average_gradients_mixed_dtypes_promote(self):
        g1 = {"w": np.ones(4, dtype=np.float32)}
        g2 = {"w": np.full(4, 2.0, dtype=np.float64)}
        avg = average_gradients([g1, g2])
        assert avg["w"].dtype == np.float64
        assert np.allclose(avg["w"], 1.5)

    def test_average_gradients_zero_size_arrays(self):
        g1 = {"w": np.empty((0, 3))}
        g2 = {"w": np.empty((0, 3))}
        avg = average_gradients([g1, g2])
        assert avg["w"].shape == (0, 3)

    def test_average_gradients_single_set_is_identity(self):
        g1 = {"w": np.array([1.0, 2.0, 3.0])}
        avg = average_gradients([g1])
        assert np.array_equal(avg["w"], g1["w"])

    def test_accuracy_bounds(self, params, dataset):
        acc = accuracy(params, dataset.test_x, dataset.test_y)
        assert 0.0 <= acc <= 1.0


class TestDataset:
    def test_shapes(self, dataset):
        assert dataset.train_size == 512
        assert dataset.input_dim == 32
        assert len(dataset.test_x) == 128

    def test_deterministic_by_seed(self):
        a = make_classification(train_size=64, test_size=16, seed=3)
        b = make_classification(train_size=64, test_size=16, seed=3)
        assert np.array_equal(a.train_x, b.train_x)
        assert np.array_equal(a.train_y, b.train_y)

    def test_labels_in_range(self, dataset):
        assert dataset.train_y.min() >= 0
        assert dataset.train_y.max() < dataset.num_classes

    def test_learnable(self, dataset):
        """The teacher task is learnable well above chance."""
        from repro.training import train_single

        result = train_single(dataset, 32, epochs=10, base_lr=0.01, seed=0)
        assert result.test_accuracy > 3.0 / dataset.num_classes

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            make_classification(train_size=0)
        with pytest.raises(ValueError):
            make_classification(label_noise=1.5)
