"""Tests for pluggable architectures — the genericity claim (§V-A)."""

import numpy as np
import pytest

from repro.coordination import ElasticRuntime, params_consistent
from repro.training import (
    deep_mlp_architecture,
    logistic_regression_architecture,
    make_classification,
    mlp_architecture,
)


@pytest.fixture(scope="module")
def dataset():
    return make_classification(train_size=512, test_size=128, seed=101)


ARCHITECTURES = [
    lambda ds: mlp_architecture(ds.input_dim, 32, ds.num_classes),
    lambda ds: deep_mlp_architecture(ds.input_dim, [48, 24], ds.num_classes),
    lambda ds: logistic_regression_architecture(ds.input_dim, ds.num_classes),
]
ARCH_IDS = ["mlp", "deep-mlp", "logreg"]


class TestArchitectureContract:
    @pytest.mark.parametrize("factory", ARCHITECTURES, ids=ARCH_IDS)
    def test_init_deterministic(self, dataset, factory):
        arch = factory(dataset)
        a, b = arch.init(7), arch.init(7)
        assert set(a) == set(b)
        assert all(np.array_equal(a[k], b[k]) for k in a)

    @pytest.mark.parametrize("factory", ARCHITECTURES, ids=ARCH_IDS)
    def test_gradients_match_finite_differences(self, dataset, factory):
        arch = factory(dataset)
        params = arch.init(0)
        x, y = dataset.train_x[:16], dataset.train_y[:16]
        _loss, grads = arch.loss_and_gradients(params, x, y)
        eps = 1e-6
        for name in params:
            flat = params[name].reshape(-1)
            for idx in range(0, flat.size, max(1, flat.size // 4)):
                original = flat[idx]
                flat[idx] = original + eps
                plus, _ = arch.loss_and_gradients(params, x, y)
                flat[idx] = original - eps
                minus, _ = arch.loss_and_gradients(params, x, y)
                flat[idx] = original
                numeric = (plus - minus) / (2 * eps)
                assert grads[name].reshape(-1)[idx] == pytest.approx(
                    numeric, abs=1e-4
                )

    @pytest.mark.parametrize("factory", ARCHITECTURES, ids=ARCH_IDS)
    def test_gradient_template_shapes(self, dataset, factory):
        arch = factory(dataset)
        template = arch.gradient_template()
        params = arch.init(0)
        assert set(template) == set(params)
        for name in params:
            assert template[name].shape == params[name].shape
            assert not template[name].any()

    def test_empty_batch_rejected(self, dataset):
        arch = logistic_regression_architecture(
            dataset.input_dim, dataset.num_classes
        )
        with pytest.raises(ValueError):
            arch.loss_and_gradients(
                arch.init(0), dataset.train_x[:0], dataset.train_y[:0]
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            deep_mlp_architecture(4, [0], 2)
        with pytest.raises(ValueError):
            logistic_regression_architecture(4, 1)


class TestArchitecturesInRuntime:
    """The same elasticity machinery drives every model family — the
    reproduction's analogue of integrating Caffe and PyTorch."""

    @pytest.mark.parametrize("factory", ARCHITECTURES, ids=ARCH_IDS)
    def test_elastic_scale_out_works(self, dataset, factory):
        runtime = ElasticRuntime(
            dataset, initial_workers=2, total_batch_size=32,
            seed=2, architecture=factory(dataset),
        )
        runtime.start()
        assert runtime.wait_until_iteration(5)
        runtime.scale_out(1)
        assert runtime.wait_for_adjustments(1)
        assert runtime.wait_until_iteration(runtime.snapshot()["iteration"] + 5)
        runtime.stop()
        assert params_consistent(runtime.final_contexts())
        assert 0.0 <= runtime.evaluate() <= 1.0

    def test_logreg_on_ring_backend(self, dataset):
        arch = logistic_regression_architecture(
            dataset.input_dim, dataset.num_classes
        )
        runtime = ElasticRuntime(
            dataset, initial_workers=3, total_batch_size=48,
            seed=3, architecture=arch, collective_backend="ring",
        )
        runtime.start()
        assert runtime.wait_until_iteration(10)
        runtime.stop()
        assert params_consistent(runtime.final_contexts())

    def test_deep_mlp_learns(self, dataset):
        arch = deep_mlp_architecture(dataset.input_dim, [48, 24],
                                     dataset.num_classes)
        runtime = ElasticRuntime(
            dataset, initial_workers=2, total_batch_size=32,
            base_lr=0.02, seed=4, architecture=arch,
        )
        runtime.start()
        assert runtime.wait_until_iteration(120)
        runtime.stop()
        assert runtime.evaluate() > 2.5 / dataset.num_classes
