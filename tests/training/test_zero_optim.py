"""The ZeRO-style sharded optimizer axis (ISSUE 10).

Stepping must stay bit-identical to :class:`MomentumSGD` — the shard is
a *persistence* format, not a numerics change — while the persisted
bytes drop to ~1/world and any complete shard set (even one written
under a different world size) merges back into the full state.
"""

import numpy as np
import pytest

from repro.training.nn import init_mlp
from repro.training.optim import MomentumSGD, ShardedMomentumSGD
from repro.training.state import RuntimeInfo, TrainingState


def make_params(seed=0):
    rng = np.random.default_rng(seed)
    return {
        "w1": rng.standard_normal((13, 7)),
        "b1": rng.standard_normal(7),
        "w2": rng.standard_normal((7, 3)),
    }


def make_grads(seed=1):
    return make_params(seed)


class TestSteppingIsBitIdentical:
    def test_matches_momentum_sgd_over_many_steps(self):
        plain_params = make_params()
        sharded_params = {k: v.copy() for k, v in plain_params.items()}
        plain = MomentumSGD(lr=0.05, momentum=0.9, weight_decay=1e-4)
        sharded = ShardedMomentumSGD(
            lr=0.05, momentum=0.9, weight_decay=1e-4, rank=1, world=3
        )
        for step in range(8):
            grads = make_grads(seed=step + 10)
            plain.step(plain_params, grads)
            sharded.step(sharded_params, grads)
        for name in plain_params:
            np.testing.assert_array_equal(
                plain_params[name], sharded_params[name]
            )
        np.testing.assert_array_equal(
            plain.state_dict()["velocity"]["w1"],
            sharded.state_dict()["velocity"]["w1"],
        )


def stepped(rank=0, world=1, steps=3):
    params = make_params()
    opt = ShardedMomentumSGD(lr=0.1, rank=rank, world=world)
    for step in range(steps):
        opt.step(params, make_grads(seed=step))
    return opt


class TestShardRoundTrip:
    def test_shards_tile_the_flat_space_and_merge_back(self):
        opt = stepped(world=1)
        full = opt.state_dict()
        total = sum(v.size for v in full["velocity"].values())
        shards = [opt.shard_state_dict(rank=r, world=4) for r in range(4)]
        assert sum(s["slice"].size for s in shards) == total
        merged = ShardedMomentumSGD.merge_shards(shards)
        for name, velocity in full["velocity"].items():
            np.testing.assert_array_equal(merged["velocity"][name], velocity)
        assert merged["lr"] == full["lr"]
        assert merged["momentum"] == full["momentum"]

    def test_merge_accepts_shards_from_mixed_world_sizes(self):
        """Reshaping along the worker-count axis: shards persisted under
        world=2 and world=4 can cover the flat space together, as after
        an adjustment changed the worker count mid-flight."""
        opt = stepped()
        full = opt.state_dict()
        shards = [
            opt.shard_state_dict(rank=0, world=2),      # first half
            opt.shard_state_dict(rank=2, world=4),      # third quarter
            opt.shard_state_dict(rank=3, world=4),      # fourth quarter
        ]
        merged = ShardedMomentumSGD.merge_shards(shards)
        for name, velocity in full["velocity"].items():
            np.testing.assert_array_equal(merged["velocity"][name], velocity)

    def test_merge_rejects_incomplete_tilings(self):
        opt = stepped()
        with pytest.raises(ValueError):
            ShardedMomentumSGD.merge_shards([
                opt.shard_state_dict(rank=0, world=2),
                opt.shard_state_dict(rank=3, world=4),  # gap: 3rd quarter
            ])
        with pytest.raises(ValueError):
            ShardedMomentumSGD.merge_shards([])

    def test_shard_bytes_drop_by_roughly_one_over_world(self):
        opt = stepped(world=1)
        full_bytes = opt.state_bytes()
        for world in (2, 4, 8):
            per_rank = [opt.shard_bytes(rank=r, world=world)
                        for r in range(world)]
            assert sum(per_rank) == full_bytes
            assert max(per_rank) <= full_bytes // world + 16

    def test_load_merged_state_restores_stepping(self):
        donor = stepped(world=1, steps=4)
        shards = [donor.shard_state_dict(rank=r, world=3) for r in range(3)]
        restored = ShardedMomentumSGD(lr=0.1, rank=0, world=3)
        restored.load_state_dict(ShardedMomentumSGD.merge_shards(shards))
        a = {k: v.copy() for k, v in make_params(5).items()}
        b = {k: v.copy() for k, v in make_params(5).items()}
        donor.step(a, make_grads(seed=99))
        restored.step(b, make_grads(seed=99))
        for name in a:
            np.testing.assert_array_equal(a[name], b[name])


class TestReshard:
    def test_reshard_validates_and_reslices(self):
        opt = stepped(rank=0, world=2)
        opt.reshard(3, 4)
        assert (opt.rank, opt.world) == (3, 4)
        shard = opt.shard_state_dict()
        assert shard["rank"] == 3 and shard["world"] == 4
        with pytest.raises(ValueError):
            opt.reshard(2, 2)
        with pytest.raises(ValueError):
            opt.reshard(0, 0)
        with pytest.raises(ValueError):
            ShardedMomentumSGD(lr=0.1, rank=1, world=1)

    def test_empty_velocity_shards_cleanly(self):
        opt = ShardedMomentumSGD(lr=0.1, rank=0, world=4)
        shard = opt.shard_state_dict()
        assert shard["total"] == 0
        assert shard["slice"].size == 0
        merged = ShardedMomentumSGD.merge_shards([shard])
        assert merged["velocity"] == {}


class TestStateAccounting:
    def make_state(self):
        params = init_mlp(8, 16, 4, seed=0)
        opt = MomentumSGD(lr=0.1)
        opt.step(params, {k: np.ones_like(v) for k, v in params.items()})
        return TrainingState(
            model=params,
            optimizer=opt.state_dict(),
            loader={"cursor": 0},
            comm_group=["w0", "w1"],
            runtime=RuntimeInfo(),
        )

    def test_zero_shard_bytes_sums_to_optimizer_bytes(self):
        state = self.make_state()
        full = state.optimizer_bytes()
        assert full > 0
        for world in (1, 2, 3, 8):
            assert sum(
                state.zero_shard_bytes(world, rank) for rank in range(world)
            ) == full

    def test_replicated_bytes_drop_under_zero(self):
        state = self.make_state()
        full = state.replicated_bytes()
        assert full == state.total_bytes()
        zero = state.replicated_bytes(world=4, zero_optimizer=True)
        assert zero < full
        assert full - zero == (
            state.optimizer_bytes() - state.zero_shard_bytes(4, 0)
        )

    def test_zero_shard_bytes_validates(self):
        state = self.make_state()
        with pytest.raises(ValueError):
            state.zero_shard_bytes(0)
        with pytest.raises(ValueError):
            state.zero_shard_bytes(2, rank=2)
