"""Tests for the reference trainers, including the data-parallel
equivalence Elan's elasticity relies on."""

import numpy as np
import pytest

from repro.training import (
    MomentumSGD,
    init_mlp,
    loss_and_gradients,
    make_classification,
    params_allclose,
    progressive_lr,
    train_data_parallel,
    train_single,
)


@pytest.fixture(scope="module")
def dataset():
    return make_classification(train_size=2048, test_size=512, seed=11)


class TestMomentumSGD:
    def test_validation(self):
        with pytest.raises(ValueError):
            MomentumSGD(lr=0.0)
        with pytest.raises(ValueError):
            MomentumSGD(lr=0.1, momentum=1.0)

    def test_step_moves_against_gradient(self):
        params = {"w": np.array([1.0, 2.0])}
        opt = MomentumSGD(lr=0.1, momentum=0.0)
        opt.step(params, {"w": np.array([1.0, -1.0])})
        assert np.allclose(params["w"], [0.9, 2.1])

    def test_momentum_accumulates(self):
        params = {"w": np.array([0.0])}
        opt = MomentumSGD(lr=0.1, momentum=0.9)
        opt.step(params, {"w": np.array([1.0])})
        opt.step(params, {"w": np.array([1.0])})
        # Second step: v = 0.9*(-0.1) - 0.1 = -0.19; total -0.29.
        assert params["w"][0] == pytest.approx(-0.29)

    def test_weight_decay_shrinks_params(self):
        params = {"w": np.array([10.0])}
        opt = MomentumSGD(lr=0.1, momentum=0.0, weight_decay=0.1)
        opt.step(params, {"w": np.array([0.0])})
        assert params["w"][0] < 10.0

    def test_state_roundtrip_preserves_trajectory(self, dataset):
        """An optimizer restored from a state dict continues identically —
        the property state replication depends on."""
        params_a = init_mlp(dataset.input_dim, 16, dataset.num_classes, seed=0)
        opt_a = MomentumSGD(lr=0.05)
        x, y = dataset.train_x[:32], dataset.train_y[:32]
        _l, grads = loss_and_gradients(params_a, x, y)
        opt_a.step(params_a, grads)

        # Replicate: copy params and restore optimizer state elsewhere.
        params_b = {k: v.copy() for k, v in params_a.items()}
        opt_b = MomentumSGD(lr=0.01)  # different lr, overwritten by load
        opt_b.load_state_dict(opt_a.state_dict())
        assert opt_b.lr == 0.05

        # Both replicas take the same next step.
        _l, grads2 = loss_and_gradients(params_a, x, y)
        opt_a.step(params_a, grads2)
        opt_b.step(params_b, grads2)
        assert params_allclose(params_a, params_b)

    def test_state_bytes_counts_velocity(self):
        opt = MomentumSGD(lr=0.1)
        assert opt.state_bytes() == 0
        opt.step({"w": np.zeros(100)}, {"w": np.ones(100)})
        assert opt.state_bytes() == 800


class TestProgressiveLr:
    def test_ramp_endpoints(self):
        assert progressive_lr(0.1, 0.8, 0, 100) == pytest.approx(0.1)
        assert progressive_lr(0.1, 0.8, 100, 100) == pytest.approx(0.8)
        assert progressive_lr(0.1, 0.8, 500, 100) == pytest.approx(0.8)

    def test_ramp_midpoint(self):
        assert progressive_lr(0.0, 1.0, 50, 100) == pytest.approx(0.5)

    def test_zero_ramp_jumps_immediately(self):
        assert progressive_lr(0.1, 0.8, 0, 0) == pytest.approx(0.8)

    def test_monotone_over_ramp(self):
        values = [progressive_lr(0.1, 1.0, t, 50) for t in range(60)]
        assert values == sorted(values)


class TestTrainSingle:
    def test_learns_above_chance(self, dataset):
        result = train_single(dataset, 32, epochs=8, base_lr=0.01, seed=0)
        assert result.test_accuracy > 0.4
        assert not result.diverged

    def test_update_count_matches_epochs(self, dataset):
        result = train_single(dataset, 256, epochs=4, base_lr=0.01, seed=0)
        assert result.updates == 4 * (2048 // 256)

    def test_deterministic(self, dataset):
        a = train_single(dataset, 64, epochs=2, base_lr=0.01, seed=5)
        b = train_single(dataset, 64, epochs=2, base_lr=0.01, seed=5)
        assert params_allclose(a.params, b.params)

    def test_invalid_inputs_rejected(self, dataset):
        with pytest.raises(ValueError):
            train_single(dataset, 0, epochs=1)
        with pytest.raises(ValueError):
            train_single(dataset, 10**6, epochs=1)
        with pytest.raises(ValueError):
            train_single(dataset, 32, epochs=1, lr_scaling="exponential")

    def test_figure5_large_batch_hurts_with_fixed_lr(self, dataset):
        """The algorithm-view observation (§III-2): same epochs, larger
        total batch, fixed LR -> worse generalization."""
        small = train_single(dataset, 32, epochs=10, base_lr=0.01, seed=1)
        large = train_single(dataset, 1024, epochs=10, base_lr=0.01, seed=1)
        assert large.test_accuracy < small.test_accuracy - 0.05

    def test_figure5_progressive_scaling_recovers(self, dataset):
        """The progressive linear scaling rule keeps model performance."""
        small = train_single(dataset, 32, epochs=10, base_lr=0.01, seed=1)
        scaled = train_single(
            dataset, 1024, epochs=10, base_lr=0.01, lr_scaling="progressive", seed=1
        )
        assert scaled.test_accuracy > small.test_accuracy - 0.06

    def test_progressive_no_worse_than_abrupt_at_extreme_batch(self, dataset):
        """§III-3: sharp LR changes risk divergence; the ramp avoids it."""
        abrupt = train_single(
            dataset, 2048, epochs=30, base_lr=0.05, lr_scaling="linear", seed=1
        )
        ramped = train_single(
            dataset, 2048, epochs=30, base_lr=0.05, lr_scaling="progressive", seed=1
        )
        assert ramped.test_accuracy > abrupt.test_accuracy


class TestDataParallelEquivalence:
    """K workers at batch b must match 1 worker at batch K*b exactly —
    the property that makes strong scaling 'algorithm-transparent'."""

    def test_exact_parameter_equivalence(self, dataset):
        single = train_single(
            dataset, 64, epochs=2, base_lr=0.05, lr_scaling="fixed", seed=3
        )
        parallel = train_data_parallel(
            dataset, num_workers=4, batch_per_worker=16,
            iterations=single.updates, lr=0.05, seed=3,
        )
        for name in single.params:
            assert np.allclose(
                single.params[name], parallel.params[name], atol=1e-12
            )

    def test_worker_counts_all_equivalent(self, dataset):
        runs = [
            train_data_parallel(
                dataset, num_workers=n, batch_per_worker=64 // n,
                iterations=20, lr=0.05, seed=4,
            )
            for n in (1, 2, 4, 8)
        ]
        for other in runs[1:]:
            assert params_allclose(runs[0].params, other.params, atol=1e-12)

    def test_validation(self, dataset):
        with pytest.raises(ValueError):
            train_data_parallel(dataset, num_workers=0, batch_per_worker=8, iterations=1)
