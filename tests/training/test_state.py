"""Tests for the Table II training-state model."""

import numpy as np
import pytest

from repro.training import (
    MomentumSGD,
    RuntimeInfo,
    SerialLoader,
    TrainingState,
    init_mlp,
    loss_and_gradients,
    make_classification,
)


@pytest.fixture
def state():
    dataset = make_classification(train_size=256, test_size=64, seed=0)
    params = init_mlp(dataset.input_dim, 32, dataset.num_classes, seed=0)
    opt = MomentumSGD(lr=0.1)
    _loss, grads = loss_and_gradients(
        params, dataset.train_x[:16], dataset.train_y[:16]
    )
    opt.step(params, grads)
    loader = SerialLoader(dataset.train_size, seed=0)
    loader.next_iteration(4, 4)
    return TrainingState(
        model=params,
        optimizer=opt.state_dict(),
        loader=loader.state_dict(),
        comm_group=["w0", "w1", "w2", "w3"],
        runtime=RuntimeInfo(epoch=0, iteration=1, learning_rate=0.1,
                            total_batch_size=16),
    )


class TestTableII:
    def test_gpu_state_much_larger_than_cpu_state(self, state):
        """Table II: model+optimizer (GPU) dominate the loader/group/runtime
        (CPU) state."""
        assert state.gpu_bytes() > 10 * state.cpu_bytes()

    def test_gpu_bytes_count_params_and_velocity(self, state):
        params_bytes = sum(a.nbytes for a in state.model.values())
        velocity_bytes = sum(
            v.nbytes for v in state.optimizer["velocity"].values()
        )
        assert state.gpu_bytes() == params_bytes + velocity_bytes

    def test_total_is_sum(self, state):
        assert state.total_bytes() == state.gpu_bytes() + state.cpu_bytes()


class TestReplication:
    def test_clone_is_equal_but_independent(self, state):
        replica = state.clone()
        assert replica.equals(state)
        replica.model["w1"][0, 0] += 1.0
        replica.runtime.iteration += 1
        assert not replica.equals(state)
        assert state.runtime.iteration == 1

    def test_serialize_roundtrip(self, state):
        restored = TrainingState.deserialize(state.serialize())
        assert restored.equals(state)

    def test_equals_detects_model_drift(self, state):
        other = state.clone()
        other.model["w2"] = other.model["w2"] + 1e-9
        assert not other.equals(state)

    def test_equals_detects_optimizer_drift(self, state):
        other = state.clone()
        name = next(iter(other.optimizer["velocity"]))
        other.optimizer["velocity"][name] = (
            other.optimizer["velocity"][name] + 1.0
        )
        assert not other.equals(state)

    def test_equals_detects_group_change(self, state):
        other = state.clone()
        other.comm_group.append("w4")
        assert not other.equals(state)


class TestRuntimeInfo:
    def test_dict_roundtrip(self):
        info = RuntimeInfo(epoch=3, iteration=77, learning_rate=0.4,
                           total_batch_size=1024)
        assert RuntimeInfo.from_dict(info.to_dict()) == info
