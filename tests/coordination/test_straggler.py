"""Straggler mitigation via elasticity (paper §VII's first use case).

A synchronous data-parallel job runs at the pace of its slowest worker.
Elan's cheap adjustments make the classic mitigation practical: detect
the straggler, remove or migrate away from it, keep training.  These
tests exercise that end to end on the live runtime with an injected slow
worker.
"""

import time

import pytest

from repro.coordination import ElasticRuntime, params_consistent
from repro.training import make_classification


@pytest.fixture(scope="module")
def dataset():
    return make_classification(train_size=512, test_size=128, seed=21)


def measure_rate(runtime, span=0.4):
    start = runtime.snapshot()["iteration"]
    time.sleep(span)
    return (runtime.snapshot()["iteration"] - start) / span


class TestStragglerInjection:
    def test_straggler_slows_the_whole_group(self, dataset):
        """Lockstep training runs at the slowest member's pace."""
        fast = ElasticRuntime(dataset, initial_workers=3,
                              total_batch_size=48, seed=1)
        slow = ElasticRuntime(dataset, initial_workers=3, total_batch_size=48,
                              seed=1, iteration_delays={"w1": 0.02})
        fast.start()
        slow.start()
        try:
            fast_rate = measure_rate(fast)
            slow_rate = measure_rate(slow)
        finally:
            fast.stop()
            slow.stop()
        assert slow_rate < 0.6 * fast_rate

    def test_scale_in_removes_the_straggler(self, dataset):
        """Kicking the slow worker out restores the group's pace."""
        runtime = ElasticRuntime(dataset, initial_workers=3,
                                 total_batch_size=48, seed=2,
                                 iteration_delays={"w2": 0.02})
        runtime.start()
        try:
            degraded = measure_rate(runtime)
            runtime.scale_in(worker_ids=["w2"])
            assert runtime.wait_for_adjustments(1)
            recovered = measure_rate(runtime)
        finally:
            runtime.stop()
        assert recovered > 2.0 * degraded
        assert "w2" not in runtime.am.group
        assert params_consistent(runtime.final_contexts())

    def test_migration_escapes_a_straggling_node(self, dataset):
        """Migrating the whole job to fresh workers also escapes the
        straggler (e.g. when the slow worker's host is degraded)."""
        runtime = ElasticRuntime(dataset, initial_workers=2,
                                 total_batch_size=32, seed=3,
                                 iteration_delays={"w0": 0.02})
        runtime.start()
        try:
            degraded = measure_rate(runtime)
            runtime.migrate()
            assert runtime.wait_for_adjustments(1)
            recovered = measure_rate(runtime)
        finally:
            runtime.stop()
        assert recovered > 2.0 * degraded
        assert set(runtime.am.group) == {"w2", "w3"}

    def test_delay_injection_mid_run(self, dataset):
        """Delays are mutable: a healthy worker can degrade later."""
        runtime = ElasticRuntime(dataset, initial_workers=2,
                                 total_batch_size=32, seed=4)
        runtime.start()
        try:
            healthy = measure_rate(runtime)
            runtime.iteration_delays["w0"] = 0.02
            degraded = measure_rate(runtime)
        finally:
            runtime.stop()
        assert degraded < 0.6 * healthy
