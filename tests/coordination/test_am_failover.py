"""Live AM fail-over (§V-D): the job survives losing its master."""

import pytest

from repro.coordination import ElasticRuntime, params_consistent
from repro.training import make_classification


@pytest.fixture(scope="module")
def dataset():
    return make_classification(train_size=512, test_size=128, seed=111)


class TestAmFailover:
    def test_training_unaffected(self, dataset):
        runtime = ElasticRuntime(dataset, initial_workers=3,
                                 total_batch_size=48, seed=1)
        runtime.start()
        assert runtime.wait_until_iteration(5)
        runtime.crash_and_recover_am()
        before = runtime.snapshot()["iteration"]
        assert runtime.wait_until_iteration(before + 10)
        runtime.stop()
        assert params_consistent(runtime.final_contexts())

    def test_inflight_adjustment_survives_failover(self, dataset):
        """The AM dies after a scale-out was requested but before the new
        workers reported; the recovered AM completes it."""
        runtime = ElasticRuntime(
            dataset, initial_workers=2, total_batch_size=32,
            startup_delay=0.4, seed=2,
        )
        runtime.start()
        assert runtime.wait_until_iteration(3)
        runtime.scale_out(2)
        runtime.crash_and_recover_am()  # mid-adjustment
        assert runtime.wait_for_adjustments(1, timeout=15)
        runtime.stop()
        assert len(runtime.am.group) == 4
        assert params_consistent(runtime.final_contexts())

    def test_repeated_failovers(self, dataset):
        runtime = ElasticRuntime(dataset, initial_workers=2,
                                 total_batch_size=32, seed=3)
        runtime.start()
        for _ in range(3):
            assert runtime.wait_until_iteration(
                runtime.snapshot()["iteration"] + 3
            )
            runtime.crash_and_recover_am()
        runtime.scale_in(1)
        assert runtime.wait_for_adjustments(1)
        runtime.stop()
        assert len(runtime.am.group) == 1

    def test_failover_recorded_in_telemetry(self, dataset):
        runtime = ElasticRuntime(dataset, initial_workers=2,
                                 total_batch_size=32, seed=4)
        runtime.start()
        runtime.wait_until_iteration(2)
        runtime.crash_and_recover_am()
        runtime.stop()
        events = runtime.telemetry.events_of_kind("am_failover")
        assert len(events) == 1
        assert events[0].detail["job_id"] == "job0"


class TestFailoverBoundaryInvariant:
    """Regression: a recovered AM must not schedule commits in the past.

    The persisted snapshot carries a stale ``latest_iteration`` (it is
    only written on protocol transitions); an adjustment requested right
    after fail-over used to land its commit boundary behind the workers,
    splitting the group across generations mid-allreduce (a 30 s hang).
    """

    def test_commit_after_failover_is_in_the_future(self, dataset):
        runtime = ElasticRuntime(dataset, initial_workers=2,
                                 total_batch_size=32, seed=5)
        runtime.start()
        assert runtime.wait_until_iteration(12)
        runtime.crash_and_recover_am()
        at_request = runtime.snapshot()["iteration"]
        runtime.scale_in(1)  # immediately, before any coordination
        assert runtime.wait_for_adjustments(1, timeout=10)
        runtime.stop(timeout=10)
        plan = runtime.history[0]
        assert plan.commit_iteration >= at_request
        # Nobody got stranded in an abandoned collective.
        for worker in runtime._workers.values():
            assert not worker.thread.is_alive()
        assert not runtime.worker_failures

    def test_repeated_failover_scale_in_never_stalls(self, dataset):
        import time as _time

        for attempt in range(3):
            runtime = ElasticRuntime(dataset, initial_workers=2,
                                     total_batch_size=32, seed=6 + attempt)
            runtime.start()
            assert runtime.wait_until_iteration(5)
            runtime.crash_and_recover_am()
            runtime.scale_in(1)
            assert runtime.wait_for_adjustments(1, timeout=10)
            started = _time.monotonic()
            runtime.stop(timeout=10)
            assert _time.monotonic() - started < 5.0, "stop stalled"
