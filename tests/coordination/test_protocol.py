"""Tests for messages, the KV store, collectives and hooks."""

import threading

import numpy as np
import pytest

from repro.coordination import (
    TOMBSTONE,
    CasConflict,
    Collective,
    CollectiveAborted,
    DeduplicatingInbox,
    ExponentialBackoff,
    FaultyChannel,
    Hook,
    HookRegistry,
    KeyValueStore,
    LeaseRevoked,
    MessageFactory,
    MessageType,
    ReliableSender,
    RetryingStore,
    StoreUnavailable,
)


class TestMessages:
    def test_unique_ids(self):
        factory = MessageFactory()
        ids = {
            factory.make(MessageType.COORDINATE, "w0", {}).msg_id
            for _ in range(100)
        }
        assert len(ids) == 100

    def test_duplicate_keeps_id(self):
        msg = MessageFactory().make(MessageType.ACK, "am", {})
        assert msg.duplicate().msg_id == msg.msg_id

    def test_inbox_deduplicates(self):
        inbox = DeduplicatingInbox()
        msg = MessageFactory().make(MessageType.WORKER_REPORT, "w4", {})
        assert inbox.accept(msg)
        assert not inbox.accept(msg.duplicate())
        assert inbox.duplicates_dropped == 1

    def test_channel_drops_every_nth(self):
        delivered = []
        channel = FaultyChannel(delivered.append, drop_every=2)
        factory = MessageFactory()
        for _ in range(4):
            channel.send(factory.make(MessageType.COORDINATE, "w0", {}))
        assert len(delivered) == 2
        assert channel.dropped == 2

    def test_channel_duplicates_every_nth(self):
        delivered = []
        channel = FaultyChannel(delivered.append, duplicate_every=3)
        factory = MessageFactory()
        for _ in range(3):
            channel.send(factory.make(MessageType.COORDINATE, "w0", {}))
        assert len(delivered) == 4  # 3 sends + 1 duplicate

    def test_reliable_sender_retries_through_loss(self):
        """§V-D: unique IDs + resend on timeout survive a lossy channel."""
        inbox = DeduplicatingInbox()
        received = []

        def deliver(msg):
            if inbox.accept(msg):
                received.append(msg)

        channel = FaultyChannel(deliver, drop_every=2)
        sender = ReliableSender(channel, max_attempts=5)
        factory = MessageFactory()
        for i in range(10):
            msg = factory.make(MessageType.WORKER_REPORT, "w4", {"seq": i})
            assert sender.send(
                msg, acknowledged=lambda m=msg: any(
                    r.msg_id == m.msg_id for r in received
                )
            )
        assert len(received) == 10  # exactly once despite drops

    def test_reliable_sender_gives_up(self):
        channel = FaultyChannel(lambda m: None, drop_every=1)  # drops all
        sender = ReliableSender(channel, max_attempts=3)
        msg = MessageFactory().make(MessageType.ACK, "am", {})
        assert not sender.send(msg, acknowledged=lambda: False)

    def test_sender_validates_attempts(self):
        with pytest.raises(ValueError):
            ReliableSender(FaultyChannel(lambda m: None), max_attempts=0)

    def test_sender_counts_retries_of_abandoned_sends(self):
        """Every re-attempt counts, even when the send ultimately fails —
        a sender that only counted successful deliveries under-reported
        exactly the pathological channels the counter exists to expose."""
        channel = FaultyChannel(lambda m: None, drop_every=1)  # drops all
        sender = ReliableSender(channel, max_attempts=4)
        msg = MessageFactory().make(MessageType.ACK, "am", {})
        assert not sender.send(msg, acknowledged=lambda: False)
        assert sender.retries == 3  # attempts 2, 3 and 4

    def test_sender_backoff_spaces_resends(self):
        sleeps = []
        backoff = ExponentialBackoff(
            base=0.01, factor=2.0, max_delay=1.0, sleeper=sleeps.append
        )
        channel = FaultyChannel(lambda m: None, drop_every=1)
        sender = ReliableSender(channel, max_attempts=4, backoff=backoff)
        msg = MessageFactory().make(MessageType.HEARTBEAT, "w0", {})
        sender.send(msg, acknowledged=lambda: False)
        assert sleeps == [0.01, 0.02, 0.04]  # exponential, per re-attempt


class TestKeyValueStore:
    def test_put_get_roundtrip(self):
        store = KeyValueStore()
        store.put("a/b", {"x": 1})
        assert store.get("a/b") == {"x": 1}

    def test_get_default(self):
        assert KeyValueStore().get("missing", default=7) == 7

    def test_versions_monotone(self):
        store = KeyValueStore()
        assert store.put("k", 1) == 1
        assert store.put("k", 2) == 2
        assert store.version("k") == 2

    def test_cas_succeeds_on_match(self):
        store = KeyValueStore()
        version = store.put("k", "old")
        store.compare_and_swap("k", version, "new")
        assert store.get("k") == "new"

    def test_cas_conflict(self):
        store = KeyValueStore()
        store.put("k", "v1")
        store.put("k", "v2")
        with pytest.raises(CasConflict):
            store.compare_and_swap("k", 1, "stale")

    def test_watch_fires_on_prefix(self):
        store = KeyValueStore()
        events = []
        store.watch("jobs/", lambda k, v, ver: events.append((k, v)))
        store.put("jobs/1", "a")
        store.put("other/2", "b")
        assert events == [("jobs/1", "a")]

    def test_watch_cancel(self):
        store = KeyValueStore()
        events = []
        cancel = store.watch("", lambda k, v, ver: events.append(k))
        store.put("x", 1)
        cancel()
        store.put("y", 2)
        assert events == ["x"]

    def test_delete(self):
        store = KeyValueStore()
        store.put("k", 1)
        assert store.delete("k")
        assert not store.delete("k")
        assert store.get("k") is None

    def test_keys_by_prefix(self):
        store = KeyValueStore()
        for key in ("a/1", "a/2", "b/1"):
            store.put(key, None)
        assert store.keys("a/") == ["a/1", "a/2"]

    def test_delete_does_not_reset_versions(self):
        """ABA regression: a CAS taken before a delete + re-put must keep
        failing — versions are monotone across the key's whole history."""
        store = KeyValueStore()
        version = store.put("k", "original")
        store.delete("k")
        assert store.put("k", "impostor") > version + 1
        with pytest.raises(CasConflict):
            store.compare_and_swap("k", version, "stale write")

    def test_delete_notifies_watchers_with_tombstone(self):
        store = KeyValueStore()
        events = []
        store.watch("jobs/", lambda k, v, ver: events.append((k, v, ver)))
        v1 = store.put("jobs/1", "a")
        store.delete("jobs/1")
        assert events[0] == ("jobs/1", "a", v1)
        key, value, version = events[1]
        assert key == "jobs/1" and value is TOMBSTONE and version == v1 + 1


class TestLeases:
    def _store(self):
        clock = {"now": 0.0}
        store = KeyValueStore(clock=lambda: clock["now"])
        return store, clock

    def test_lease_expires_without_keep_alive(self):
        store, clock = self._store()
        store.lease("l/w0", "alive", ttl=5.0)
        assert store.expired_keys("l/") == []
        clock["now"] = 5.0
        assert store.expired_keys("l/") == ["l/w0"]

    def test_keep_alive_extends_deadline(self):
        store, clock = self._store()
        store.lease("l/w0", "alive", ttl=5.0)
        clock["now"] = 4.0
        assert store.keep_alive("l/w0", ttl=5.0)
        clock["now"] = 8.0
        assert store.expired_keys("l/") == []
        assert store.lease_deadline("l/w0") == 9.0

    def test_keep_alive_without_lease_is_refused(self):
        store, _clock = self._store()
        assert not store.keep_alive("l/ghost", ttl=1.0)

    def test_expired_lease_can_be_revived(self):
        """The holder coming back before the supervisor acts is fine."""
        store, clock = self._store()
        store.lease("l/w0", "alive", ttl=1.0)
        clock["now"] = 2.0
        assert store.expired_keys("l/") == ["l/w0"]
        store.lease("l/w0", "alive", ttl=1.0)
        assert store.expired_keys("l/") == []

    def test_force_expire_revokes(self):
        """A revoked lease cannot be revived by its holder: keep_alive
        and re-lease both refuse — the holder has been fenced out."""
        store, clock = self._store()
        store.lease("l/w0", "alive", ttl=10.0)
        store.force_expire("l/w0")
        assert store.expired_keys("l/") == ["l/w0"]
        assert store.lease_revoked("l/w0")
        assert not store.keep_alive("l/w0", ttl=10.0)
        with pytest.raises(LeaseRevoked):
            store.lease("l/w0", "alive", ttl=10.0)

    def test_delete_clears_revocation(self):
        store, _clock = self._store()
        store.lease("l/w0", "alive", ttl=10.0)
        store.force_expire("l/w0")
        store.delete("l/w0")
        assert not store.lease_revoked("l/w0")
        store.lease("l/w0", "alive", ttl=10.0)  # a fresh holder may lease

    def test_lease_validates_ttl(self):
        store, _clock = self._store()
        with pytest.raises(ValueError):
            store.lease("l/w0", "alive", ttl=0.0)
        with pytest.raises(ValueError):
            store.keep_alive("l/w0", ttl=-1.0)


class TestStoreOutages:
    def test_op_count_outage(self):
        store = KeyValueStore()
        store.put("k", 1)
        store.fail_next(2)
        with pytest.raises(StoreUnavailable):
            store.get("k")
        with pytest.raises(StoreUnavailable):
            store.put("k", 2)
        assert store.get("k") == 1  # the outage has passed

    def test_clock_window_outage(self):
        clock = {"now": 0.0}
        store = KeyValueStore(clock=lambda: clock["now"])
        store.set_outages([(5.0, 10.0)])
        store.put("k", 1)
        clock["now"] = 7.0
        with pytest.raises(StoreUnavailable):
            store.get("k")
        clock["now"] = 10.0
        assert store.get("k") == 1

    def test_retrying_store_rides_out_outage(self):
        store = KeyValueStore()
        store.put("k", "v")
        store.fail_next(3)
        sleeps = []
        retrying = RetryingStore(
            store,
            max_attempts=8,
            backoff=ExponentialBackoff(base=0.01, sleeper=sleeps.append),
        )
        assert retrying.get("k") == "v"
        assert retrying.retries == 3
        assert sleeps == [0.01, 0.02, 0.04]

    def test_retrying_store_bounded(self):
        """Exhausting the budget re-raises: degradation is not silent."""
        store = KeyValueStore()
        store.fail_next(10)
        retrying = RetryingStore(
            store,
            max_attempts=3,
            backoff=ExponentialBackoff(sleeper=lambda _s: None),
        )
        with pytest.raises(StoreUnavailable):
            retrying.get("k")
        assert retrying.retries == 2

    def test_retrying_store_does_not_retry_revocation(self):
        """LeaseRevoked is a permanent verdict, not an outage — burning
        the retry budget on it would only delay the fail-stop."""
        store = KeyValueStore()
        store.lease("l/w0", "alive", ttl=10.0)
        store.force_expire("l/w0")
        retrying = RetryingStore(store)
        with pytest.raises(LeaseRevoked):
            retrying.lease("l/w0", "alive", ttl=10.0)
        assert retrying.retries == 0


class TestCollective:
    def test_allreduce_averages(self):
        collective = Collective(0, ["a", "b"])
        results = {}

        def member(name, value):
            results[name] = collective.allreduce(name, {"g": np.array([value])})

        threads = [
            threading.Thread(target=member, args=("a", 1.0)),
            threading.Thread(target=member, args=("b", 3.0)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert np.allclose(results["a"]["g"], [2.0])
        assert np.allclose(results["b"]["g"], [2.0])

    def test_multiple_rounds(self):
        collective = Collective(0, ["a", "b"])
        sums = []

        def member(name, values):
            for v in values:
                out = collective.allreduce(name, {"g": np.array([v])})
                if name == "a":
                    sums.append(float(out["g"][0]))

        ta = threading.Thread(target=member, args=("a", [1.0, 10.0]))
        tb = threading.Thread(target=member, args=("b", [3.0, 20.0]))
        ta.start(); tb.start(); ta.join(5); tb.join(5)
        assert sums == [2.0, 15.0]

    def test_none_contributions_skipped(self):
        collective = Collective(0, ["a", "b"])
        results = {}

        def member(name, grads):
            results[name] = collective.allreduce(name, grads)

        ta = threading.Thread(target=member, args=("a", {"g": np.array([4.0])}))
        tb = threading.Thread(target=member, args=("b", None))
        ta.start(); tb.start(); ta.join(5); tb.join(5)
        assert np.allclose(results["b"]["g"], [4.0])

    def test_non_member_rejected(self):
        with pytest.raises(KeyError):
            Collective(0, ["a"]).allreduce("zz", None)

    def test_single_member_immediate(self):
        collective = Collective(0, ["solo"])
        out = collective.allreduce("solo", {"g": np.array([5.0])})
        assert np.allclose(out["g"], [5.0])

    def test_abort_wakes_waiters(self):
        collective = Collective(0, ["a", "b"])
        failures = []

        def member():
            try:
                collective.allreduce("a", None)
            except CollectiveAborted:
                failures.append(True)

        thread = threading.Thread(target=member)
        thread.start()
        collective.abort()
        thread.join(timeout=5)
        assert failures == [True]

    def test_validation(self):
        with pytest.raises(ValueError):
            Collective(0, [])
        with pytest.raises(ValueError):
            Collective(0, ["a", "a"])


class TestHooks:
    class Ctx:
        def __init__(self):
            self.model = {"w": 1.0}
            self.extra = None

    def test_capture_restore_roundtrip(self):
        registry = HookRegistry()
        registry.register(Hook(
            "model",
            capture=lambda c: dict(c.model),
            restore=lambda c, s: c.model.update(s),
        ))
        source, target = self.Ctx(), self.Ctx()
        source.model["w"] = 42.0
        registry.restore_all(target, registry.capture_all(source))
        assert target.model["w"] == 42.0

    def test_user_hook_rides_along(self):
        """Table III: arbitrary user state joins replication via hooks."""
        registry = HookRegistry()
        registry.register(Hook(
            "extra",
            capture=lambda c: c.extra,
            restore=lambda c, s: setattr(c, "extra", s),
        ))
        source, target = self.Ctx(), self.Ctx()
        source.extra = {"ema": [1, 2, 3]}
        registry.restore_all(target, registry.capture_all(source))
        assert target.extra == {"ema": [1, 2, 3]}

    def test_missing_state_rejected(self):
        registry = HookRegistry()
        registry.register(Hook("a", lambda c: 1, lambda c, s: None))
        with pytest.raises(KeyError):
            registry.restore_all(self.Ctx(), {})

    def test_unregister(self):
        registry = HookRegistry()
        registry.register(Hook("a", lambda c: 1, lambda c, s: None))
        registry.unregister("a")
        assert registry.names == []
        with pytest.raises(KeyError):
            registry.unregister("a")

    def test_reregister_replaces(self):
        registry = HookRegistry()
        registry.register(Hook("a", lambda c: 1, lambda c, s: None))
        registry.register(Hook("a", lambda c: 2, lambda c, s: None))
        assert registry.capture_all(self.Ctx()) == {"a": 2}
