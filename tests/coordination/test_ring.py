"""Tests for the chunked ring-allreduce (the real collective algorithm)."""

import threading

import numpy as np
import pytest

from repro.coordination import (
    Collective,
    CollectiveAborted,
    ElasticRuntime,
    RingCollective,
    flatten_params,
    params_consistent,
    unflatten_params,
)
from repro.training import init_mlp, make_classification


def make_grads(seed, shapes=None):
    rng = np.random.default_rng(seed)
    shapes = shapes or {"w1": (4, 3), "b1": (3,), "w2": (3, 2)}
    return {name: rng.standard_normal(shape) for name, shape in shapes.items()}


def template_factory():
    return {name: np.zeros_like(a) for name, a in make_grads(0).items()}


def run_ring(member_grads, generation=0, rounds=1):
    """Run all members concurrently; returns {member: [results per round]}."""
    members = sorted(member_grads)
    ring = RingCollective(generation, members, template_factory)
    results = {m: [] for m in members}
    errors = []

    def body(member):
        try:
            for round_grads in member_grads[member]:
                results[member].append(ring.allreduce(member, round_grads))
        except Exception as exc:  # pragma: no cover - surfaced via errors
            errors.append(exc)

    threads = [threading.Thread(target=body, args=(m,)) for m in members]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10)
    assert not errors, errors
    return results


class TestFlattening:
    def test_roundtrip(self):
        grads = make_grads(1)
        flat = flatten_params(grads)
        rebuilt = unflatten_params(flat, grads)
        for name in grads:
            assert np.allclose(rebuilt[name], grads[name])

    def test_deterministic_name_order(self):
        grads = make_grads(2)
        reversed_dict = dict(reversed(list(grads.items())))
        assert np.array_equal(flatten_params(grads), flatten_params(reversed_dict))


class TestRingAllreduce:
    @pytest.mark.parametrize("size", [2, 3, 4, 7])
    def test_matches_explicit_mean(self, size):
        member_grads = {f"m{i}": [make_grads(i)] for i in range(size)}
        results = run_ring(member_grads)
        expected = {
            name: np.mean(
                [member_grads[f"m{i}"][0][name] for i in range(size)], axis=0
            )
            for name in make_grads(0)
        }
        for member, (result,) in results.items():
            for name in expected:
                assert np.allclose(result[name], expected[name], atol=1e-12), (
                    f"{member}/{name}"
                )

    def test_matches_rendezvous_collective(self):
        """The ring and the rendezvous collective compute the same mean."""
        member_grads = {f"m{i}": [make_grads(10 + i)] for i in range(4)}
        ring_results = run_ring(member_grads)

        rendezvous = Collective(0, sorted(member_grads))
        rv_results = {}

        def body(member):
            rv_results[member] = rendezvous.allreduce(
                member, member_grads[member][0]
            )

        threads = [
            threading.Thread(target=body, args=(m,)) for m in member_grads
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        for member in member_grads:
            for name in ring_results[member][0]:
                assert np.allclose(
                    ring_results[member][0][name],
                    rv_results[member][name],
                    atol=1e-12,
                )

    def test_multiple_rounds_do_not_interfere(self):
        member_grads = {
            f"m{i}": [make_grads(20 + i), make_grads(30 + i)] for i in range(3)
        }
        results = run_ring(member_grads)
        for round_index in range(2):
            reference = results["m0"][round_index]
            for member in member_grads:
                for name in reference:
                    assert np.allclose(
                        results[member][round_index][name], reference[name]
                    )

    def test_empty_contributions_excluded_from_mean(self):
        """A member with an empty micro-batch contributes nothing; the
        divisor is the number of real contributors."""
        member_grads = {
            "m0": [make_grads(40)],
            "m1": [None],
            "m2": [make_grads(41)],
        }
        results = run_ring(member_grads)
        expected = {
            name: (member_grads["m0"][0][name] + member_grads["m2"][0][name]) / 2
            for name in make_grads(0)
        }
        for member in member_grads:
            for name in expected:
                assert np.allclose(
                    results[member][0][name], expected[name], atol=1e-12
                )

    def test_all_empty_returns_none(self):
        member_grads = {"m0": [None], "m1": [None]}
        results = run_ring(member_grads)
        assert results["m0"] == [None]
        assert results["m1"] == [None]

    def test_single_member_identity(self):
        ring = RingCollective(0, ["solo"], template_factory)
        grads = make_grads(5)
        out = ring.allreduce("solo", grads)
        for name in grads:
            assert np.array_equal(out[name], grads[name])

    def test_non_member_rejected(self):
        ring = RingCollective(0, ["a"], template_factory)
        with pytest.raises(KeyError):
            ring.allreduce("b", None)

    def test_abort_wakes_waiters(self):
        ring = RingCollective(0, ["a", "b"], template_factory)
        failures = []

        def body():
            try:
                ring.allreduce("a", make_grads(1))
            except CollectiveAborted:
                failures.append(True)

        thread = threading.Thread(target=body)
        thread.start()
        ring.abort()
        thread.join(timeout=5)
        assert failures == [True]

    def test_validation(self):
        with pytest.raises(ValueError):
            RingCollective(0, [], template_factory)
        with pytest.raises(ValueError):
            RingCollective(0, ["a", "a"], template_factory)


class TestRingBackendInRuntime:
    def test_elastic_run_on_ring_backend(self):
        """The full elastic runtime works on the real ring-allreduce and
        produces consistent replicas across an adjustment."""
        dataset = make_classification(train_size=256, test_size=64, seed=6)
        runtime = ElasticRuntime(
            dataset, initial_workers=3, total_batch_size=48,
            collective_backend="ring", seed=6,
        )
        runtime.start()
        assert runtime.wait_until_iteration(5)
        runtime.scale_out(1)
        assert runtime.wait_for_adjustments(1)
        assert runtime.wait_until_iteration(runtime.snapshot()["iteration"] + 5)
        runtime.stop()
        contexts = runtime.final_contexts()
        assert len(contexts) == 4
        assert params_consistent(contexts)

    def test_ring_and_rendezvous_trajectories_match(self):
        """Same job on both backends: bit-compatible parameter means give
        numerically indistinguishable trajectories."""
        dataset = make_classification(train_size=256, test_size=64, seed=7)
        finals = {}
        for backend in ("rendezvous", "ring"):
            runtime = ElasticRuntime(
                dataset, initial_workers=2, total_batch_size=32,
                collective_backend=backend, seed=7,
            )
            runtime.start()
            assert runtime.wait_until_iteration(20)
            runtime.stop()
            context = runtime.final_contexts()[0]
            finals[backend] = (
                context.runtime_info.iteration,
                {k: v.copy() for k, v in context.params.items()},
            )
        iters = min(finals["ring"][0], finals["rendezvous"][0])
        assert iters >= 20  # both made comparable progress

    def test_unknown_backend_rejected(self):
        dataset = make_classification(train_size=64, test_size=16, seed=8)
        with pytest.raises(ValueError):
            ElasticRuntime(dataset, collective_backend="nccl")
