"""The live runtime and its DES twin emit the same span taxonomy.

The acceptance bar for the tracing layer: a scale-out traced on the live
threaded runtime (wall clock) and on the simulated twin (sim clock)
produce the same adjustment-phase spans and instants, and both export as
schema-valid Chrome trace files.
"""

import pytest

from repro.coordination import ElasticRuntime, SimulatedElasticJob
from repro.observability import load_trace_events, validate_events
from repro.perfmodel import RESNET50
from repro.training import make_classification

# The spans/instants every scale-out must produce in either harness.
ADJUSTMENT_SPANS = {
    "iteration",
    "worker.start_init",
    "am.directive",
    "adjust.commit",
    "commit.replicate",
    "commit.reconfigure",
}
ADJUSTMENT_INSTANTS = {
    "adjust.request",
    "am.request",
    "am.report",
    "am.commit_scheduled",
    "worker.report",
}


@pytest.fixture(scope="module")
def live_runtime():
    dataset = make_classification(train_size=256, test_size=64, seed=17)
    runtime = ElasticRuntime(dataset, initial_workers=2,
                             total_batch_size=32, seed=17)
    runtime.start()
    assert runtime.wait_until_iteration(3)
    runtime.scale_out(2)
    assert runtime.wait_for_adjustments(1)
    assert runtime.wait_until_iteration(runtime.snapshot()["iteration"] + 3)
    runtime.stop()
    return runtime


@pytest.fixture(scope="module")
def sim_job():
    job = SimulatedElasticJob(RESNET50, workers=2, total_batch_size=64,
                              seed=17)
    job.at(5.0, lambda: job.request_scale_out(2))
    job.run(until=240.0)
    assert job.adjustments, "scale-out never committed in simulation"
    return job


class TestSharedTaxonomy:
    def test_live_emits_adjustment_taxonomy(self, live_runtime):
        names = live_runtime.tracer.span_names()
        assert ADJUSTMENT_SPANS <= names
        instants = {i.name for i in live_runtime.tracer.instants()}
        assert ADJUSTMENT_INSTANTS <= instants

    def test_sim_emits_adjustment_taxonomy(self, sim_job):
        names = sim_job.tracer.span_names()
        assert ADJUSTMENT_SPANS <= names
        instants = {i.name for i in sim_job.tracer.instants()}
        assert ADJUSTMENT_INSTANTS <= instants

    def test_live_only_spans_are_the_compute_split(self, live_runtime,
                                                   sim_job):
        # The twin times whole iterations; only the live runtime can
        # split them into compute + allreduce.  Everything else matches.
        live = live_runtime.tracer.span_names()
        sim = sim_job.tracer.span_names()
        assert live - sim <= {"compute", "allreduce"}
        assert sim - live == set()

    def test_commit_subspans_nest_inside_commit(self, sim_job):
        (commit,) = sim_job.tracer.spans("adjust.commit")
        for name in ("commit.replicate", "commit.reconfigure"):
            (sub,) = sim_job.tracer.spans(name)
            assert commit.start <= sub.start <= sub.end <= commit.end


class TestExportRoundTrip:
    @pytest.mark.parametrize("harness", ["live", "sim"])
    def test_export_validates(self, harness, live_runtime, sim_job,
                              tmp_path):
        tracer = live_runtime.tracer if harness == "live" else sim_job.tracer
        path = tmp_path / f"{harness}.json"
        count = tracer.export(str(path))
        events = load_trace_events(str(path))
        assert len(events) == count
        assert validate_events(events) == []

    def test_sim_trace_is_deterministic(self, sim_job, tmp_path):
        replay = SimulatedElasticJob(RESNET50, workers=2,
                                     total_batch_size=64, seed=17)
        replay.at(5.0, lambda: replay.request_scale_out(2))
        replay.run(until=240.0)
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        sim_job.tracer.export(str(first))
        replay.tracer.export(str(second))
        assert first.read_text() == second.read_text()


class TestMetricsAgree:
    def test_both_harnesses_count_the_adjustment(self, live_runtime,
                                                 sim_job):
        live = live_runtime.metrics.snapshot()
        sim = sim_job.telemetry.metrics.snapshot()
        assert live["adjustments.scale_out"] == 1
        assert sim["adjustments.scale_out"] == 1
        assert live["workers"] == 4
        assert sim["workers"] == 4
        assert live["commit_seconds"]["count"] == 1
        assert sim["commit_seconds"]["count"] == 1
