"""Tests for the AM state machine and the asynchronous coordination
mechanism (paper §II, §V-B)."""

import pytest

from repro.coordination import (
    AdjustmentKind,
    AdjustmentRequest,
    ApplicationMaster,
    DirectiveKind,
    KeyValueStore,
    MasterState,
)


@pytest.fixture
def am():
    return ApplicationMaster("job", ["w0", "w1", "w2", "w3"])


def coordinate_all(am, workers, iteration):
    return {w: am.coordinate(w, iteration) for w in workers}


class TestRequestValidation:
    def test_scale_out_must_add(self, am):
        with pytest.raises(ValueError):
            am.request_adjustment(AdjustmentRequest(AdjustmentKind.SCALE_OUT))

    def test_scale_in_cannot_empty_group(self, am):
        with pytest.raises(ValueError):
            am.request_adjustment(
                AdjustmentRequest(
                    AdjustmentKind.SCALE_IN,
                    remove_workers=("w0", "w1", "w2", "w3"),
                )
            )

    def test_cannot_add_existing_worker(self, am):
        with pytest.raises(ValueError):
            am.request_adjustment(
                AdjustmentRequest(AdjustmentKind.SCALE_OUT, add_workers=("w0",))
            )

    def test_cannot_remove_unknown_worker(self, am):
        with pytest.raises(ValueError):
            am.request_adjustment(
                AdjustmentRequest(AdjustmentKind.SCALE_IN, remove_workers=("w9",))
            )

    def test_migration_needs_both_sides(self, am):
        with pytest.raises(ValueError):
            am.request_adjustment(
                AdjustmentRequest(AdjustmentKind.MIGRATION, add_workers=("w9",))
            )

    def test_single_in_flight_adjustment(self, am):
        first = AdjustmentRequest(AdjustmentKind.SCALE_OUT, add_workers=("w4",))
        second = AdjustmentRequest(AdjustmentKind.SCALE_OUT, add_workers=("w5",))
        assert am.request_adjustment(first)
        assert not am.request_adjustment(second)

    def test_needs_at_least_one_worker(self):
        with pytest.raises(ValueError):
            ApplicationMaster("job", [])


class TestAsynchronousCoordination:
    """The §V-B property: training never waits for starting workers."""

    def test_continue_while_new_workers_start(self, am):
        am.request_adjustment(
            AdjustmentRequest(AdjustmentKind.SCALE_OUT, add_workers=("w4", "w5"))
        )
        # No reports yet: every coordination says continue.
        for iteration in range(5):
            for worker, directive in coordinate_all(
                am, am.group, iteration
            ).items():
                assert directive.kind is DirectiveKind.CONTINUE, worker

    def test_partial_reports_still_continue(self, am):
        am.request_adjustment(
            AdjustmentRequest(AdjustmentKind.SCALE_OUT, add_workers=("w4", "w5"))
        )
        coordinate_all(am, am.group, 3)
        am.worker_report("w4")  # w5 still starting
        for directive in coordinate_all(am, am.group, 4).values():
            assert directive.kind is DirectiveKind.CONTINUE

    def test_commit_after_all_reports_at_future_boundary(self, am):
        am.request_adjustment(
            AdjustmentRequest(AdjustmentKind.SCALE_OUT, add_workers=("w4", "w5"))
        )
        coordinate_all(am, am.group, 7)
        am.worker_report("w4")
        am.worker_report("w5")
        assert am.state is MasterState.COMMIT_SCHEDULED
        assert am.commit_iteration == 8  # strictly after the latest boundary
        directives = coordinate_all(am, am.group, 8)
        assert all(
            d.kind is DirectiveKind.ADJUST for d in directives.values()
        )

    def test_adjust_directive_carries_new_group(self, am):
        am.request_adjustment(
            AdjustmentRequest(AdjustmentKind.SCALE_OUT, add_workers=("w4",))
        )
        am.worker_report("w4")
        directive = am.coordinate("w0", am.commit_iteration)
        assert directive.new_group == ("w0", "w1", "w2", "w3", "w4")

    def test_stale_or_unknown_reports_ignored(self, am):
        am.worker_report("w99")  # no adjustment pending
        assert am.state is MasterState.RUNNING
        am.request_adjustment(
            AdjustmentRequest(AdjustmentKind.SCALE_OUT, add_workers=("w4",))
        )
        am.worker_report("w5")  # not part of this adjustment
        assert am.state is MasterState.WAITING_REPORTS

    def test_duplicate_reports_idempotent(self, am):
        am.request_adjustment(
            AdjustmentRequest(AdjustmentKind.SCALE_OUT, add_workers=("w4",))
        )
        am.worker_report("w4")
        commit = am.commit_iteration
        am.worker_report("w4")
        assert am.commit_iteration == commit

    def test_scale_in_commits_without_reports(self, am):
        am.request_adjustment(
            AdjustmentRequest(AdjustmentKind.SCALE_IN, remove_workers=("w3",))
        )
        assert am.state is MasterState.COMMIT_SCHEDULED
        directive = am.coordinate("w0", am.commit_iteration)
        assert directive.kind is DirectiveKind.ADJUST
        assert directive.new_group == ("w0", "w1", "w2")

    def test_migration_group_is_new_workers_only(self, am):
        am.request_adjustment(
            AdjustmentRequest(
                AdjustmentKind.MIGRATION,
                add_workers=("w4", "w5", "w6", "w7"),
                remove_workers=("w0", "w1", "w2", "w3"),
            )
        )
        for worker_id in ("w4", "w5", "w6", "w7"):
            am.worker_report(worker_id)
        directive = am.coordinate("w0", am.commit_iteration)
        assert directive.new_group == ("w4", "w5", "w6", "w7")

    def test_finish_adjustment_resets_state(self, am):
        am.request_adjustment(
            AdjustmentRequest(AdjustmentKind.SCALE_OUT, add_workers=("w4",))
        )
        am.worker_report("w4")
        am.coordinate("w0", am.commit_iteration)
        am.finish_adjustment()
        assert am.state is MasterState.RUNNING
        assert am.group == ("w0", "w1", "w2", "w3", "w4")
        assert am.pending is None
        assert am.adjustments_committed == 1

    def test_coordinate_unknown_worker_rejected(self, am):
        with pytest.raises(KeyError):
            am.coordinate("w99", 0)

    def test_coordination_interval_aligns_commit(self):
        am = ApplicationMaster("job", ["w0"], coordination_interval=5)
        am.coordinate("w0", 10)
        am.request_adjustment(
            AdjustmentRequest(AdjustmentKind.SCALE_OUT, add_workers=("w1",))
        )
        am.worker_report("w1")
        assert am.commit_iteration == 15  # next multiple of 5


class TestFaultTolerance:
    """§V-D: the AM state machine survives on the store."""

    def test_recover_mid_adjustment(self):
        store = KeyValueStore()
        am = ApplicationMaster("job", ["w0", "w1"], store=store)
        am.request_adjustment(
            AdjustmentRequest(AdjustmentKind.SCALE_OUT, add_workers=("w2", "w3"))
        )
        am.worker_report("w2")

        # The AM dies; a replacement recovers from the store.
        recovered = ApplicationMaster.recover("job", store)
        assert recovered.state is MasterState.WAITING_REPORTS
        assert recovered.group == ("w0", "w1")
        assert recovered.reported == {"w2"}
        recovered.worker_report("w3")
        assert recovered.state is MasterState.COMMIT_SCHEDULED

    def test_recover_running_state(self):
        store = KeyValueStore()
        ApplicationMaster("job", ["w0", "w1"], store=store)
        recovered = ApplicationMaster.recover("job", store)
        assert recovered.state is MasterState.RUNNING
        assert recovered.pending is None

    def test_recover_unknown_job_raises(self):
        with pytest.raises(KeyError):
            ApplicationMaster.recover("ghost", KeyValueStore())

    def test_recovered_am_continues_protocol(self):
        store = KeyValueStore()
        am = ApplicationMaster("job", ["w0"], store=store)
        am.request_adjustment(
            AdjustmentRequest(AdjustmentKind.SCALE_OUT, add_workers=("w1",))
        )
        am.worker_report("w1")
        commit = am.commit_iteration
        recovered = ApplicationMaster.recover("job", store)
        directive = recovered.coordinate("w0", commit)
        assert directive.kind is DirectiveKind.ADJUST
        recovered.finish_adjustment()
        assert recovered.group == ("w0", "w1")
