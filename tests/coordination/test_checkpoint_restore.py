"""Tests for job-level checkpoint/restore and gradient accumulation."""

import numpy as np
import pytest

from repro.coordination import ElasticRuntime, params_consistent
from repro.replication import SharedStorage
from repro.training import make_classification


@pytest.fixture(scope="module")
def dataset():
    return make_classification(train_size=512, test_size=128, seed=71)


class TestCheckpointRestore:
    def test_roundtrip_resumes_identically(self, dataset):
        storage = SharedStorage()
        runtime = ElasticRuntime(dataset, initial_workers=2,
                                 total_batch_size=32, seed=1)
        runtime.start()
        assert runtime.wait_until_iteration(10)
        runtime.stop()
        saved_iteration = runtime.final_contexts()[0].runtime_info.iteration
        runtime.checkpoint(storage)

        restored = ElasticRuntime.restore(dataset, storage, seed=1)
        context = restored._workers["w0"].context
        assert context.runtime_info.iteration == saved_iteration
        original = runtime.final_contexts()[0]
        for name in original.params:
            assert np.array_equal(original.params[name], context.params[name])

        restored.start()
        assert restored.wait_until_iteration(saved_iteration + 10)
        restored.stop()
        assert params_consistent(restored.final_contexts())

    def test_restore_with_different_worker_count(self, dataset):
        """A checkpoint resumes on any allocation — the S&R capability,
        available as a last resort."""
        storage = SharedStorage()
        runtime = ElasticRuntime(dataset, initial_workers=2,
                                 total_batch_size=32, seed=2)
        runtime.start()
        runtime.wait_until_iteration(5)
        runtime.stop()
        runtime.checkpoint(storage)

        restored = ElasticRuntime.restore(dataset, storage, workers=4, seed=2)
        assert len(restored.am.group) == 4
        # Strong scaling: total batch preserved, micro-batches shrink.
        context = restored._workers["w0"].context
        assert context.runtime_info.total_batch_size == 32
        assert context.per_worker_batch == 8
        restored.start()
        assert restored.wait_until_iteration(
            context.runtime_info.iteration + 5
        )
        restored.stop()

    def test_checkpoint_requires_quiescence(self, dataset):
        runtime = ElasticRuntime(dataset, initial_workers=2,
                                 total_batch_size=32, seed=3)
        runtime.start()
        runtime.wait_until_iteration(2)
        with pytest.raises(RuntimeError, match="quiescent"):
            runtime.checkpoint(SharedStorage())
        runtime.stop()

    def test_restore_missing_checkpoint_raises(self, dataset):
        with pytest.raises(KeyError):
            ElasticRuntime.restore(dataset, SharedStorage())


class TestGradientAccumulation:
    def test_accumulated_matches_monolithic(self, dataset):
        """Splitting each worker's share into micro-chunks is invisible:
        the accumulated run matches a single-process replay exactly."""
        from repro.training import (
            MomentumSGD,
            SerialLoader,
            init_mlp,
            loss_and_gradients,
        )

        runtime = ElasticRuntime(
            dataset, initial_workers=2, total_batch_size=32,
            seed=4, max_micro_batch=4,
        )
        runtime.start()
        assert runtime.wait_until_iteration(15)
        runtime.stop()
        context = runtime.final_contexts()[0]
        iterations = context.runtime_info.iteration

        params = init_mlp(dataset.input_dim, 32, dataset.num_classes, seed=4)
        optimizer = MomentumSGD(lr=0.05)
        loader = SerialLoader(dataset.train_size, seed=4)
        for _ in range(iterations):
            (indices,) = loader.next_iteration(1, 32)
            if len(indices) == 0:
                continue
            _loss, grads = loss_and_gradients(
                params, dataset.train_x[indices], dataset.train_y[indices]
            )
            optimizer.step(params, grads)
        for name in params:
            assert np.allclose(
                params[name], context.params[name], atol=1e-10
            )

    def test_validation(self, dataset):
        with pytest.raises(ValueError):
            ElasticRuntime(dataset, max_micro_batch=0)

    def test_accumulation_with_scale_out(self, dataset):
        runtime = ElasticRuntime(
            dataset, initial_workers=2, total_batch_size=64,
            seed=5, max_micro_batch=8,
        )
        runtime.start()
        runtime.wait_until_iteration(3)
        runtime.scale_out(2)
        assert runtime.wait_for_adjustments(1)
        assert runtime.wait_until_iteration(runtime.snapshot()["iteration"] + 5)
        runtime.stop()
        assert params_consistent(runtime.final_contexts())
