"""Tests for the DES protocol simulation — and its cross-validation
against both the live runtime's semantics and the closed-form timing
models."""

import pytest

from repro.baselines import ElanAdjustmentModel
from repro.coordination import SimulatedElasticJob
from repro.coordination.master import AdjustmentKind
from repro.perfmodel import MODEL_ZOO, RESNET50


def scale_out_run(model=RESNET50, workers=8, add=8, seed=0, until=150.0):
    job = SimulatedElasticJob(model, workers=workers, total_batch_size=256,
                              seed=seed)
    job.at(10.0, lambda: job.request_scale_out(add))
    job.run(until=until)
    return job


class TestAsynchronousBehaviour:
    def test_training_progresses_during_startup(self):
        """The §V-B property on simulated time: many iterations complete
        between the request and the commit (start+init are hidden)."""
        job = scale_out_run()
        (adjustment,) = job.adjustments
        assert adjustment.iterations_during_startup > 50
        assert adjustment.commit_time > adjustment.request_time + 15.0

    def test_commit_waits_for_slowest_starter(self):
        """With startup jitter, the commit happens only after the last
        report — never partially."""
        job = scale_out_run(seed=3)
        (adjustment,) = job.adjustments
        # Startup mean is start+init; the commit cannot precede it.
        from repro.perfmodel.calibration import (
            WORKER_INIT_TIME,
            WORKER_START_TIME,
        )
        assert adjustment.commit_time >= (
            adjustment.request_time + WORKER_START_TIME + WORKER_INIT_TIME
        )

    def test_group_grows_after_commit(self):
        job = scale_out_run()
        assert len(job.am.group) == 16

    def test_throughput_rises_after_scale_out(self):
        job = scale_out_run(until=200.0)
        (adjustment,) = job.adjustments
        before = job.effective_throughput(0.0, adjustment.request_time)
        after = job.effective_throughput(adjustment.resume_time, 200.0)
        assert after > 1.3 * before

    def test_concurrent_request_rejected(self):
        job = SimulatedElasticJob(RESNET50, workers=8, total_batch_size=256)
        job.at(5.0, lambda: job.request_scale_out(4))
        job.at(6.0, lambda: job.request_scale_out(4))
        with pytest.raises(RuntimeError, match="in flight"):
            job.run(until=60.0)


class TestCrossValidation:
    @pytest.mark.parametrize("name", sorted(MODEL_ZOO))
    def test_pause_matches_closed_form_model(self, name):
        """The DES-measured pause equals the ElanAdjustmentModel total
        within jitter tolerance — two independent paths, one answer."""
        model = MODEL_ZOO[name]
        job = scale_out_run(model=model, until=200.0)
        (adjustment,) = job.adjustments
        closed_form = ElanAdjustmentModel(seed=0).adjustment_time(
            "scale_out", model, 8, 16
        ).total
        assert adjustment.pause == pytest.approx(closed_form, rel=0.25)

    def test_scale_in_pause_is_fixed_costs_only(self):
        job = SimulatedElasticJob(RESNET50, workers=16, total_batch_size=512)
        job.at(10.0, lambda: job.request_scale_in(8))
        job.run(until=60.0)
        (adjustment,) = job.adjustments
        assert adjustment.kind is AdjustmentKind.SCALE_IN
        assert adjustment.pause < 0.5  # no replication
        assert len(job.am.group) == 8

    def test_scale_in_commits_quickly(self):
        """No reports to wait for: commit at the next boundary."""
        job = SimulatedElasticJob(RESNET50, workers=16, total_batch_size=512)
        job.at(10.0, lambda: job.request_scale_in(8))
        job.run(until=60.0)
        (adjustment,) = job.adjustments
        iteration_time = job.throughput.iteration_time(16, 512)
        assert adjustment.commit_time < 10.0 + 3 * iteration_time


class TestCoordinationInterval:
    def test_sparse_coordination_delays_commit(self):
        fast = scale_out_run(seed=1)
        slow_job = SimulatedElasticJob(
            RESNET50, workers=8, total_batch_size=256,
            coordination_interval=50, seed=1,
        )
        slow_job.at(10.0, lambda: slow_job.request_scale_out(8))
        slow_job.run(until=150.0)
        (fast_adj,) = fast.adjustments
        (slow_adj,) = slow_job.adjustments
        assert slow_adj.commit_time >= fast_adj.commit_time
        assert slow_adj.commit_time == pytest.approx(
            fast_adj.commit_time, abs=50 * fast.throughput.iteration_time(8, 256)
        )
