"""Tests for runtime telemetry and data-driven straggler detection."""

import pytest

from repro.coordination import ElasticRuntime, RuntimeTelemetry
from repro.training import make_classification


@pytest.fixture(scope="module")
def dataset():
    return make_classification(train_size=512, test_size=128, seed=81)


class TestRuntimeTelemetryUnit:
    def test_window_bounds_samples(self):
        telemetry = RuntimeTelemetry(window=3)
        for value in (1.0, 2.0, 3.0, 10.0):
            telemetry.record_compute("w0", value)
        assert telemetry.mean_compute_time("w0") == pytest.approx(5.0)

    def test_unknown_worker_is_none(self):
        assert RuntimeTelemetry().mean_compute_time("ghost") is None

    def test_summary_covers_all_workers(self):
        telemetry = RuntimeTelemetry()
        telemetry.record_compute("a", 0.1)
        telemetry.record_compute("b", 0.2)
        summary = telemetry.summary()
        assert set(summary) == {"a", "b"}

    def test_detect_stragglers_flags_outlier(self):
        telemetry = RuntimeTelemetry()
        for _ in range(10):
            telemetry.record_compute("fast1", 0.01)
            telemetry.record_compute("fast2", 0.011)
            telemetry.record_compute("slow", 0.05)
        assert telemetry.detect_stragglers(factor=2.0) == ["slow"]

    def test_detect_requires_min_samples(self):
        telemetry = RuntimeTelemetry()
        telemetry.record_compute("a", 0.01)
        telemetry.record_compute("b", 1.0)
        assert telemetry.detect_stragglers(min_samples=5) == []

    def test_detect_needs_two_workers(self):
        telemetry = RuntimeTelemetry()
        for _ in range(10):
            telemetry.record_compute("solo", 0.5)
        assert telemetry.detect_stragglers() == []

    def test_forget_worker(self):
        telemetry = RuntimeTelemetry()
        telemetry.record_compute("a", 0.1)
        telemetry.forget_worker("a")
        assert telemetry.summary() == {}

    def test_validation(self):
        with pytest.raises(ValueError):
            RuntimeTelemetry(window=0)
        with pytest.raises(ValueError):
            RuntimeTelemetry().detect_stragglers(factor=1.0)

    def test_event_log_filters_by_kind(self):
        telemetry = RuntimeTelemetry()
        telemetry.record_event(1.0, "adjustment", adjustment_kind="scale_out")
        telemetry.record_event(2.0, "worker_failure", worker="w1")
        assert len(telemetry.events_of_kind("adjustment")) == 1
        assert telemetry.events_of_kind("worker_failure")[0].detail[
            "worker"
        ] == "w1"


class TestDetectStragglersEdgeCases:
    def _fill(self, telemetry, worker, value, n):
        for _ in range(n):
            telemetry.record_compute(worker, value)

    def test_exactly_min_samples_counts(self):
        telemetry = RuntimeTelemetry()
        self._fill(telemetry, "fast1", 0.01, 5)
        self._fill(telemetry, "fast2", 0.01, 5)
        self._fill(telemetry, "slow", 0.10, 5)
        assert telemetry.detect_stragglers(min_samples=5) == ["slow"]
        # One sample short of the threshold: the worker is invisible.
        telemetry = RuntimeTelemetry()
        self._fill(telemetry, "fast1", 0.01, 5)
        self._fill(telemetry, "fast2", 0.01, 5)
        self._fill(telemetry, "slow", 0.10, 4)
        assert telemetry.detect_stragglers(min_samples=5) == []

    def test_all_equal_means_flag_nobody(self):
        telemetry = RuntimeTelemetry()
        for worker in ("a", "b", "c", "d"):
            self._fill(telemetry, worker, 0.02, 8)
        assert telemetry.detect_stragglers(factor=1.5) == []

    def test_two_worker_group(self):
        # With two workers the median is the midpoint: only a truly
        # extreme outlier clears factor x median.
        telemetry = RuntimeTelemetry()
        self._fill(telemetry, "fast", 0.01, 8)
        self._fill(telemetry, "slow", 0.05, 8)
        assert telemetry.detect_stragglers(factor=1.5) == ["slow"]
        telemetry = RuntimeTelemetry()
        self._fill(telemetry, "fast", 0.01, 8)
        self._fill(telemetry, "slowish", 0.012, 8)
        assert telemetry.detect_stragglers(factor=1.5) == []

    def test_zero_median_guard(self):
        # All-zero compute times (degenerate clocks) must not divide by
        # zero or flag everyone.
        telemetry = RuntimeTelemetry()
        self._fill(telemetry, "a", 0.0, 8)
        self._fill(telemetry, "b", 0.0, 8)
        assert telemetry.detect_stragglers(factor=2.0) == []


class TestEventIntegrity:
    def test_detail_is_copied_on_construction(self):
        telemetry = RuntimeTelemetry()
        detail = {"worker": "w1"}
        telemetry.record_event(1.0, "worker_failure", **detail)
        detail["worker"] = "mutated"
        assert telemetry.events[0].detail["worker"] == "w1"

    def test_injectable_clock_stamps_events(self):
        sim_now = {"t": 10.0}
        telemetry = RuntimeTelemetry(clock=lambda: sim_now["t"])
        telemetry.record_event(None, "adjustment")
        sim_now["t"] = 20.0
        telemetry.record_detection("w1", latency=0.5)
        sim_now["t"] = 23.0
        telemetry.record_recovery(["w1"], mttr=3.0)
        times = [e.wall_time for e in telemetry.events]
        assert times == [10.0, 20.0, 23.0]
        # Replays with the same clock produce the same log: no hidden
        # time.time() anywhere.
        replay = RuntimeTelemetry(clock=lambda: 20.0)
        replay.record_detection("w1", latency=0.5)
        assert replay.events[0].wall_time == 20.0
        assert replay.detection_latencies == [0.5]

    def test_explicit_wall_time_still_wins(self):
        telemetry = RuntimeTelemetry(clock=lambda: 99.0)
        telemetry.record_event(5.0, "adjustment")
        assert telemetry.events[0].wall_time == 5.0

    def test_recordings_feed_metric_registry(self):
        telemetry = RuntimeTelemetry(clock=lambda: 0.0)
        telemetry.record_compute("w0", 0.25)
        telemetry.record_detection("w0", latency=1.5)
        telemetry.record_recovery(["w0"], mttr=2.5)
        telemetry.record_event(None, "adjustment")
        snap = telemetry.metrics.snapshot()
        assert snap["worker.compute_seconds"]["count"] == 1
        assert snap["failure.detection_latency_seconds"]["max"] == 1.5
        assert snap["failure.mttr_seconds"]["max"] == 2.5
        assert snap["events.adjustment"] == 1


class TestTelemetryInRuntime:
    def test_detects_injected_straggler(self, dataset):
        """End to end: the telemetry identifies the slow worker from real
        compute timings, without knowing about the injection."""
        runtime = ElasticRuntime(
            dataset, initial_workers=3, total_batch_size=48, seed=1,
            iteration_delays={"w1": 0.02},
        )
        runtime.start()
        assert runtime.wait_until_iteration(10)
        runtime.stop()
        assert runtime.telemetry.detect_stragglers(factor=2.0) == ["w1"]

    def test_healthy_job_has_no_stragglers(self, dataset):
        runtime = ElasticRuntime(dataset, initial_workers=3,
                                 total_batch_size=48, seed=2)
        runtime.start()
        assert runtime.wait_until_iteration(10)
        runtime.stop()
        assert runtime.telemetry.detect_stragglers(factor=3.0) == []

    def test_adjustment_events_recorded(self, dataset):
        runtime = ElasticRuntime(dataset, initial_workers=2,
                                 total_batch_size=32, seed=3)
        runtime.start()
        runtime.wait_until_iteration(3)
        runtime.scale_out(1)
        assert runtime.wait_for_adjustments(1)
        runtime.stop()
        events = runtime.telemetry.events_of_kind("adjustment")
        assert len(events) == 1
        assert events[0].detail["adjustment_kind"] == "scale_out"
        assert events[0].detail["new_group"] == ["w0", "w1", "w2"]
        assert events[0].detail["latency"] < 1.0

    def test_failure_events_recorded(self, dataset):
        import time as _time

        runtime = ElasticRuntime(dataset, initial_workers=2,
                                 total_batch_size=32, seed=4)
        runtime.start()
        runtime.failure_injections["w1"] = 2
        deadline = _time.monotonic() + 10
        while (
            not runtime.telemetry.events_of_kind("worker_failure")
            and _time.monotonic() < deadline
        ):
            _time.sleep(0.005)
        events = runtime.telemetry.events_of_kind("worker_failure")
        assert events and events[0].detail["worker"] == "w1"
