"""Tests for runtime telemetry and data-driven straggler detection."""

import pytest

from repro.coordination import ElasticRuntime, RuntimeTelemetry
from repro.training import make_classification


@pytest.fixture(scope="module")
def dataset():
    return make_classification(train_size=512, test_size=128, seed=81)


class TestRuntimeTelemetryUnit:
    def test_window_bounds_samples(self):
        telemetry = RuntimeTelemetry(window=3)
        for value in (1.0, 2.0, 3.0, 10.0):
            telemetry.record_compute("w0", value)
        assert telemetry.mean_compute_time("w0") == pytest.approx(5.0)

    def test_unknown_worker_is_none(self):
        assert RuntimeTelemetry().mean_compute_time("ghost") is None

    def test_summary_covers_all_workers(self):
        telemetry = RuntimeTelemetry()
        telemetry.record_compute("a", 0.1)
        telemetry.record_compute("b", 0.2)
        summary = telemetry.summary()
        assert set(summary) == {"a", "b"}

    def test_detect_stragglers_flags_outlier(self):
        telemetry = RuntimeTelemetry()
        for _ in range(10):
            telemetry.record_compute("fast1", 0.01)
            telemetry.record_compute("fast2", 0.011)
            telemetry.record_compute("slow", 0.05)
        assert telemetry.detect_stragglers(factor=2.0) == ["slow"]

    def test_detect_requires_min_samples(self):
        telemetry = RuntimeTelemetry()
        telemetry.record_compute("a", 0.01)
        telemetry.record_compute("b", 1.0)
        assert telemetry.detect_stragglers(min_samples=5) == []

    def test_detect_needs_two_workers(self):
        telemetry = RuntimeTelemetry()
        for _ in range(10):
            telemetry.record_compute("solo", 0.5)
        assert telemetry.detect_stragglers() == []

    def test_forget_worker(self):
        telemetry = RuntimeTelemetry()
        telemetry.record_compute("a", 0.1)
        telemetry.forget_worker("a")
        assert telemetry.summary() == {}

    def test_validation(self):
        with pytest.raises(ValueError):
            RuntimeTelemetry(window=0)
        with pytest.raises(ValueError):
            RuntimeTelemetry().detect_stragglers(factor=1.0)

    def test_event_log_filters_by_kind(self):
        telemetry = RuntimeTelemetry()
        telemetry.record_event(1.0, "adjustment", adjustment_kind="scale_out")
        telemetry.record_event(2.0, "worker_failure", worker="w1")
        assert len(telemetry.events_of_kind("adjustment")) == 1
        assert telemetry.events_of_kind("worker_failure")[0].detail[
            "worker"
        ] == "w1"


class TestTelemetryInRuntime:
    def test_detects_injected_straggler(self, dataset):
        """End to end: the telemetry identifies the slow worker from real
        compute timings, without knowing about the injection."""
        runtime = ElasticRuntime(
            dataset, initial_workers=3, total_batch_size=48, seed=1,
            iteration_delays={"w1": 0.02},
        )
        runtime.start()
        assert runtime.wait_until_iteration(10)
        runtime.stop()
        assert runtime.telemetry.detect_stragglers(factor=2.0) == ["w1"]

    def test_healthy_job_has_no_stragglers(self, dataset):
        runtime = ElasticRuntime(dataset, initial_workers=3,
                                 total_batch_size=48, seed=2)
        runtime.start()
        assert runtime.wait_until_iteration(10)
        runtime.stop()
        assert runtime.telemetry.detect_stragglers(factor=3.0) == []

    def test_adjustment_events_recorded(self, dataset):
        runtime = ElasticRuntime(dataset, initial_workers=2,
                                 total_batch_size=32, seed=3)
        runtime.start()
        runtime.wait_until_iteration(3)
        runtime.scale_out(1)
        assert runtime.wait_for_adjustments(1)
        runtime.stop()
        events = runtime.telemetry.events_of_kind("adjustment")
        assert len(events) == 1
        assert events[0].detail["adjustment_kind"] == "scale_out"
        assert events[0].detail["new_group"] == ["w0", "w1", "w2"]
        assert events[0].detail["latency"] < 1.0

    def test_failure_events_recorded(self, dataset):
        import time as _time

        runtime = ElasticRuntime(dataset, initial_workers=2,
                                 total_batch_size=32, seed=4)
        runtime.start()
        runtime.failure_injections["w1"] = 2
        deadline = _time.monotonic() + 10
        while (
            not runtime.telemetry.events_of_kind("worker_failure")
            and _time.monotonic() < deadline
        ):
            _time.sleep(0.005)
        events = runtime.telemetry.events_of_kind("worker_failure")
        assert events and events[0].detail["worker"] == "w1"
