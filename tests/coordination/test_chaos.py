"""Chaos soak: a composed FaultPlan against the self-healing runtime.

The acceptance scenario for the supervision layer: workers die silently
(detectable only by lease expiry), healthy workers are fenced out by
forced revocation, control-plane messages are dropped, and the AM crashes
and recovers mid-run — all injected deterministically from one
:class:`~repro.coordination.FaultPlan`, with **no manual recovery call**.
The run must end with consistent replicas, exactly-once data coverage,
the requested number of committed adjustments, a provably fenced stale
AM, and detection-latency / MTTR samples in the telemetry.
"""

import pytest

from repro.coordination import (
    Directive,
    DirectiveKind,
    ElasticRuntime,
    ExponentialBackoff,
    FaultPlan,
    MessageFactory,
    MessageType,
    ReliableSender,
    SimulatedElasticJob,
    StaleEpochError,
    params_consistent,
)
from repro.perfmodel.models import TRANSFORMER
from repro.training import make_classification

# 960 % 48 == 0: epochs divide evenly into iterations, so the serial
# loader's position must equal (iterations * batch) % size exactly.
TRAIN_SIZE = 960
TOTAL_BATCH = 48


def _runtime(plan, workers=3, **kwargs):
    dataset = make_classification(
        train_size=TRAIN_SIZE, test_size=96, input_dim=8, seed=7
    )
    # Slow iterations down so supervision (50ms ticks) interleaves with
    # training instead of the run finishing before the first tick.
    delays = {f"w{i}": 0.02 for i in range(workers + 4)}
    return ElasticRuntime(
        dataset,
        initial_workers=workers,
        total_batch_size=TOTAL_BATCH,
        lease_ttl=0.2,
        supervision_interval=0.05,
        fault_plan=plan,
        iteration_delays=delays,
        **kwargs,
    )


def _assert_exactly_once_coverage(contexts):
    """Serial-loader invariant: no batch skipped, none issued twice."""
    positions = {c.loader.state_dict()["position"] for c in contexts}
    iterations = {c.runtime_info.iteration for c in contexts}
    epochs = {c.loader.epoch for c in contexts}
    assert len(positions) == len(iterations) == len(epochs) == 1
    iteration = iterations.pop()
    assert positions.pop() == (iteration * TOTAL_BATCH) % TRAIN_SIZE
    assert epochs.pop() == (iteration * TOTAL_BATCH) // TRAIN_SIZE


def test_silent_crash_self_heals_without_manual_recovery():
    """A FaultPlan-injected kill -9 is detected by lease expiry and the
    job repairs itself — recover_from_failure is never called by hand."""
    plan = FaultPlan(silent_crashes={"w2": 6})
    runtime = _runtime(plan)
    runtime.start()
    assert runtime.wait_until_iteration(25, timeout=60), "job never healed"
    runtime.stop()

    assert runtime.am.group == ("w0", "w1")
    assert runtime.worker_failures == {}
    # The detect half and the repair half are both visible in telemetry.
    assert len(runtime.telemetry.detection_latencies) == 1
    assert runtime.telemetry.mean_detection_latency() >= 0.0
    assert len(runtime.telemetry.mttr_samples) == 1
    assert runtime.telemetry.mean_mttr() > 0.0
    detected = runtime.telemetry.events_of_kind("failure_detected")
    assert [e.detail["worker"] for e in detected] == ["w2"]
    recoveries = runtime.telemetry.events_of_kind("recovery")
    assert [e.detail["removed"] for e in recoveries] == [["w2"]]

    contexts = runtime.final_contexts()
    assert params_consistent(contexts)
    _assert_exactly_once_coverage(contexts)


def test_forced_lease_expiry_fences_healthy_worker():
    """Revoking a healthy worker's lease evicts it: the worker fail-stops
    (it may not act without a live lease) and the group heals around it."""
    plan = FaultPlan(lease_expiries={"elan/job0/lease/w1": 0.0})
    runtime = _runtime(plan)
    runtime.start()
    assert runtime.wait_until_iteration(25, timeout=60), "job never healed"
    runtime.stop()

    assert runtime.am.group == ("w0", "w2")
    detected = runtime.telemetry.events_of_kind("failure_detected")
    assert [e.detail["worker"] for e in detected] == ["w1"]
    assert detected[0].detail["cause"] == "fenced"
    contexts = runtime.final_contexts()
    assert params_consistent(contexts)
    _assert_exactly_once_coverage(contexts)


def test_chaos_soak_composed_fault_plan():
    """The full storm at once: dropped messages, a silent worker crash
    mid-adjustment, an AM crash/recover, and a stale-epoch directive."""
    plan = FaultPlan(
        drop_every=3,
        silent_crashes={"w1": 8},
        am_crash_iteration=16,
    )
    runtime = _runtime(plan, startup_delay=0.1)
    stale_am = runtime.am
    runtime.start()

    # Phase 1: request a scale-out, then lose w1 while the new worker is
    # still starting — the adjustment must survive the recovery.
    assert runtime.wait_until_iteration(4, timeout=60)
    runtime.scale_out(1)
    assert runtime.wait_for_adjustments(1, timeout=60), "scale-out lost"
    assert runtime.wait_until_iteration(14, timeout=60), "job never healed"

    # Phase 2: the supervisor kills and recovers the AM at iteration 16.
    assert runtime.wait_until_iteration(24, timeout=60)
    runtime.stop()

    # The supervisor drove every repair; nothing was recovered manually.
    assert runtime.am is not stale_am
    assert runtime.am.epoch > stale_am.epoch
    assert "w1" not in runtime.am.group
    assert "w3" in runtime.am.group
    assert runtime.am.adjustments_committed == 1  # recovery is not one

    # The superseded incarnation is fenced: acting raises, a directive it
    # minted is rejected, and the rejection is logged.
    with pytest.raises(StaleEpochError):
        stale_am.coordinate("w0", 99)
    with pytest.raises(StaleEpochError):
        runtime._validate_directive(
            Directive(kind=DirectiveKind.CONTINUE, epoch=stale_am.epoch)
        )
    assert runtime.telemetry.events_of_kind("stale_directive_rejected")
    # The persisted snapshot carries the new incarnation's epoch.
    snapshot = runtime.store.get(f"elan/{runtime.am.job_id}/am")
    assert snapshot["epoch"] == runtime.am.epoch

    assert runtime.telemetry.events_of_kind("am_failover")
    assert runtime.telemetry.detection_latencies
    assert runtime.telemetry.mttr_samples

    contexts = runtime.final_contexts()
    assert params_consistent(contexts)
    _assert_exactly_once_coverage(contexts)

    # The same plan's lossy channel still achieves delivery under the
    # retrying sender, and every re-attempt is accounted for.
    inbox = []
    sender = ReliableSender(
        plan.channel(inbox.append),
        backoff=ExponentialBackoff(base=0.001, sleeper=lambda _s: None),
    )
    factory = MessageFactory()
    for i in range(6):
        message = factory.make(MessageType.HEARTBEAT, f"w{i}", {"i": i})
        assert sender.send(
            message, lambda m=message: any(q.msg_id == m.msg_id for q in inbox)
        )
    assert sender.retries > 0
    assert sender.backoff.waits == sender.retries


def test_dessim_supervision_twin_matches_live_semantics():
    """The simulated supervisor heals the same faults on simulated time:
    deterministic detection latency, MTTR, and AM epoch bump."""
    plan = FaultPlan(
        silent_crashes={"w3": 40},
        lease_expiries={"elan/sim-job/lease/w2": 60.0},
        am_crash_iteration=80,
    )
    job = SimulatedElasticJob(
        TRANSFORMER, workers=4, total_batch_size=256,
        lease_ttl=5.0, fault_plan=plan,
    )
    stale_am = job.am
    job.run(until=300.0)

    assert job.am.group == ("w0", "w1")
    assert [w for w, _lat in job.detections] == ["w3", "w2"]
    # Detection cannot beat the supervision tick, and must catch an
    # expiry within one lease TTL plus one tick.
    for _worker, latency in job.detections:
        assert 0.0 <= latency <= job.lease_ttl + job.supervision_interval
    assert len(job.recoveries) == 2
    for _removed, mttr in job.recoveries:
        assert mttr > 0.0
    assert job.am.epoch > stale_am.epoch
    with pytest.raises(StaleEpochError):
        stale_am.coordinate("w0", 9999)
    # Determinism: the same plan replays to the same timeline.
    twin = SimulatedElasticJob(
        TRANSFORMER, workers=4, total_batch_size=256,
        lease_ttl=5.0, fault_plan=plan,
    )
    twin.run(until=300.0)
    assert twin.detections == job.detections
    assert twin.recoveries == job.recoveries
