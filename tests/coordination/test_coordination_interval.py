"""Live-runtime tests for sparse coordination (§V-B: the frequency of
coordination is configurable).

With ``coordination_interval = k`` workers only check in every k-th
iteration, so adjustments must commit exactly on k-boundaries and every
worker must switch groups at the same boundary — the lockstep invariant
under the least favourable alignment.
"""

import pytest

from repro.coordination import ElasticRuntime, params_consistent
from repro.training import make_classification


@pytest.fixture(scope="module")
def dataset():
    return make_classification(train_size=512, test_size=128, seed=51)


class TestSparseCoordination:
    @pytest.mark.parametrize("interval", [2, 5, 8])
    def test_commit_lands_on_boundary(self, dataset, interval):
        runtime = ElasticRuntime(
            dataset, initial_workers=2, total_batch_size=32,
            coordination_interval=interval, seed=interval,
        )
        runtime.start()
        assert runtime.wait_until_iteration(interval + 1)
        runtime.scale_out(2)
        assert runtime.wait_for_adjustments(1)
        runtime.stop()
        plan = runtime.history[0]
        assert plan.commit_iteration % interval == 0
        assert params_consistent(runtime.final_contexts())

    def test_training_correct_between_boundaries(self, dataset):
        """With interval 4, iterations between boundaries never consult
        the AM; coordination count stays low while training proceeds."""
        runtime = ElasticRuntime(
            dataset, initial_workers=2, total_batch_size=32,
            coordination_interval=4, seed=3,
        )
        runtime.start()
        assert runtime.wait_until_iteration(20)
        runtime.stop()
        iterations = runtime.final_contexts()[0].runtime_info.iteration
        # Each worker coordinates once per boundary: <= iterations/4 + 1.
        per_worker_bound = iterations / 4 + 2
        assert runtime.am.coordinations <= 2 * per_worker_bound

    def test_multiple_adjustments_with_sparse_coordination(self, dataset):
        runtime = ElasticRuntime(
            dataset, initial_workers=2, total_batch_size=32,
            coordination_interval=3, seed=4,
        )
        runtime.start()
        assert runtime.wait_until_iteration(4)
        runtime.scale_out(1)
        assert runtime.wait_for_adjustments(1)
        assert runtime.wait_until_iteration(runtime.snapshot()["iteration"] + 4)
        runtime.scale_in(1)
        assert runtime.wait_for_adjustments(2)
        runtime.stop()
        for plan in runtime.history:
            assert plan.commit_iteration % 3 == 0
        assert params_consistent(runtime.final_contexts())

    def test_all_workers_stop_on_the_same_boundary(self, dataset):
        runtime = ElasticRuntime(
            dataset, initial_workers=4, total_batch_size=64,
            coordination_interval=5, seed=5,
        )
        runtime.start()
        assert runtime.wait_until_iteration(7)
        runtime.stop()
        iterations = {
            c.runtime_info.iteration for c in runtime.final_contexts()
        }
        assert len(iterations) == 1
        assert next(iter(iterations)) % 5 == 0
