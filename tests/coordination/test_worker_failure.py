"""Tests for worker-crash handling and checkpoint-free recovery.

Extension beyond the paper's §V-D (which covers AM failures): because
every worker holds the full state replica, worker crashes lose no state —
survivors rewind the in-flight iteration, regroup, and continue.
"""

import time

import pytest

from repro.coordination import ElasticRuntime, params_consistent
from repro.training import make_classification


@pytest.fixture(scope="module")
def dataset():
    return make_classification(train_size=512, test_size=128, seed=31)


def crash_one_worker(runtime, victim, at_iteration=None):
    at = at_iteration or (runtime.snapshot()["iteration"] + 3)
    runtime.failure_injections[victim] = at
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        if victim in runtime.worker_failures:
            return
        time.sleep(0.005)
    raise AssertionError("injected crash never fired")


class TestCrashDetection:
    def test_crash_is_recorded(self, dataset):
        runtime = ElasticRuntime(dataset, initial_workers=3,
                                 total_batch_size=48, seed=1)
        runtime.start()
        crash_one_worker(runtime, "w1")
        assert isinstance(runtime.worker_failures["w1"], RuntimeError)
        runtime.stop()

    def test_survivors_do_not_hang(self, dataset):
        """The crashed worker aborts the collective so peers unblock
        instead of waiting out the allreduce timeout."""
        runtime = ElasticRuntime(dataset, initial_workers=3,
                                 total_batch_size=48, seed=2)
        runtime.start()
        crash_one_worker(runtime, "w0")
        for worker_id in ("w1", "w2"):
            thread = runtime._workers[worker_id].thread
            thread.join(timeout=5.0)
            assert not thread.is_alive(), f"{worker_id} hung after the crash"


class TestRecovery:
    def test_training_resumes_without_state_loss(self, dataset):
        runtime = ElasticRuntime(dataset, initial_workers=3,
                                 total_batch_size=48, seed=3)
        runtime.start()
        crash_one_worker(runtime, "w2")
        removed = runtime.recover_from_failure()
        assert removed == ["w2"]
        assert runtime.am.group == ("w0", "w1")
        before = runtime.snapshot()["iteration"]
        assert runtime.wait_until_iteration(before + 10)
        runtime.stop()
        contexts = runtime.final_contexts()
        assert len(contexts) == 2
        assert params_consistent(contexts)

    def test_interrupted_batch_is_reissued(self, dataset):
        """The loader rewind: the batch in flight at the crash is consumed
        again after recovery — exactly-once per epoch still holds."""
        runtime = ElasticRuntime(dataset, initial_workers=2,
                                 total_batch_size=32, seed=4)
        runtime.start()
        crash_one_worker(runtime, "w1")
        runtime.recover_from_failure()
        runtime.wait_until_iteration(runtime.snapshot()["iteration"] + 3)
        runtime.stop()  # quiesce before inspecting loader state
        # Survivor loader position must equal iteration * batch consumed
        # (modulo epoch wrap): position tracks completed iterations only —
        # the batch in flight at the crash was rewound, not skipped.
        context = runtime._workers["w0"].context
        iterations = context.runtime_info.iteration
        expected_position = (iterations * 32) % dataset.train_size
        assert context.loader.state_dict()["position"] == expected_position

    def test_recovery_without_failures_is_noop(self, dataset):
        runtime = ElasticRuntime(dataset, initial_workers=2,
                                 total_batch_size=32, seed=5)
        runtime.start()
        assert runtime.recover_from_failure() == []
        runtime.stop()

    def test_recovered_job_can_scale_again(self, dataset):
        """Elasticity still works after a recovery (fresh generation)."""
        runtime = ElasticRuntime(dataset, initial_workers=3,
                                 total_batch_size=48, seed=6)
        runtime.start()
        crash_one_worker(runtime, "w1")
        runtime.recover_from_failure()
        runtime.wait_until_iteration(runtime.snapshot()["iteration"] + 3)
        runtime.scale_out(2)
        assert runtime.wait_for_adjustments(1)
        runtime.stop()
        assert len(runtime.am.group) == 4
        assert params_consistent(runtime.final_contexts())

    def test_total_loss_rejected(self, dataset):
        runtime = ElasticRuntime(dataset, initial_workers=1,
                                 total_batch_size=16, seed=7)
        runtime.start()
        crash_one_worker(runtime, "w0")
        with pytest.raises(RuntimeError, match="checkpoint"):
            runtime.recover_from_failure()

    def test_gpu_released_by_crashed_worker(self, dataset):
        from repro.topology import build_cluster

        runtime = ElasticRuntime(dataset, initial_workers=2,
                                 total_batch_size=32, seed=8,
                                 cluster=build_cluster(1))
        runtime.start()
        crash_one_worker(runtime, "w1")
        runtime.recover_from_failure()
        runtime.stop()
        assert len(runtime._free_gpus) == 7
