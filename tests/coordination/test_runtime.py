"""Integration tests for the live elastic runtime — the full 5-step
adjustment procedure of paper Fig. 2, executed for real on threads."""

import numpy as np
import pytest

from repro.coordination import ElasticRuntime, Hook, params_consistent
from repro.core import StrongScalingPolicy, WeakScalingPolicy
from repro.topology import build_cluster
from repro.training import make_classification, train_single


@pytest.fixture(scope="module")
def dataset():
    return make_classification(train_size=512, test_size=128, seed=5)


def run_elastic(dataset, actions, **kwargs):
    """Run a runtime, applying ``actions`` (list of callables) in order,
    waiting for each adjustment to commit."""
    runtime = ElasticRuntime(dataset, **kwargs)
    runtime.start()
    committed = 0
    for action in actions:
        assert runtime.wait_until_iteration(
            runtime.snapshot()["iteration"] + 3
        ), "training stalled"
        action(runtime)
        committed += 1
        assert runtime.wait_for_adjustments(committed), "adjustment stuck"
    assert runtime.wait_until_iteration(runtime.snapshot()["iteration"] + 5)
    runtime.stop()
    return runtime


class TestScaleOut:
    def test_group_grows_and_training_continues(self, dataset):
        runtime = run_elastic(
            dataset,
            [lambda rt: rt.scale_out(2)],
            initial_workers=2,
            total_batch_size=64,
            seed=1,
        )
        assert len(runtime.am.group) == 4
        assert runtime.snapshot()["iteration"] > runtime.history[0].commit_iteration

    def test_replicas_stay_consistent(self, dataset):
        runtime = run_elastic(
            dataset,
            [lambda rt: rt.scale_out(2)],
            initial_workers=2,
            total_batch_size=64,
            seed=2,
        )
        contexts = runtime.final_contexts()
        assert len(contexts) == 4
        assert params_consistent(contexts)

    def test_training_progresses_while_workers_start(self, dataset):
        """The asynchronous mechanism: slow-starting workers do not stall
        existing ones (§V-B)."""
        runtime = ElasticRuntime(
            dataset, initial_workers=2, total_batch_size=64,
            startup_delay=0.3, seed=3,
        )
        runtime.start()
        assert runtime.wait_until_iteration(5)
        before = runtime.snapshot()["iteration"]
        runtime.scale_out(2)
        # While the new workers sleep through start+init, training runs on.
        assert runtime.wait_until_iteration(before + 20)
        assert runtime.am.adjustments_committed == 0  # not yet committed
        assert runtime.wait_for_adjustments(1, timeout=10)
        runtime.stop()
        commit = runtime.history[0].commit_iteration
        assert commit > before + 20

    def test_strong_scaling_keeps_total_batch(self, dataset):
        runtime = run_elastic(
            dataset,
            [lambda rt: rt.scale_out(2)],
            initial_workers=2,
            total_batch_size=64,
            scaling_policy=StrongScalingPolicy(),
            seed=4,
        )
        plan = runtime.history[0]
        assert plan.total_batch_size == 64
        assert plan.per_worker_batch == 16
        assert plan.strategy == "strong"

    def test_weak_scaling_grows_batch_and_ramps_lr(self, dataset):
        runtime = run_elastic(
            dataset,
            [lambda rt: rt.scale_out(2)],
            initial_workers=2,
            total_batch_size=64,
            base_lr=0.02,
            scaling_policy=WeakScalingPolicy(ramp_iterations=5),
            seed=5,
        )
        plan = runtime.history[0]
        assert plan.total_batch_size == 128
        assert plan.lr_ramp is not None
        assert plan.lr_ramp.target_lr == pytest.approx(0.04)
        # The ramp completed: the live learning rate reached the target.
        context = runtime.final_contexts()[0]
        assert context.runtime_info.learning_rate == pytest.approx(0.04)


class TestScaleIn:
    def test_group_shrinks(self, dataset):
        runtime = run_elastic(
            dataset,
            [lambda rt: rt.scale_in(1)],
            initial_workers=3,
            total_batch_size=48,
            seed=6,
        )
        assert len(runtime.am.group) == 2
        assert params_consistent(runtime.final_contexts())

    def test_removed_worker_thread_exits(self, dataset):
        runtime = run_elastic(
            dataset,
            [lambda rt: rt.scale_in(worker_ids=["w0"])],
            initial_workers=3,
            total_batch_size=48,
            seed=7,
        )
        assert "w0" not in runtime.am.group
        thread = runtime._workers["w0"].thread
        thread.join(timeout=5)
        assert not thread.is_alive()


class TestMigration:
    def test_whole_job_moves(self, dataset):
        runtime = run_elastic(
            dataset,
            [lambda rt: rt.migrate()],
            initial_workers=2,
            total_batch_size=64,
            seed=8,
        )
        assert runtime.am.group == ("w2", "w3")
        contexts = runtime.final_contexts()
        assert [c.worker_id for c in contexts] == ["w2", "w3"]
        assert params_consistent(contexts)

    def test_migrated_job_keeps_learning(self, dataset):
        runtime = run_elastic(
            dataset,
            [lambda rt: rt.migrate()],
            initial_workers=2,
            total_batch_size=64,
            seed=9,
        )
        # Iterations continued past the migration commit.
        assert (
            runtime.snapshot()["iteration"]
            > runtime.history[0].commit_iteration + 3
        )


class TestDataConsistencyAndEquivalence:
    def test_elastic_run_matches_serial_trajectory_before_adjustment(self, dataset):
        """Until the first adjustment, the elastic job's parameters equal a
        plain single-process run with the same total batch — data-parallel
        + serial loading is exactly-once and deterministic."""
        runtime = ElasticRuntime(
            dataset, initial_workers=4, total_batch_size=64,
            base_lr=0.05, seed=10,
        )
        runtime.start()
        assert runtime.wait_until_iteration(12)
        runtime.stop()
        contexts = runtime.final_contexts()
        iterations = contexts[0].runtime_info.iteration
        reference = train_single(
            dataset, 64, epochs=100, base_lr=0.05, lr_scaling="fixed", seed=10
        )
        # Compare at the elastic run's stop point by replaying.
        from repro.training import (
            MomentumSGD, SerialLoader, init_mlp, loss_and_gradients,
        )
        params = init_mlp(dataset.input_dim, 32, dataset.num_classes, seed=10)
        optimizer = MomentumSGD(lr=0.05)
        loader = SerialLoader(dataset.train_size, seed=10)
        for _ in range(iterations):
            (indices,) = loader.next_iteration(1, 64)
            if len(indices) == 0:
                continue
            _loss, grads = loss_and_gradients(
                params, dataset.train_x[indices], dataset.train_y[indices]
            )
            optimizer.step(params, grads)
        for name in params:
            assert np.allclose(
                params[name], contexts[0].params[name], atol=1e-10
            )

    def test_serial_loader_positions_agree_after_adjustment(self, dataset):
        runtime = run_elastic(
            dataset,
            [lambda rt: rt.scale_out(2)],
            initial_workers=2,
            total_batch_size=64,
            seed=11,
        )
        positions = {
            c.loader.state_dict()["position"] for c in runtime.final_contexts()
        }
        epochs = {c.loader.epoch for c in runtime.final_contexts()}
        assert len(positions) == 1
        assert len(epochs) == 1

    def test_multiple_adjustments_in_sequence(self, dataset):
        runtime = run_elastic(
            dataset,
            [
                lambda rt: rt.scale_out(2),
                lambda rt: rt.scale_in(1),
                lambda rt: rt.migrate(),
            ],
            initial_workers=2,
            total_batch_size=64,
            seed=12,
        )
        assert runtime.am.adjustments_committed == 3
        assert params_consistent(runtime.final_contexts())

    def test_concurrent_adjustment_rejected(self, dataset):
        runtime = ElasticRuntime(
            dataset, initial_workers=2, total_batch_size=64,
            startup_delay=0.5, seed=13,
        )
        runtime.start()
        runtime.scale_out(1)
        with pytest.raises(RuntimeError):
            runtime.scale_out(1)
        runtime.wait_for_adjustments(1, timeout=10)
        runtime.stop()


class TestHooksInRuntime:
    def test_user_hook_state_replicated_to_new_workers(self, dataset):
        """RegisterHook (Table III): custom state reaches new workers."""
        runtime = ElasticRuntime(
            dataset, initial_workers=2, total_batch_size=64, seed=14
        )
        marker = {"token": "user-state-123"}
        runtime.register_hook(Hook(
            name="user",
            capture=lambda ctx: dict(marker),
            restore=lambda ctx, s: setattr(ctx, "user_state", s),
        ))
        runtime.start()
        runtime.wait_until_iteration(3)
        runtime.scale_out(1)
        assert runtime.wait_for_adjustments(1)
        runtime.stop()
        new_context = runtime._workers["w2"].context
        assert new_context.user_state == marker


class TestTopologyIntegration:
    def test_replication_plan_recorded_with_cluster(self, dataset):
        cluster = build_cluster(1)
        runtime = run_elastic(
            dataset,
            [lambda rt: rt.scale_out(2)],
            initial_workers=2,
            total_batch_size=64,
            cluster=cluster,
            seed=15,
        )
        plan = runtime.history[0].replication_plan
        assert plan is not None
        assert len(plan.transfers) == 2
        # Workers packed in tree order: w2/w3 sit near w0/w1.
        assert all(t.level.name in ("L1", "L2") for t in plan.transfers)

    def test_gpus_released_on_scale_in(self, dataset):
        cluster = build_cluster(1)
        runtime = run_elastic(
            dataset,
            [lambda rt: rt.scale_in(2)],
            initial_workers=4,
            total_batch_size=64,
            cluster=cluster,
            seed=16,
        )
        assert len(runtime._free_gpus) == 6


class TestStopProtocol:
    def test_stop_before_any_adjustment(self, dataset):
        runtime = ElasticRuntime(dataset, initial_workers=3,
                                 total_batch_size=48, seed=17)
        runtime.start()
        runtime.wait_until_iteration(5)
        runtime.stop()
        for worker in runtime._workers.values():
            assert not worker.thread.is_alive()

    def test_stop_cancels_pending_adjustment(self, dataset):
        runtime = ElasticRuntime(
            dataset, initial_workers=2, total_batch_size=64,
            startup_delay=2.0, seed=18,
        )
        runtime.start()
        runtime.wait_until_iteration(3)
        runtime.scale_out(1)
        runtime.stop()
        assert runtime.am.adjustments_committed == 0

    def test_all_workers_stop_at_same_iteration(self, dataset):
        runtime = ElasticRuntime(dataset, initial_workers=4,
                                 total_batch_size=64, seed=19)
        runtime.start()
        runtime.wait_until_iteration(10)
        runtime.stop()
        iterations = {
            c.runtime_info.iteration for c in runtime.final_contexts()
        }
        assert len(iterations) == 1


class TestStopRacingCommit:
    """Regression: generation adoption must precede the stop logic.

    When stop() races a freshly committed adjustment, a worker that has
    not yet adopted the new plan must adopt (or exit, if removed) before
    consulting the stop state — otherwise it re-enters the abandoned
    collective and hangs until the allreduce timeout.
    """

    def test_stop_immediately_after_commit_never_strands(self, dataset):
        import time as _time

        for attempt in range(6):
            runtime = ElasticRuntime(
                dataset, initial_workers=2, total_batch_size=32,
                seed=100 + attempt,
            )
            runtime.start()
            assert runtime.wait_until_iteration(4)
            runtime.scale_in(1)
            assert runtime.wait_for_adjustments(1, timeout=10)
            started = _time.monotonic()
            runtime.stop(timeout=10)
            assert _time.monotonic() - started < 5.0, (
                f"attempt {attempt}: stop stalled"
            )
            for worker in runtime._workers.values():
                assert not worker.thread.is_alive()
