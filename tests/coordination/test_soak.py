"""Soak test: a burst of randomized adjustments against one live job.

Stresses the protocol end to end — scale-outs, scale-ins and migrations
in random order with no settling time beyond commit completion — and
verifies the core invariants after every single commit: replica
consistency, group algebra, loader agreement and monotone progress.
"""

import numpy as np
import pytest

from repro.coordination import ElasticRuntime, params_consistent
from repro.core import WeakScalingPolicy
from repro.training import make_classification


@pytest.mark.parametrize("seed", [0, 1])
def test_adjustment_soak(seed):
    dataset = make_classification(train_size=1024, test_size=128, seed=91)
    runtime = ElasticRuntime(
        dataset, initial_workers=2, total_batch_size=64, seed=seed,
        scaling_policy=WeakScalingPolicy(ramp_iterations=5),
    )
    runtime.start()
    rng = np.random.default_rng(seed)
    committed = 0
    for _step in range(10):
        assert runtime.wait_until_iteration(
            runtime.snapshot()["iteration"] + 2, timeout=30
        ), "training stalled mid-soak"
        group_size = len(runtime.am.group)
        choice = rng.integers(0, 3)
        if choice == 0 and group_size < 8:
            runtime.scale_out(int(rng.integers(1, 3)))
        elif choice == 1 and group_size > 1:
            runtime.scale_in(1)
        else:
            runtime.migrate()
        committed += 1
        assert runtime.wait_for_adjustments(committed, timeout=30), (
            f"adjustment {committed} never committed"
        )
        plan = runtime.history[-1]
        # Invariants checked after EVERY commit:
        assert plan.commit_iteration % runtime.coordination_interval == 0
        assert len(plan.group) >= 1
        assert plan.total_batch_size >= len(plan.group)
        assert set(plan.group) == set(runtime.am.group)
    runtime.stop()

    contexts = runtime.final_contexts()
    assert params_consistent(contexts)
    iterations = {c.runtime_info.iteration for c in contexts}
    positions = {c.loader.state_dict()["position"] for c in contexts}
    assert len(iterations) == 1
    assert len(positions) == 1
    assert runtime.am.adjustments_committed == 10
    # Every thread wound down (no leaks from the churn).
    for worker in runtime._workers.values():
        if worker.thread is not None:
            assert not worker.thread.is_alive()
