"""The ring gradient plane: layout, bit-identity, degradation, e2e.

Three layers of coverage:

* pure geometry — partitions/buckets are an exact, element-aligned,
  deterministic cover of the flattened parameter space;
* the collective — N distributed :class:`RingNode`\\ s over real peer
  links (in-memory and loopback TCP) produce means *bit-identical* to
  :func:`ring_reference_average`, which is what the AM serves on the
  star path, so the two planes can never diverge;
* elastic jobs — ring-enabled jobs (including scale-up chaos and forced
  ring aborts) finish with identical digests while the AM stays out of
  the steady-state gradient path.
"""

import threading
import time

import numpy as np
import pytest

from repro.coordination.faults import FaultPlan
from repro.coordination.messages import MessageType
from repro.net import (
    JobSpec,
    MemoryPeerHost,
    NetworkedApplicationMaster,
    RingDegraded,
    RingLayout,
    RingMailbox,
    RingNode,
    TcpPeerHost,
    WorkerAgent,
    memory_link,
    ring_reference_average,
    tcp_link,
)
from repro.net.collective import Slice, bucketize, partition_layout
from repro.net.transport import ServerCore


def random_grads(seed, shapes=None, dtype=np.float64):
    rng = np.random.default_rng(seed)
    shapes = shapes or {"w1": (7, 5), "b1": (5,), "w2": (5, 3), "b2": (3,)}
    return {
        name: rng.standard_normal(shape).astype(dtype)
        for name, shape in shapes.items()
    }


class TestLayout:
    def test_partitions_cover_every_element_exactly_once(self):
        items = [("a", 13, 8), ("b", 1, 8), ("c", 29, 4), ("d", 3, 8)]
        for parts in (1, 2, 3, 5, 8):
            partitions = partition_layout(items, parts)
            assert len(partitions) == parts
            seen = {name: [] for name, _, _ in items}
            for slices in partitions:
                for piece in slices:
                    seen[piece.name].append((piece.start, piece.stop))
            for name, elements, _ in items:
                ranges = sorted(seen[name])
                covered = 0
                for start, stop in ranges:
                    assert start == covered, (name, ranges)
                    covered = stop
                assert covered == elements, (name, ranges)

    def test_partitions_are_byte_balanced(self):
        items = [("a", 1000, 4), ("b", 1000, 8)]
        total = sum(e * i for _, e, i in items)
        parts = 4
        partitions = partition_layout(items, parts)
        sizes = [
            sum(
                piece.elements * next(i for n, _, i in items if n == piece.name)
                for piece in slices
            )
            for slices in partitions
        ]
        assert sum(sizes) == total
        # Element alignment can shift at most one element per boundary.
        assert max(sizes) - min(sizes) <= 2 * 8

    def test_empty_and_degenerate_layouts(self):
        assert partition_layout([], 3) == [[], [], []]
        assert partition_layout([("a", 0, 8)], 2) == [[], []]

    def test_bucketize_respects_budget_and_preserves_elements(self):
        slices = [Slice("a", 0, 100), Slice("b", 0, 7)]
        itemsizes = {"a": 8, "b": 8}
        buckets = bucketize(slices, itemsizes, bucket_bytes=64)
        for bucket in buckets:
            nbytes = sum(p.elements * itemsizes[p.name] for p in bucket)
            assert nbytes <= 64
        flat = [(p.name, p.start, p.stop) for b in buckets for p in b]
        covered = {"a": 0, "b": 0}
        for name, start, stop in flat:
            assert start == covered[name]
            covered[name] = stop
        assert covered == {"a": 100, "b": 7}

    def test_bucketize_huge_element_still_travels(self):
        buckets = bucketize([Slice("a", 0, 3)], {"a": 1024}, bucket_bytes=16)
        assert [len(b) for b in buckets] == [1, 1, 1]

    def test_views_are_zero_copy(self):
        grads = random_grads(0)
        layout = RingLayout(grads, members=2)
        bucket = layout.buckets[0][0]
        views = layout.views(grads, bucket)
        views[0][0] = 123.0
        name = bucket[0].name
        assert RingLayout.flat(grads[name])[bucket[0].start] == 123.0

    def test_layout_is_deterministic_across_instances(self):
        a = RingLayout(random_grads(1), members=3, bucket_bytes=128)
        b = RingLayout(random_grads(2), members=3, bucket_bytes=128)
        assert a.partitions == b.partitions
        assert a.buckets == b.buckets


class TestReferenceAverage:
    def test_matches_naive_mean_numerically(self):
        contributions = [random_grads(seed) for seed in range(4)]
        reference = ring_reference_average(contributions)
        for name in contributions[0]:
            naive = sum(c[name] for c in contributions) / 4
            assert np.allclose(reference[name], naive, atol=1e-12)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ring_reference_average([])

    def test_single_member_is_identity_divided_by_one(self):
        grads = random_grads(3)
        reference = ring_reference_average([grads])
        for name in grads:
            assert np.array_equal(reference[name], grads[name])

    def test_association_order_is_the_ring_arc(self):
        # Partition p's arc must start at rank p: with values chosen to
        # expose float non-associativity, the reference must equal the
        # hand-computed arc, not any other association.
        a = {"x": np.array([1e16, 1e16])}
        b = {"x": np.array([1.0, 1.0])}
        c = {"x": np.array([-1e16, -1e16])}
        reference = ring_reference_average([a, b, c])
        layout = RingLayout(a, 3, bucket_bytes=2**62)
        expected = np.empty(2)
        order = [a, b, c]
        for part, slices in enumerate(layout.partitions):
            for piece in slices:
                acc = np.array(order[part]["x"][piece.start:piece.stop])
                for hop in (1, 2):
                    acc = np.add(
                        acc, order[(part + hop) % 3]["x"][piece.start:piece.stop]
                    )
                expected[piece.start:piece.stop] = np.true_divide(acc, 3)
        assert np.array_equal(reference["x"], expected)


class Mesh:
    """N ring nodes over real peer links (no AM involved)."""

    def __init__(self, transport, workers, fault_plans=None, **node_kwargs):
        self.host = (
            TcpPeerHost() if transport == "tcp" else MemoryPeerHost()
        )
        fault_plans = fault_plans or {}
        self.nodes = {}
        addrs = {}
        cores = {}
        for worker in workers:
            mailbox = RingMailbox()
            core = ServerCore(mailbox.handle, node_id=f"{worker}/peer")
            cores[worker] = core
            addrs[worker] = self.host.serve(core, worker)
            plan = fault_plans.get(worker)
            connect = (
                lambda addr, w=worker, p=plan: self.host.connect(
                    addr, node_id=w, fault_plan=p, ack_timeout=0.2,
                )
            )
            self.nodes[worker] = RingNode(
                worker, mailbox, connect, **node_kwargs
            )
        self.cores = cores
        ring = {
            "epoch": 0, "order": list(workers), "peers": addrs,
            "active_from": 0,
        }
        for node in self.nodes.values():
            node.install(ring)

    def allreduce_all(self, grads_by_worker, iteration=0):
        results, errors = {}, {}

        def run(worker):
            try:
                results[worker] = self.nodes[worker].allreduce(
                    0, iteration, grads_by_worker[worker]
                )
            except Exception as exc:
                errors[worker] = exc

        threads = [
            threading.Thread(target=run, args=(w,), daemon=True)
            for w in self.nodes
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert all(not t.is_alive() for t in threads), "ring hung"
        return results, errors

    def close(self):
        for node in self.nodes.values():
            node.close()
        self.host.close()


@pytest.fixture(params=["memory", "tcp"])
def transport(request):
    return request.param


class TestDistributedRing:
    def test_bit_identical_to_reference_average(self, transport):
        """The acceptance criterion: every rank's distributed mean is
        bit-for-bit the reference the AM's star path serves."""
        workers = ["w0", "w1", "w2"]
        grads = {w: random_grads(i) for i, w in enumerate(workers)}
        mesh = Mesh(transport, workers, bucket_bytes=256, step_timeout=10.0)
        try:
            results, errors = mesh.allreduce_all(grads)
        finally:
            mesh.close()
        assert not errors, errors
        reference = ring_reference_average([grads[w] for w in workers])
        for worker in workers:
            for name in reference:
                assert results[worker][name].tobytes() == (
                    reference[name].tobytes()
                ), (worker, name)

    def test_two_members_and_many_buckets(self, transport):
        workers = ["a", "b"]
        shapes = {"big": (900,), "small": (3,)}
        grads = {
            w: random_grads(i, shapes=shapes) for i, w in enumerate(workers)
        }
        mesh = Mesh(
            transport, workers, bucket_bytes=128, window=2,
            step_timeout=10.0,
        )
        try:
            results, errors = mesh.allreduce_all(grads)
        finally:
            mesh.close()
        assert not errors
        reference = ring_reference_average([grads[w] for w in workers])
        for worker in workers:
            for name in reference:
                assert np.array_equal(results[worker][name], reference[name])

    def test_pristine_inputs_survive_the_collective(self, transport):
        workers = ["a", "b"]
        grads = {w: random_grads(i) for i, w in enumerate(workers)}
        originals = {
            w: {n: a.copy() for n, a in g.items()}
            for w, g in grads.items()
        }
        mesh = Mesh(transport, workers, step_timeout=10.0)
        try:
            results, errors = mesh.allreduce_all(grads)
        finally:
            mesh.close()
        assert not errors
        # The star fallback depends on the caller's grads being intact.
        for worker in workers:
            for name in originals[worker]:
                assert np.array_equal(
                    grads[worker][name], originals[worker][name]
                )
                assert not np.array_equal(
                    results[worker][name], originals[worker][name]
                )

    def test_chaos_on_peer_links_still_bit_identical(self, transport):
        """Drops + duplicates + a connection reset on one member's peer
        links: the reliable-link recipe absorbs all of it."""
        workers = ["w0", "w1", "w2"]
        grads = {w: random_grads(10 + i) for i, w in enumerate(workers)}
        plans = {"w1": FaultPlan(drop_every=5, duplicate_every=3,
                                 connection_resets=(4,))}
        mesh = Mesh(
            transport, workers, fault_plans=plans, bucket_bytes=256,
            step_timeout=10.0,
        )
        try:
            results, errors = mesh.allreduce_all(grads)
        finally:
            mesh.close()
        assert not errors, errors
        reference = ring_reference_average([grads[w] for w in workers])
        for worker in workers:
            for name in reference:
                assert np.array_equal(results[worker][name], reference[name])
        # Exactly-once on the peer plane: every segment executed once
        # per (sender, type) despite the duplicates.
        duplicates = sum(c.duplicates for c in mesh.cores.values())
        assert duplicates > 0


class TestDegradation:
    def test_injected_failure_degrades_and_peers_observe_it(self):
        workers = ["w0", "w1"]
        grads = {w: random_grads(i) for i, w in enumerate(workers)}
        mesh = Mesh(
            "memory", workers, step_timeout=0.3,
        )
        mesh.nodes["w0"].fail_at = frozenset({0})
        try:
            results, errors = mesh.allreduce_all(grads)
            assert isinstance(errors.get("w0"), RingDegraded)
            # w1 cannot finish either (its only peer aborted) and its
            # mark is terminal: both probes converge on "degraded".
            assert isinstance(errors.get("w1"), RingDegraded)
            for observer, observed in (("w0", "w1"), ("w1", "w0")):
                reply = mesh.nodes[observer].fetch_peer_state(
                    observed, 0, 0
                )
                assert reply["state"] == "degraded"
        finally:
            mesh.close()

    def test_completed_peer_serves_cached_mean(self):
        workers = ["w0", "w1"]
        grads = {w: random_grads(i) for i, w in enumerate(workers)}
        mesh = Mesh("memory", workers, step_timeout=10.0)
        try:
            results, errors = mesh.allreduce_all(grads)
            assert not errors
            reply = mesh.nodes["w0"].fetch_peer_state("w1", 0, 0)
            assert reply["state"] == "done"
            for name in results["w1"]:
                assert np.array_equal(reply["grads"][name],
                                      results["w1"][name])
        finally:
            mesh.close()

    def test_strikes_deactivate_the_ring(self):
        mailbox = RingMailbox()
        node = RingNode("w0", mailbox, connect=lambda addr: None,
                        step_timeout=0.01)
        node.install({"epoch": 0, "order": ["w0", "w1"],
                      "peers": {"w0": "mem://w0", "w1": "mem://w1"},
                      "active_from": 0})
        node.fail_at = frozenset(range(100))
        grads = random_grads(0)
        from repro.net.collective import MAX_RING_STRIKES

        for iteration in range(MAX_RING_STRIKES):
            assert node.active(0, iteration)
            with pytest.raises(RingDegraded):
                node.allreduce(0, iteration, grads)
        assert not node.active(0, MAX_RING_STRIKES)
        # A fresh install (new adjustment) re-arms it.
        node.install({"epoch": 1, "order": ["w0", "w1"],
                      "peers": {"w0": "mem://w0", "w1": "mem://w1"},
                      "active_from": 0})
        assert node.active(1, 0)

    def test_activation_gates(self):
        mailbox = RingMailbox()
        node = RingNode("w0", mailbox, connect=lambda addr: None)
        assert not node.active(0, 0)  # nothing installed
        node.install({"epoch": 2, "order": ["w0", "w1"],
                      "peers": {"w0": "a", "w1": "b"}, "active_from": 9})
        assert not node.active(1, 9)   # wrong generation
        assert not node.active(2, 8)   # before activation boundary
        assert node.active(2, 9)
        node.install({"epoch": 2, "order": ["w0"], "peers": {"w0": "a"},
                      "active_from": 9})
        assert not node.active(2, 9)   # singleton ring is pointless
        node.install({"epoch": 2, "order": ["w1", "w2"],
                      "peers": {"w1": "a", "w2": "b"}, "active_from": 9})
        assert not node.active(2, 9)   # not a member


class RingHarness:
    """Elastic-job harness with a live peer mesh (threads, both planes)."""

    def __init__(self, transport, spec, initial_workers):
        self.transport = transport
        self.spec = spec
        self.master = NetworkedApplicationMaster(spec, initial_workers)
        self.server = (
            self.master.serve_tcp() if transport == "tcp" else None
        )
        self.mesh = (
            TcpPeerHost() if transport == "tcp" else MemoryPeerHost()
        )
        self.results = {}
        self.errors = {}
        self.threads = {}
        self.agents = {}

    def link(self, node_id, fault_plan=None, ack_timeout=0.5):
        if self.transport == "tcp":
            link, _transport = tcp_link(
                self.server.host, self.server.port, node_id,
                fault_plan=fault_plan, ack_timeout=ack_timeout,
                heartbeat_interval=0.2,
            )
            return link
        return memory_link(
            self.master.core, node_id, fault_plan=fault_plan,
            ack_timeout=ack_timeout,
        )

    def start_worker(
        self, worker_id, fault_plan=None, peer_fault_plan=None,
        ring_fail_at=(),
    ):
        def run():
            link = self.link(worker_id, fault_plan=fault_plan)
            agent = WorkerAgent(
                worker_id, link, poll_interval=0.02,
                peer_host=self.mesh, peer_fault_plan=peer_fault_plan,
                ring_fail_at=ring_fail_at,
            )
            self.agents[worker_id] = agent
            try:
                self.results[worker_id] = agent.run()
            except Exception as exc:  # surfaced by the test body
                self.errors[worker_id] = exc
            finally:
                link.close()

        thread = threading.Thread(target=run, daemon=True)
        self.threads[worker_id] = thread
        thread.start()

    def join_all(self, timeout=90.0):
        deadline = time.monotonic() + timeout
        for thread in self.threads.values():
            thread.join(timeout=max(0.1, deadline - time.monotonic()))
        assert not self.errors, self.errors
        assert all(not t.is_alive() for t in self.threads.values()), (
            "workers still running"
        )

    def close(self):
        self.master.close()
        self.mesh.close()


class TestRingJobs:
    def test_steady_state_takes_the_am_out_of_the_gradient_path(
        self, transport
    ):
        spec = JobSpec(
            iterations=12, coordination_interval=4,
            ring_step_timeout=10.0,
        )
        harness = RingHarness(transport, spec, ["w0", "w1", "w2"])
        try:
            for worker in ("w0", "w1", "w2"):
                harness.start_worker(worker)
            harness.join_all()
            status = harness.master.status()
            assert status["complete"]
            assert len(set(status["digests"].values())) == 1
            # The ring activates at the first coordination boundary;
            # after that the only SYNC reaching the AM is the final
            # iteration's closing barrier.
            core = harness.master.core
            for worker in ("w0", "w1", "w2"):
                assert core.executions[(worker, "sync")] == 5
                assert harness.results[worker]["ring_iterations"] == 7
                assert harness.results[worker]["star_iterations"] == 5
            snap = harness.master.metrics.snapshot()
            assert snap.get("net.sync.ring_fallbacks", 0) == 0
        finally:
            harness.close()

    def test_scale_up_chaos_with_ring_and_forced_abort(self, transport):
        """The full gauntlet: AM-link chaos on one worker, peer-link
        chaos on another, one deterministically aborted ring iteration,
        and a mid-training scale-up — all replicas still bit-identical
        and the degraded iteration recovered exactly-once."""
        spec = JobSpec(
            iterations=20, coordination_interval=4, iteration_sleep=0.01,
            allreduce_timeout=10.0, sync_ack_timeout=1.0,
            chunk_bytes=1024, ring_step_timeout=1.0,
        )
        harness = RingHarness(transport, spec, ["w0", "w1"])
        try:
            harness.start_worker(
                "w0", fault_plan=FaultPlan(drop_every=9,
                                           connection_resets=(5, 17)),
                # Abort w0's ring at iteration 6: peers time out, all
                # degrade, and the iteration retries through the star.
                ring_fail_at=(6,),
            )
            harness.start_worker(
                "w1",
                peer_fault_plan=FaultPlan(drop_every=7, duplicate_every=5,
                                          connection_resets=(9,)),
            )
            driver = harness.link("driver", ack_timeout=2.0)
            deadline = time.monotonic() + 30.0
            while True:
                status = driver.request(MessageType.STATUS)
                if status["iteration"] >= 8:
                    break
                assert time.monotonic() < deadline, status
                time.sleep(0.02)
            reply = driver.request(
                MessageType.ADJUSTMENT_REQUEST,
                {"kind": "scale_out", "add": ["w2", "w3"]},
            )
            assert reply["accepted"] is True
            harness.start_worker("w2")
            harness.start_worker("w3")
            harness.join_all()

            status = driver.request(MessageType.STATUS)
            assert status["adjustments_committed"] == 1
            assert status["complete"]
            assert len(set(status["digests"].values())) == 1
            # The forced abort at iteration 6 went through the recovery
            # protocol: either a peer served its cached mean or the
            # whole group fell back to the star — exactly once.
            recovered = sum(
                r["ring_repairs"] + r["ring_fallbacks"]
                for r in harness.results.values()
            )
            assert recovered >= 1
            # Ring iterations actually happened on every survivor.
            for worker in ("w0", "w1"):
                assert harness.results[worker]["ring_iterations"] > 0
            driver.close()
        finally:
            harness.close()

    def test_star_only_job_when_ring_disabled(self, transport):
        spec = JobSpec(iterations=8, coordination_interval=4,
                       ring_enabled=False)
        harness = RingHarness(transport, spec, ["w0", "w1"])
        try:
            harness.start_worker("w0")
            harness.start_worker("w1")
            harness.join_all()
            status = harness.master.status()
            assert status["complete"]
            assert len(set(status["digests"].values())) == 1
            core = harness.master.core
            for worker in ("w0", "w1"):
                assert core.executions[(worker, "sync")] == 8
                assert harness.results[worker]["ring_iterations"] == 0
        finally:
            harness.close()


class TestMasterRingPlumbing:
    def test_sync_rejects_superseded_generation(self):
        spec = JobSpec(iterations=8)
        net = NetworkedApplicationMaster(spec, ["w0"])
        net._generation = 2
        net._groups[2] = ("w0",)
        with pytest.raises(KeyError, match="superseded"):
            net._handle_sync("w0", {"generation": 1, "iteration": 3,
                                    "grads": None})

    def test_superseded_barriers_dropped_with_error(self):
        from repro.net.master_service import _SyncBarrier

        spec = JobSpec(iterations=64)
        net = NetworkedApplicationMaster(spec, ["w0", "w1"])
        barrier = net._barriers[(0, 7)] = _SyncBarrier(("w0", "w1"))
        net._generation = 1
        net._drop_superseded_barriers()
        assert (0, 7) not in net._barriers
        assert barrier.event.is_set()
        assert "superseded" in barrier.result["__error__"]

    def test_ring_payload_requires_addresses_and_two_members(self):
        spec = JobSpec(iterations=8)
        net = NetworkedApplicationMaster(spec, ["w0", "w1"])
        assert net._ring_payload(0, ("w0", "w1"), active_from=4) is None
        net._peer_addrs["w0"] = "mem://w0"
        assert net._ring_payload(0, ("w0", "w1"), active_from=4) is None
        net._peer_addrs["w1"] = "mem://w1"
        ring = net._ring_payload(0, ("w0", "w1"), active_from=4)
        assert ring == {
            "epoch": 0, "order": ["w0", "w1"],
            "peers": {"w0": "mem://w0", "w1": "mem://w1"},
            "active_from": 4,
        }
        assert net._ring_payload(0, ("w0",), active_from=4) is None
        off = JobSpec(iterations=8, ring_enabled=False)
        star = NetworkedApplicationMaster(off, ["w0", "w1"])
        star._peer_addrs.update(net._peer_addrs)
        assert star._ring_payload(0, ("w0", "w1"), active_from=4) is None

    def test_reply_wait_derives_from_allreduce_timeout(self):
        assert JobSpec(allreduce_timeout=3.0).reply_wait == 8.0
        assert JobSpec().reply_wait == JobSpec().allreduce_timeout + 5.0

    def test_sync_boundary_filters_empty_grads_and_zero_fills_for_ring(
        self
    ):
        """``None``/empty contributions never reach the averaging math;
        on a ring-enabled job absent members become explicit zeros so
        the divisor stays the member count."""
        spec = JobSpec(iterations=8)
        net = NetworkedApplicationMaster(spec, ["w0", "w1"])
        g = {"x": np.array([2.0, 4.0])}
        done = []

        def sync(worker, grads):
            done.append(net._handle_sync(worker, {
                "generation": 0, "iteration": 0, "grads": grads,
            }))

        t = threading.Thread(target=sync, args=("w0", g), daemon=True)
        t.start()
        sync("w1", None)
        t.join(timeout=10.0)
        assert len(done) == 2
        for result in done:
            assert result["members"] == 2
            # (g + zeros) / 2 — the absent member still divides.
            assert np.array_equal(result["grads"]["x"],
                                  np.array([1.0, 2.0]))

    def test_sync_all_empty_returns_none(self):
        spec = JobSpec(iterations=8)
        net = NetworkedApplicationMaster(spec, ["w0"])
        result = net._handle_sync(
            "w0", {"generation": 0, "iteration": 0, "grads": None}
        )
        assert result == {"grads": None, "members": 1}
