"""Live worker→AM telemetry shipping: delta cursor, backpressure,
failover resync, and the end-to-end fleet view over both transports."""

import threading
import time

import pytest

from repro.net import (
    JobSpec,
    NetworkedApplicationMaster,
    TelemetryShipper,
    WorkerAgent,
    memory_link,
    tcp_link,
)
from repro.observability import MetricRegistry, Tracer, validate_events


def make_master(**overrides):
    spec = JobSpec(
        iterations=8, coordination_interval=4, iteration_sleep=0.0,
        ring_enabled=False, **overrides,
    )
    return NetworkedApplicationMaster(spec, ["w0"])


def make_shipper(master, tracer=None, metrics=None, traced_link=False,
                 **kwargs):
    # A traced link feeds the worker's own tracer while shipping (the
    # flush test's whole point); the cursor tests keep the link silent.
    link = memory_link(
        master.core, "w0", tracer=tracer if traced_link else None
    )
    kwargs.setdefault("interval", 60.0)  # manual ships only
    shipper = TelemetryShipper(
        link, "w0", job="j1", tracer=tracer, metrics=metrics, **kwargs
    )
    return link, shipper


class TestShipOnce:
    def test_first_ship_is_a_full_snapshot(self):
        master = make_master()
        tracer = Tracer(process="w0")
        metrics = MetricRegistry()
        metrics.counter("worker.iterations").inc(3)
        tracer.add_span("worker.iteration", 0.0, 1.0, track="w0")
        link, shipper = make_shipper(master, tracer, metrics)
        try:
            assert shipper.ship_once()
            assert shipper.ships == 1
            assert master.fleet.workers() == ["w0"]
            events = master.fleet.worker_events("w0")
            assert [e["name"] for e in events] == ["worker.iteration"]
            held = master.fleet.worker_metrics("w0")
            restored = MetricRegistry.from_json(held).snapshot()
            assert restored["worker.iterations"] == 3
            assert master.fleet.jobs() == {"j1": ["w0"]}
        finally:
            link.close()
            master.close()

    def test_deltas_only_ship_new_events(self):
        master = make_master()
        tracer = Tracer(process="w0")
        link, shipper = make_shipper(master, tracer)
        try:
            tracer.add_instant("a", 0.0, track="w0")
            assert shipper.ship_once()
            first = shipper.events_shipped
            tracer.add_instant("b", 1.0, track="w0")
            assert shipper.ship_once()
            assert shipper.events_shipped == first + 1
            names = [e["name"] for e in master.fleet.worker_events("w0")]
            assert names == ["a", "b"]
        finally:
            link.close()
            master.close()

    def test_failed_ship_keeps_the_cursor(self):
        """A fenced AM mid-failover must not lose events: the cursor
        stays put and the next tick re-ships the same delta."""
        master = make_master()
        tracer = Tracer(process="w0")
        tracer.add_instant("a", 0.0, track="w0")
        link, shipper = make_shipper(master, tracer)
        try:
            master.abandon()  # every request now gets am_superseded
            assert not shipper.ship_once()
            assert shipper.failures == 1
            assert shipper.ships == 0
            assert shipper._start == 0 and shipper._full
        finally:
            link.close()
            master.close()

    def test_backpressure_sheds_oldest_and_ships_full(self):
        master = make_master()
        tracer = Tracer(process="w0")
        for i in range(100):
            tracer.add_instant(f"e{i}", float(i), track="w0")
        link, shipper = make_shipper(master, tracer, backlog=10)
        try:
            # Stale partial view that the post-shed full ship must
            # replace, not merge with.
            shipper._full = False
            master.fleet.ingest({
                "worker": "w0", "job": "j1", "full": True, "start": 0,
                "events": [{"idx": 0, "name": "stale", "ph": "i", "s": "t",
                            "ts": 0.0, "pid": 1, "tid": 1, "track": "w0",
                            "args": {}}],
                "metrics": None, "offset": None, "dropped": 0,
            })
            assert shipper.ship_once()
            assert shipper.dropped == 90
            events = master.fleet.worker_events("w0")
            assert len(events) == 10
            assert [e["name"] for e in events] == [
                f"e{i}" for i in range(90, 100)
            ]
            payload = master.fleet.to_payload()
            assert payload["workers"]["w0"]["dropped"] == 90
        finally:
            link.close()
            master.close()


class TestFailoverResync:
    def test_successor_detects_gap_and_recovers_via_full_ship(self):
        """A successor AM holds nothing; the shipper's next delta lands
        mid-stream, provokes ``resync``, and the follow-up ship is a
        full snapshot that rebuilds the fleet view — no agent-side
        coordination needed."""
        master = make_master()
        tracer = Tracer(process="w0")
        for i in range(5):
            tracer.add_instant(f"e{i}", float(i), track="w0")
        link, shipper = make_shipper(master, tracer)
        try:
            assert shipper.ship_once()
            assert len(master.fleet.worker_events("w0")) == 5

            master.abandon()
            successor = NetworkedApplicationMaster.from_journal(
                master.journal
            )
            try:
                link.transport.redirect(successor.core)
                tracer.add_instant("e5", 5.0, track="w0")
                assert shipper.ship_once()  # resync reply, not a failure
                assert shipper._full and shipper._start == 0
                assert shipper.ship_once()  # the demanded full snapshot
                assert len(successor.fleet.worker_events("w0")) == 6
            finally:
                successor.close()
        finally:
            link.close()
            master.close()

    def test_mark_full_forces_a_snapshot(self):
        """The agent's re-enrollment hook: even without a resync reply,
        mark_full() makes the next ship carry everything."""
        master = make_master()
        tracer = Tracer(process="w0")
        tracer.add_instant("a", 0.0, track="w0")
        link, shipper = make_shipper(master, tracer)
        try:
            assert shipper.ship_once()
            master.fleet._workers.clear()  # a successor's empty view
            shipper.mark_full()
            assert shipper.ship_once()
            assert len(master.fleet.worker_events("w0")) == 1
        finally:
            link.close()
            master.close()


class TestFlush:
    def test_flush_terminates_despite_self_recorded_events(self):
        """Shipping over a traced link records new events (net.send
        spans, clock samples) — flush must drain to the high-water mark
        at entry, not chase an empty buffer forever."""
        master = make_master()
        tracer = Tracer(process="w0")
        for i in range(20):
            tracer.add_instant(f"e{i}", float(i), track="w0")
        link, shipper = make_shipper(
            master, tracer, max_events=8, traced_link=True
        )
        try:
            target = len(tracer)
            assert shipper.flush() is True
            held = master.fleet.worker_events("w0")
            assert len([e for e in held if e["name"].startswith("e")]) == 20
            # The link really did feed the tracer while flushing.
            assert len(tracer) > target
        finally:
            link.close()
            master.close()

    def test_flush_gives_up_against_a_dead_am(self):
        master = make_master()
        tracer = Tracer(process="w0")
        tracer.add_instant("a", 0.0, track="w0")
        link, shipper = make_shipper(master, tracer, interval=0.01)
        try:
            master.abandon()
            assert shipper.flush() is False
            assert shipper.failures >= 3
        finally:
            link.close()
            master.close()


class TestShipperThread:
    def test_periodic_thread_ships_and_stops(self):
        master = make_master()
        tracer = Tracer(process="w0")
        tracer.add_instant("a", 0.0, track="w0")
        link, shipper = make_shipper(master, tracer, interval=0.02)
        try:
            shipper.start()
            shipper.start()  # idempotent
            deadline = time.monotonic() + 5.0
            while shipper.ships < 2 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert shipper.ships >= 2
            shipper.stop()
            assert shipper._thread is None
            settled = shipper.ships
            time.sleep(0.08)
            assert shipper.ships == settled  # really stopped
        finally:
            link.close()
            master.close()


class Harness:
    """One job, workers as threads with tracers, per-transport links."""

    def __init__(self, transport, spec, initial_workers):
        self.transport = transport
        self.spec = spec
        self.master = NetworkedApplicationMaster(spec, initial_workers)
        self.server = (
            self.master.serve_tcp() if transport == "tcp" else None
        )
        self.results = {}
        self.errors = {}
        self.threads = {}
        self.agents = {}
        self.tracers = {}

    def start_worker(self, worker_id):
        tracer = Tracer(process=worker_id)
        metrics = MetricRegistry()
        self.tracers[worker_id] = tracer

        def run():
            if self.transport == "tcp":
                link, _ = tcp_link(
                    self.server.host, self.server.port, worker_id,
                    ack_timeout=0.5, heartbeat_interval=0.2,
                    tracer=tracer, metrics=metrics,
                )
            else:
                link = memory_link(
                    self.master.core, worker_id, ack_timeout=0.5,
                    tracer=tracer, metrics=metrics,
                )
            agent = WorkerAgent(
                worker_id, link, poll_interval=0.02,
                tracer=tracer, metrics=metrics,
            )
            self.agents[worker_id] = agent
            try:
                self.results[worker_id] = agent.run()
            except Exception as exc:  # surfaced by the test body
                self.errors[worker_id] = exc
            finally:
                link.close()

        thread = threading.Thread(target=run, daemon=True)
        self.threads[worker_id] = thread
        thread.start()

    def join_all(self, timeout=60.0):
        deadline = time.monotonic() + timeout
        for thread in self.threads.values():
            thread.join(timeout=max(0.1, deadline - time.monotonic()))
        assert not self.errors, self.errors
        assert all(not t.is_alive() for t in self.threads.values())

    def close(self):
        self.master.close()


@pytest.fixture(params=["memory", "tcp"])
def transport(request):
    return request.param


class TestEndToEndFleetView:
    def test_agents_ship_and_the_am_builds_the_fleet_view(self, transport):
        """The spec's telemetry_interval rides the join reply: agents
        auto-start shippers, flush on clean exit, and the AM ends the
        run holding a merged, validate-clean fleet trace plus a live
        goodput report."""
        spec = JobSpec(
            iterations=8, coordination_interval=4, iteration_sleep=0.01,
            telemetry_interval=0.05,
        )
        harness = Harness(transport, spec, ["w0", "w1"])
        try:
            harness.start_worker("w0")
            harness.start_worker("w1")
            harness.join_all()

            fleet = harness.master.fleet
            assert fleet.workers() == ["w0", "w1"]
            for worker in ("w0", "w1"):
                agent = harness.agents[worker]
                assert agent.telemetry is not None
                assert agent.telemetry.ships >= 1
                events = fleet.worker_events(worker)
                iteration_spans = [
                    e for e in events if e["name"] == "worker.iteration"
                ]
                assert len(iteration_spans) == spec.iterations
                restored = MetricRegistry.from_json(
                    fleet.worker_metrics(worker)
                ).snapshot()
                assert restored["telemetry.ships"] >= 1

            merged = fleet.merged_events()
            assert not validate_events(merged)
            named = {
                e["args"]["name"] for e in merged
                if e.get("ph") == "M" and e.get("name") == "process_name"
            }
            assert named == {"w0", "w1"}

            reports = fleet.report(
                am_metrics=harness.master.metrics.snapshot()
            )
            fleet_report = reports["fleet"]
            assert fleet_report.workers == 2
            assert fleet_report.iterations == 2 * spec.iterations
            assert fleet_report.goodput > 0
        finally:
            harness.close()

    def test_shipping_disabled_by_default(self):
        spec = JobSpec(
            iterations=4, coordination_interval=4, iteration_sleep=0.0,
        )
        harness = Harness("memory", spec, ["w0"])
        try:
            harness.start_worker("w0")
            harness.join_all(timeout=30.0)
            assert harness.agents["w0"].telemetry is None
            assert len(harness.master.fleet) == 0
        finally:
            harness.close()
