"""Wire-format tests: framing, codecs, envelopes, handshake."""

import io
import socket
import threading

import numpy as np
import pytest

from repro.coordination.messages import MessageFactory, MessageType
from repro.net import wire


def socket_pair():
    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server.bind(("127.0.0.1", 0))
    server.listen(1)
    client = socket.create_connection(server.getsockname())
    accepted, _ = server.accept()
    server.close()
    return client, accepted


class TestFraming:
    def test_round_trip_over_socket(self):
        client, accepted = socket_pair()
        try:
            frame = {"kind": "msg", "data": [1, 2, 3], "nested": {"x": "y"}}
            wire.write_frame(client, frame)
            assert wire.read_frame(accepted) == frame
        finally:
            client.close()
            accepted.close()

    def test_many_frames_preserve_boundaries(self):
        client, accepted = socket_pair()
        try:
            frames = [{"kind": "msg", "i": i, "pad": "x" * i} for i in range(50)]
            for frame in frames:
                wire.write_frame(client, frame)
            received = [wire.read_frame(accepted) for _ in frames]
            assert received == frames
        finally:
            client.close()
            accepted.close()

    def test_clean_eof_returns_none(self):
        client, accepted = socket_pair()
        client.close()
        try:
            assert wire.read_frame(accepted) is None
        finally:
            accepted.close()

    def test_mid_frame_eof_raises(self):
        client, accepted = socket_pair()
        try:
            data = wire.frame_bytes({"kind": "msg", "pad": "x" * 1000})
            client.sendall(data[: len(data) // 2])
            client.close()
            with pytest.raises(wire.WireError):
                wire.read_frame(accepted)
        finally:
            accepted.close()

    def test_oversize_frame_rejected_on_write(self):
        huge = {"pad": "x" * (wire.MAX_FRAME_BYTES + 1)}
        with pytest.raises(wire.WireError):
            wire.frame_bytes(huge)

    def test_bogus_length_prefix_rejected_on_read(self):
        client, accepted = socket_pair()
        try:
            client.sendall(
                (wire.MAX_FRAME_BYTES + 1).to_bytes(4, "big")
            )
            with pytest.raises(wire.WireError):
                wire.read_frame(accepted)
        finally:
            client.close()
            accepted.close()


class TestEnvelopes:
    def test_ndarray_payload_round_trip(self):
        payload = {
            "grads": {
                "w": np.arange(12, dtype=np.float64).reshape(3, 4),
                "b": np.zeros(4, dtype=np.float32),
            },
            "iteration": 7,
            "nested": [np.array([1.5, -2.5]), "text", None],
        }
        decoded = wire.decode_payload(
            wire.decode_frame(
                wire.encode_frame(wire.encode_payload(payload))
            )
        )
        np.testing.assert_array_equal(
            decoded["grads"]["w"], payload["grads"]["w"]
        )
        assert decoded["grads"]["b"].dtype == np.float32
        np.testing.assert_array_equal(decoded["nested"][0], [1.5, -2.5])
        assert decoded["iteration"] == 7
        assert decoded["nested"][1:] == ["text", None]

    def test_numpy_scalars_become_plain(self):
        packed = wire.encode_payload({"loss": np.float64(1.25), "n": np.int64(3)})
        assert packed == {"loss": 1.25, "n": 3}

    def test_message_frame_round_trip(self):
        message = MessageFactory().make(
            MessageType.SYNC, "w0",
            {"grads": {"w": np.ones((2, 2))}, "iteration": 3},
        )
        frame = wire.decode_frame(
            wire.encode_frame(wire.message_frame(message))
        )
        rebuilt = wire.decode_message(frame)
        assert rebuilt.msg_id == message.msg_id
        assert rebuilt.msg_type is MessageType.SYNC
        assert rebuilt.sender == "w0"
        np.testing.assert_array_equal(
            rebuilt.payload["grads"]["w"], np.ones((2, 2))
        )

    def test_params_digest_is_content_addressed(self):
        params = {"w": np.arange(6.0).reshape(2, 3), "b": np.zeros(3)}
        same = {"b": np.zeros(3), "w": np.arange(6.0).reshape(2, 3)}
        different = {"w": np.arange(6.0).reshape(2, 3), "b": np.ones(3)}
        assert wire.params_digest(params) == wire.params_digest(same)
        assert wire.params_digest(params) != wire.params_digest(different)


class TestHandshake:
    def test_hello_welcome(self):
        node, codec = wire.check_handshake(wire.hello_frame("w3", "json"))
        assert node == "w3"
        assert codec == "json"

    def test_version_mismatch_rejected(self):
        hello = wire.hello_frame("w0")
        hello["version"] = wire.PROTOCOL_VERSION + 1
        with pytest.raises(wire.WireError, match="version mismatch"):
            wire.check_handshake(hello)

    def test_missing_node_rejected(self):
        hello = wire.hello_frame("w0")
        hello["node"] = ""
        with pytest.raises(wire.WireError, match="node id"):
            wire.check_handshake(hello)

    def test_non_hello_rejected(self):
        with pytest.raises(wire.WireError, match="expected hello"):
            wire.check_handshake(wire.heartbeat_frame("w0", 1))
        with pytest.raises(wire.WireError, match="closed"):
            wire.check_handshake(None)

    def test_unknown_codec_falls_back_to_json(self):
        _, codec = wire.check_handshake(wire.hello_frame("w0", "cbor"))
        assert codec == "json"

    def test_json_always_available(self):
        assert "json" in wire.available_codecs()


class TestDecodeHardening:
    def test_corrupt_bytes_are_a_wire_error(self):
        """Decode failures must be WireErrors so read loops run their
        drop-and-reconnect cleanup instead of dying on a codec
        exception."""
        with pytest.raises(wire.WireError, match="undecodable"):
            wire.decode_frame(b"\xff\x00 definitely not json", "json")

    def test_codec_mismatch_is_a_wire_error(self):
        # msgpack bytes read as JSON (and vice versa where msgpack is
        # importable) must fail loudly, not kill the reader thread.
        packed = wire.encode_frame({"kind": "msg"}, "msgpack")
        if packed != wire.encode_frame({"kind": "msg"}, "json"):
            with pytest.raises(wire.WireError):
                wire.decode_frame(packed, "json")

    def test_non_dict_payload_is_a_wire_error(self):
        with pytest.raises(wire.WireError, match="not a dict"):
            wire.decode_frame(b"[1,2,3]", "json")

    def test_client_never_requests_codec_it_cannot_speak(self):
        assert wire.negotiate_codec("cbor") == "json"
        for codec in wire.available_codecs():
            assert wire.negotiate_codec(codec) == codec
