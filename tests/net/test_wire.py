"""Wire-format tests: framing, codecs, envelopes, handshake."""

import io
import socket
import threading

import numpy as np
import pytest

from repro.coordination.messages import MessageFactory, MessageType
from repro.net import wire


def socket_pair():
    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server.bind(("127.0.0.1", 0))
    server.listen(1)
    client = socket.create_connection(server.getsockname())
    accepted, _ = server.accept()
    server.close()
    return client, accepted


class TestFraming:
    def test_round_trip_over_socket(self):
        client, accepted = socket_pair()
        try:
            frame = {"kind": "msg", "data": [1, 2, 3], "nested": {"x": "y"}}
            wire.write_frame(client, frame)
            assert wire.read_frame(accepted) == frame
        finally:
            client.close()
            accepted.close()

    def test_many_frames_preserve_boundaries(self):
        client, accepted = socket_pair()
        try:
            frames = [{"kind": "msg", "i": i, "pad": "x" * i} for i in range(50)]
            for frame in frames:
                wire.write_frame(client, frame)
            received = [wire.read_frame(accepted) for _ in frames]
            assert received == frames
        finally:
            client.close()
            accepted.close()

    def test_clean_eof_returns_none(self):
        client, accepted = socket_pair()
        client.close()
        try:
            assert wire.read_frame(accepted) is None
        finally:
            accepted.close()

    def test_mid_frame_eof_raises(self):
        client, accepted = socket_pair()
        try:
            data = wire.frame_bytes({"kind": "msg", "pad": "x" * 1000})
            client.sendall(data[: len(data) // 2])
            client.close()
            with pytest.raises(wire.WireError):
                wire.read_frame(accepted)
        finally:
            accepted.close()

    def test_oversize_frame_rejected_on_write(self):
        huge = {"pad": "x" * (wire.MAX_FRAME_BYTES + 1)}
        with pytest.raises(wire.WireError):
            wire.frame_bytes(huge)

    def test_bogus_length_prefix_rejected_on_read(self):
        client, accepted = socket_pair()
        try:
            client.sendall(
                (wire.MAX_FRAME_BYTES + 1).to_bytes(4, "big")
            )
            with pytest.raises(wire.WireError):
                wire.read_frame(accepted)
        finally:
            client.close()
            accepted.close()


class TestEnvelopes:
    def test_ndarray_payload_round_trip(self):
        payload = {
            "grads": {
                "w": np.arange(12, dtype=np.float64).reshape(3, 4),
                "b": np.zeros(4, dtype=np.float32),
            },
            "iteration": 7,
            "nested": [np.array([1.5, -2.5]), "text", None],
        }
        decoded = wire.decode_payload(
            wire.decode_frame(
                wire.encode_frame(wire.encode_payload(payload))
            )
        )
        np.testing.assert_array_equal(
            decoded["grads"]["w"], payload["grads"]["w"]
        )
        assert decoded["grads"]["b"].dtype == np.float32
        np.testing.assert_array_equal(decoded["nested"][0], [1.5, -2.5])
        assert decoded["iteration"] == 7
        assert decoded["nested"][1:] == ["text", None]

    def test_numpy_scalars_become_plain(self):
        packed = wire.encode_payload({"loss": np.float64(1.25), "n": np.int64(3)})
        assert packed == {"loss": 1.25, "n": 3}

    def test_message_frame_round_trip(self):
        message = MessageFactory().make(
            MessageType.SYNC, "w0",
            {"grads": {"w": np.ones((2, 2))}, "iteration": 3},
        )
        frame = wire.decode_frame(
            wire.encode_frame(wire.message_frame(message))
        )
        rebuilt = wire.decode_message(frame)
        assert rebuilt.msg_id == message.msg_id
        assert rebuilt.msg_type is MessageType.SYNC
        assert rebuilt.sender == "w0"
        np.testing.assert_array_equal(
            rebuilt.payload["grads"]["w"], np.ones((2, 2))
        )

    def test_params_digest_is_content_addressed(self):
        params = {"w": np.arange(6.0).reshape(2, 3), "b": np.zeros(3)}
        same = {"b": np.zeros(3), "w": np.arange(6.0).reshape(2, 3)}
        different = {"w": np.arange(6.0).reshape(2, 3), "b": np.ones(3)}
        assert wire.params_digest(params) == wire.params_digest(same)
        assert wire.params_digest(params) != wire.params_digest(different)


class TestBinaryFrames:
    """The zero-copy data plane: header + raw segments, no base64."""

    def round_trip(self, payload, codec="json"):
        client, accepted = socket_pair()
        try:
            message = MessageFactory().make(MessageType.SYNC, "w0", payload)
            # Write from a helper thread: frames larger than the kernel
            # socket buffer would deadlock a same-thread write-then-read.
            errors = []

            def write():
                try:
                    wire.write_frame(
                        client, wire.message_frame(message, raw=True),
                        codec, binary=True,
                    )
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            writer = threading.Thread(target=write, daemon=True)
            writer.start()
            frame = wire.read_frame(accepted, codec)
            writer.join(timeout=10)
            assert not errors, errors
            return wire.decode_message(frame)
        finally:
            client.close()
            accepted.close()

    @pytest.mark.parametrize(
        "dtype", [np.float16, np.float32, np.int64, np.bool_]
    )
    def test_dtype_matrix_round_trip(self, dtype):
        array = (np.arange(24) % 5).reshape(2, 3, 4).astype(dtype)
        rebuilt = self.round_trip({"a": array})
        assert rebuilt.payload["a"].dtype == dtype
        assert rebuilt.payload["a"].shape == (2, 3, 4)
        np.testing.assert_array_equal(rebuilt.payload["a"], array)

    def test_non_contiguous_view_round_trip(self):
        base = np.arange(36, dtype=np.float64).reshape(6, 6)
        views = {"t": base.T, "s": base[::2, 1::2], "f": np.asfortranarray(base)}
        rebuilt = self.round_trip(views)
        for name, view in views.items():
            np.testing.assert_array_equal(rebuilt.payload[name], view)

    def test_empty_array_round_trip(self):
        rebuilt = self.round_trip({
            "empty": np.zeros((0, 4), dtype=np.float32),
            "full": np.ones(3),
        })
        assert rebuilt.payload["empty"].shape == (0, 4)
        assert rebuilt.payload["empty"].dtype == np.float32
        np.testing.assert_array_equal(rebuilt.payload["full"], np.ones(3))

    def test_raw_bytes_and_mixed_payload(self):
        rebuilt = self.round_trip({
            "data": b"\x00\x01binary",
            "grads": {"w": np.full((3, 3), 2.5)},
            "n": 7, "tag": "text",
        })
        assert bytes(rebuilt.payload["data"]) == b"\x00\x01binary"
        np.testing.assert_array_equal(
            rebuilt.payload["grads"]["w"], np.full((3, 3), 2.5)
        )
        assert rebuilt.payload["n"] == 7

    def test_decoded_arrays_are_zero_copy_views(self):
        rebuilt = self.round_trip({"w": np.arange(8, dtype=np.float64)})
        assert rebuilt.payload["w"].base is not None  # frombuffer view

    def test_array_free_frames_fall_back_to_codec(self):
        frame = {"kind": "msg", "plain": [1, 2, 3]}
        buffers, total = wire.binary_frame_buffers(frame)
        assert buffers is None and total == 0

    def test_corrupt_segment_length_raises(self):
        client, accepted = socket_pair()
        try:
            array = np.arange(16, dtype=np.float32)
            header_obj, segments = wire.split_buffers({"kind": "msg", "a": array})
            header_obj["__segs__"] = [segments[0].nbytes - 4]  # lie
            header = wire.encode_frame(header_obj, "json")
            client.sendall(wire._LENGTH.pack(wire.BINARY_FLAG | len(header)))
            client.sendall(header)
            client.sendall(bytes(segments[0])[:-4])
            with pytest.raises(wire.WireError, match="needs"):
                wire.read_frame(accepted, "json")
        finally:
            client.close()
            accepted.close()

    def test_missing_segment_table_raises(self):
        client, accepted = socket_pair()
        try:
            header = wire.encode_frame({"kind": "msg"}, "json")
            client.sendall(wire._LENGTH.pack(wire.BINARY_FLAG | len(header)))
            client.sendall(header)
            with pytest.raises(wire.WireError, match="segment table"):
                wire.read_frame(accepted, "json")
        finally:
            client.close()
            accepted.close()

    def test_oversize_binary_frame_rejected_on_write(self):
        big = np.zeros(wire.MAX_FRAME_BYTES // 8 + 1, dtype=np.float64)
        with pytest.raises(wire.WireError, match="exceeds"):
            wire.binary_frame_buffers({"kind": "msg", "a": big})

    def test_object_arrays_are_rejected(self):
        with pytest.raises(wire.WireError, match="object"):
            wire.split_buffers({"bad": np.array([object()])})

    def test_large_frame_round_trip(self):
        # Also exercises the recv_into read path on a multi-MB frame.
        array = np.random.default_rng(0).random((512, 1024))  # 4 MiB
        rebuilt = self.round_trip({"big": array})
        np.testing.assert_array_equal(rebuilt.payload["big"], array)


class TestStreamingDigest:
    def test_non_contiguous_matches_contiguous(self):
        base = np.arange(24, dtype=np.float64).reshape(4, 6)
        assert wire.params_digest({"w": base.T}) == wire.params_digest(
            {"w": np.ascontiguousarray(base.T)}
        )

    def test_zero_size_arrays_still_distinguish_metadata(self):
        a = {"w": np.zeros((0, 3), dtype=np.float32)}
        b = {"w": np.zeros((0, 4), dtype=np.float32)}
        c = {"w": np.zeros((0, 3), dtype=np.float64)}
        digests = {wire.params_digest(p) for p in (a, b, c)}
        assert len(digests) == 3

    def test_matches_historical_tobytes_format(self):
        import hashlib

        params = {
            "w": np.arange(12.0).reshape(3, 4).T,  # non-contiguous
            "b": np.zeros(0, dtype=np.float16),
            "s": np.float32(2.5) * np.ones((2, 2), dtype=np.float32),
        }
        hasher = hashlib.sha256()
        for name in sorted(params):
            arr = np.ascontiguousarray(params[name])
            hasher.update(name.encode())
            hasher.update(str(arr.dtype).encode())
            hasher.update(str(arr.shape).encode())
            hasher.update(arr.tobytes())
        assert wire.params_digest(params) == hasher.hexdigest()


class TestHandshake:
    def test_hello_welcome(self):
        node, codec, binary = wire.check_handshake(
            wire.hello_frame("w3", "json")
        )
        assert node == "w3"
        assert codec == "json"
        assert binary is True

    def test_version_mismatch_rejected(self):
        hello = wire.hello_frame("w0")
        hello["version"] = wire.PROTOCOL_VERSION + 1
        with pytest.raises(wire.WireError, match="version mismatch"):
            wire.check_handshake(hello)

    def test_missing_node_rejected(self):
        hello = wire.hello_frame("w0")
        hello["node"] = ""
        with pytest.raises(wire.WireError, match="node id"):
            wire.check_handshake(hello)

    def test_non_hello_rejected(self):
        with pytest.raises(wire.WireError, match="expected hello"):
            wire.check_handshake(wire.heartbeat_frame("w0", 1))
        with pytest.raises(wire.WireError, match="closed"):
            wire.check_handshake(None)

    def test_unknown_codec_falls_back_to_json(self):
        handshake = wire.check_handshake(wire.hello_frame("w0", "cbor"))
        assert handshake.codec == "json"

    def test_json_always_available(self):
        assert "json" in wire.available_codecs()

    def test_binary_requires_both_sides(self):
        # Client opts out -> negotiated off.
        hs = wire.check_handshake(wire.hello_frame("w0", binary=False))
        assert hs.binary is False
        # Server opts out -> negotiated off.
        hs = wire.check_handshake(
            wire.hello_frame("w0", binary=True), binary=False
        )
        assert hs.binary is False

    def test_legacy_peer_without_bin_flag_degrades(self):
        """A version-1 hello that predates the data plane (no ``bin``
        key) must negotiate base64 envelopes, not be rejected."""
        hello = wire.hello_frame("old-worker")
        del hello["bin"]
        hs = wire.check_handshake(hello)
        assert hs.node == "old-worker"
        assert hs.binary is False


class TestDecodeHardening:
    def test_corrupt_bytes_are_a_wire_error(self):
        """Decode failures must be WireErrors so read loops run their
        drop-and-reconnect cleanup instead of dying on a codec
        exception."""
        with pytest.raises(wire.WireError, match="undecodable"):
            wire.decode_frame(b"\xff\x00 definitely not json", "json")

    def test_codec_mismatch_is_a_wire_error(self):
        # msgpack bytes read as JSON (and vice versa where msgpack is
        # importable) must fail loudly, not kill the reader thread.
        packed = wire.encode_frame({"kind": "msg"}, "msgpack")
        if packed != wire.encode_frame({"kind": "msg"}, "json"):
            with pytest.raises(wire.WireError):
                wire.decode_frame(packed, "json")

    def test_non_dict_payload_is_a_wire_error(self):
        with pytest.raises(wire.WireError, match="not a dict"):
            wire.decode_frame(b"[1,2,3]", "json")

    def test_client_never_requests_codec_it_cannot_speak(self):
        assert wire.negotiate_codec("cbor") == "json"
        for codec in wire.available_codecs():
            assert wire.negotiate_codec(codec) == codec
