"""The chunked replication data plane: slicing, resume, fan-out rounds.

The resume-after-reset chaos tests here are an ISSUE acceptance
criterion: a connection reset in the middle of a chunked snapshot
upload must resume from the last acked chunk — never restart from
scratch, never re-execute a chunk handler — identically over the
in-memory transport and loopback TCP.
"""

import threading
import time

import numpy as np
import pytest

from repro.coordination.faults import FaultPlan
from repro.coordination.messages import MessageType
from repro.net import (
    ChunkAssembler,
    ChunkedUploader,
    ChunkStore,
    JobSpec,
    NetworkedApplicationMaster,
    ServerCore,
    StateBlob,
    TcpServer,
    WireError,
    memory_link,
    tcp_link,
)
from repro.net.chunks import decode_state_blob
from repro.net.master_service import _fanout_rounds
from repro.observability import MetricRegistry


def sample_state(floats=1024, seed=3):
    rng = np.random.default_rng(seed)
    return {
        "params": {
            "w": rng.random((floats // 2, 2)),
            "b": rng.random(8, dtype=np.float32),
            "empty": np.zeros(0, dtype=np.float16),
        },
        "optimizer": {"lr": 0.05, "velocity": {"w": rng.random(16)}},
        "loader": {"cursor": 40, "epoch": 1},
    }


def assert_states_equal(a, b):
    np.testing.assert_array_equal(a["params"]["w"], b["params"]["w"])
    np.testing.assert_array_equal(a["params"]["b"], b["params"]["b"])
    assert a["params"]["b"].dtype == b["params"]["b"].dtype
    assert a["params"]["empty"].shape == b["params"]["empty"].shape
    np.testing.assert_array_equal(
        a["optimizer"]["velocity"]["w"], b["optimizer"]["velocity"]["w"]
    )
    assert a["loader"] == b["loader"]


class TestStateBlob:
    def test_chunks_cover_blob_exactly_once(self):
        blob = StateBlob.encode(sample_state(), chunk_bytes=100)
        joined = b"".join(bytes(blob.chunk(s)) for s in range(blob.total_chunks))
        assert len(joined) == blob.total_bytes
        assert decode_state_blob(joined)  # whole blob decodes
        assert blob.total_chunks == -(-blob.total_bytes // 100)

    def test_decode_round_trip(self):
        state = sample_state()
        blob = StateBlob.encode(state, chunk_bytes=256)
        joined = bytearray()
        for seq in range(blob.total_chunks):
            joined.extend(bytes(blob.chunk(seq)))
        assert_states_equal(decode_state_blob(joined), state)

    def test_segments_view_live_arrays_without_copying(self):
        state = sample_state()
        blob = StateBlob.encode(state, chunk_bytes=1 << 20)
        before = bytes(blob.chunk(0))
        state["params"]["w"][0, 0] += 1.0
        # The blob's segments are views over the live tensors — the
        # mutation shows through, proving encode took no copy.
        assert bytes(blob.chunk(0)) != before

    def test_truncated_blob_raises(self):
        blob = StateBlob.encode(sample_state(), chunk_bytes=128)
        whole = b"".join(bytes(blob.chunk(s)) for s in range(blob.total_chunks))
        with pytest.raises(WireError):
            decode_state_blob(whole[:-10])


class TestChunkAssembler:
    def make(self, chunk_bytes=64, floats=64):
        blob = StateBlob.encode(sample_state(floats), chunk_bytes=chunk_bytes)
        assembler = ChunkAssembler(
            "t1", blob.total_bytes, blob.total_chunks, chunk_bytes
        )
        return blob, assembler

    def test_out_of_order_assembly_verifies(self):
        blob, assembler = self.make()
        order = list(range(blob.total_chunks))[::-1]
        for seq in order:
            assert assembler.add(seq, blob.chunk(seq), blob.chunk_digest(seq))
        assert assembler.complete
        assert bytes(assembler.finish(blob.digest)) == b"".join(
            bytes(blob.chunk(s)) for s in range(blob.total_chunks)
        )

    def test_duplicates_counted_not_reapplied(self):
        blob, assembler = self.make()
        assert assembler.add(0, blob.chunk(0))
        assert not assembler.add(0, blob.chunk(0))
        assert assembler.duplicates == 1
        assert len(assembler.received) == 1

    def test_corrupt_chunk_digest_raises(self):
        blob, assembler = self.make()
        with pytest.raises(WireError, match="digest"):
            assembler.add(0, blob.chunk(0), "0" * 64)

    def test_wrong_length_chunk_raises(self):
        blob, assembler = self.make()
        with pytest.raises(WireError, match="bytes"):
            assembler.add(0, bytes(blob.chunk(0)) + b"x")

    def test_incomplete_finish_raises(self):
        blob, assembler = self.make()
        assembler.add(0, blob.chunk(0))
        with pytest.raises(WireError, match="incomplete"):
            assembler.finish()

    def test_bad_geometry_raises(self):
        with pytest.raises(WireError, match="chunks"):
            ChunkAssembler("t1", total_bytes=1000, total_chunks=3,
                           chunk_bytes=100)

    def test_whole_blob_digest_mismatch_raises(self):
        blob, assembler = self.make()
        for seq in range(blob.total_chunks):
            assembler.add(seq, blob.chunk(seq))
        with pytest.raises(WireError, match="digest"):
            assembler.finish("f" * 64)


def chunk_server():
    """A bare ChunkStore behind the real dedup core."""
    store = ChunkStore()
    completed = {}

    def handle(message):
        if message.msg_type is MessageType.STATE_CHUNK:
            return store.handle_chunk(message.sender, message.payload)
        if message.msg_type is MessageType.STATE_DONE:
            reply, assembler = store.handle_done(
                message.sender, message.payload
            )
            if assembler is not None:
                completed[assembler.transfer_id] = assembler
            return reply
        raise ValueError(message.msg_type)

    core = ServerCore(handler=handle, node_id="srv")
    return core, store, completed


@pytest.fixture(params=["memory", "tcp"])
def transport(request):
    return request.param


def make_link(transport, core, node_id, fault_plan=None):
    """(link, transport_obj, cleanup) for either side of the seam."""
    if transport == "tcp":
        server = TcpServer(core).start()
        link, tcp_transport = tcp_link(
            server.host, server.port, node_id, fault_plan=fault_plan,
            ack_timeout=0.5, heartbeat_interval=None,
        )
        def cleanup():
            link.close()
            server.close()
        return link, tcp_transport, cleanup
    link = memory_link(core, node_id, fault_plan=fault_plan, ack_timeout=0.5)
    return link, link.transport, link.close


class TestChunkedUploadOverBothTransports:
    def test_pipelined_upload_round_trip(self, transport):
        core, store, completed = chunk_server()
        link, _, cleanup = make_link(transport, core, "w0")
        try:
            state = sample_state()
            summary = ChunkedUploader(
                link, chunk_bytes=512, window=4
            ).upload(state)
            assert summary["chunks"] > 4
            assembler = completed[summary["transfer_id"]]
            assert_states_equal(assembler.decode(), state)
            # Exactly-once even with four requests in flight at a time.
            assert core.executions[("w0", "state_chunk")] == summary["chunks"]
            assert assembler.duplicates == 0
        finally:
            cleanup()

    def test_reset_mid_upload_resumes_from_last_acked_chunk(self, transport):
        """ISSUE acceptance: the reset kills chunk 3 in flight; the
        resend delivers chunk 3 and the upload continues — chunks 1-2
        are never resent and no chunk handler runs twice."""
        core, store, completed = chunk_server()
        plan = FaultPlan(connection_resets=(3,))
        link, transport_obj, cleanup = make_link(
            transport, core, "w0", fault_plan=plan
        )
        try:
            state = sample_state()
            summary = ChunkedUploader(
                link, chunk_bytes=512, window=1  # serial: faults land on
                # exact chunk indices
            ).upload(state)
            total = summary["chunks"]
            assert total >= 6
            # Every chunk's handler executed exactly once: acked chunks
            # were never retransmitted, the transfer was not restarted.
            assert core.executions[("w0", "state_chunk")] == total
            assert core.executions[("w0", "state_done")] == 1
            assembler = completed[summary["transfer_id"]]
            assert assembler.duplicates == 0
            # The fault actually fired and was recovered.
            assert transport_obj.reconnects >= 1
            assert link.resends >= 1
            assert_states_equal(assembler.decode(), state)
        finally:
            cleanup()

    def test_aggressive_duplication_never_reapplies_chunks(self, transport):
        core, store, completed = chunk_server()
        plan = FaultPlan(duplicate_every=1)
        link, _, cleanup = make_link(transport, core, "w0", fault_plan=plan)
        try:
            state = sample_state()
            summary = ChunkedUploader(link, chunk_bytes=512).upload(state)
            assembler = completed[summary["transfer_id"]]
            assert core.executions[("w0", "state_chunk")] == summary["chunks"]
            assert core.duplicates > 0  # dedup absorbed the copies
            assert assembler.duplicates == 0  # none reached the buffer
            assert_states_equal(assembler.decode(), state)
        finally:
            cleanup()

    def test_done_before_complete_reports_missing(self, transport):
        core, store, completed = chunk_server()
        link, _, cleanup = make_link(transport, core, "w0")
        try:
            blob = StateBlob.encode(sample_state(), chunk_bytes=512)
            base = blob.describe("t-incomplete")
            payload = dict(
                base, seq=0, digest=blob.chunk_digest(0), data=blob.chunk(0)
            )
            assert link.request(MessageType.STATE_CHUNK, payload)["ok"]
            reply = link.request(MessageType.STATE_DONE, dict(base))
            assert reply["ok"] is False
            assert reply["missing"] == blob.total_chunks - 1
            assert not completed
        finally:
            cleanup()


class TestFanoutRounds:
    def test_single_source_serializes_then_chains(self):
        rounds = _fanout_rounds(["w0"], ["w2", "w3", "w4"], 1 << 20)
        assert set(rounds) == {"w2", "w3", "w4"}
        # One joiner copies first; chaining then lets the fresh replica
        # help, so the remaining two go in the next round together.
        by_round = sorted(rounds.values())
        assert by_round[0] == 0
        assert by_round.count(0) == 1
        assert max(by_round) >= 1

    def test_multiple_sources_fan_out_concurrently(self):
        rounds = _fanout_rounds(["w0", "w1"], ["w2", "w3"], 1 << 20)
        # Two sources, two joiners, disjoint NIC pairs: one round.
        assert set(rounds.values()) == {0}


class TestMasterChunkProtocol:
    """The AM side: upload gating, round-gated fetches, cleanup."""

    def _adjusting_master(self, joiners=("w2",)):
        spec = JobSpec(iterations=64, coordination_interval=4, chunk_bytes=256)
        net = NetworkedApplicationMaster(spec, ["w0"])
        assert net._handle_adjustment_request(
            {"kind": "scale_out", "add": list(joiners)}
        )["accepted"]
        for joiner in joiners:
            net.am.worker_report(joiner)
        for iteration in range(4, 400, 4):
            if net._handle_coordinate("w0", iteration)["kind"] == "adjust":
                break
        return net

    def _upload(self, net, state, transfer_id="t-up", worker="w0"):
        blob = StateBlob.encode(
            state, chunk_bytes=net.spec.chunk_bytes
        )
        base = blob.describe(transfer_id)
        for seq in range(blob.total_chunks):
            reply = net._handle_state_chunk(worker, dict(
                base, seq=seq, digest=blob.chunk_digest(seq),
                data=blob.chunk(seq),
            ))
            assert reply["ok"], reply
        reply = net._handle_state_done(worker, dict(base))
        assert reply["ok"], reply
        return blob

    def test_only_the_elected_uploader_may_stream(self):
        net = self._adjusting_master()
        blob = StateBlob.encode(sample_state(), chunk_bytes=256)
        payload = dict(
            blob.describe("t-x"), seq=0, digest=blob.chunk_digest(0),
            data=blob.chunk(0),
        )
        assert net._handle_state_chunk("w9", payload) == {
            "ok": False, "reason": "no snapshot expected",
        }

    def test_offers_carry_descriptor_and_round(self):
        net = self._adjusting_master(joiners=("w2", "w3", "w4"))
        state = sample_state()
        blob = self._upload(net, state)
        for joiner in ("w2", "w3", "w4"):
            offer = net._handle_join(joiner)
            assert offer["status"] == "join"
            descriptor = offer["state_transfer"]
            assert "state" not in offer  # no inline snapshot any more
            assert descriptor["total_chunks"] == blob.total_chunks
            assert descriptor["digest"] == blob.digest
            assert descriptor["round"] >= 0

    def test_fetches_are_gated_by_planner_rounds(self):
        net = self._adjusting_master(joiners=("w2", "w3", "w4"))
        state = sample_state()
        blob = self._upload(net, state)
        offers = {j: net._handle_join(j) for j in ("w2", "w3", "w4")}
        rounds = {
            j: o["state_transfer"]["round"] for j, o in offers.items()
        }
        first = min(rounds, key=rounds.get)
        later = [j for j in rounds if rounds[j] > rounds[first]]
        assert later, rounds
        transfer_id = offers[first]["state_transfer"]["transfer_id"]
        # A later-round joiner is told to wait while round 0 is copying.
        assert net._handle_state_fetch(
            later[0], {"transfer_id": transfer_id, "seq": 0}
        ) == {"status": "pending"}
        # Round 0 fetches everything...
        collected = bytearray()
        for seq in range(blob.total_chunks):
            reply = net._handle_state_fetch(
                first, {"transfer_id": transfer_id, "seq": seq}
            )
            assert reply["ok"]
            collected.extend(bytes(reply["data"]))
        assert_states_equal(decode_state_blob(collected), state)
        # ...and the next round opens.
        reply = net._handle_state_fetch(
            later[0], {"transfer_id": transfer_id, "seq": 0}
        )
        assert reply["ok"]

    def test_unknown_transfer_is_refused_not_pending(self):
        net = self._adjusting_master()
        assert net._handle_state_fetch(
            "w2", {"transfer_id": "no-such", "seq": 0}
        ) == {"ok": False, "reason": "unknown transfer"}

    def test_fetch_rejects_non_joiners_and_bad_seqs(self):
        net = self._adjusting_master()
        state = sample_state()
        self._upload(net, state)
        offer = net._handle_join("w2")
        transfer_id = offer["state_transfer"]["transfer_id"]
        assert not net._handle_state_fetch(
            "w9", {"transfer_id": transfer_id, "seq": 0}
        )["ok"]
        assert not net._handle_state_fetch(
            "w2", {"transfer_id": transfer_id, "seq": 10**6}
        )["ok"]

    def test_minting_a_new_plan_drops_completed_downloads(self):
        net = self._adjusting_master()
        state = sample_state()
        blob = self._upload(net, state)
        offer = net._handle_join("w2")
        transfer_id = offer["state_transfer"]["transfer_id"]
        for seq in range(blob.total_chunks):
            assert net._handle_state_fetch(
                "w2", {"transfer_id": transfer_id, "seq": seq}
            )["ok"]
        assert net._downloads[transfer_id].complete
        # Finish the adjustment, then start the next one: the download
        # is fully served and must not outlive its generation.
        net._handle_coordinate("w0", 8)
        assert net._handle_adjustment_request(
            {"kind": "scale_out", "add": ["w5"]}
        )["accepted"]
        net.am.worker_report("w5")
        for iteration in range(12, 400, 4):
            if net._handle_coordinate("w0", iteration)["kind"] == "adjust":
                break
            if net._handle_coordinate("w2", iteration)["kind"] == "adjust":
                break
        assert transfer_id not in net._downloads

    def test_chunk_metrics_are_recorded(self):
        metrics = MetricRegistry()
        spec = JobSpec(iterations=64, coordination_interval=4, chunk_bytes=256)
        net = NetworkedApplicationMaster(spec, ["w0"], metrics=metrics)
        assert net._handle_adjustment_request(
            {"kind": "scale_out", "add": ["w2"]}
        )["accepted"]
        net.am.worker_report("w2")
        for iteration in range(4, 400, 4):
            if net._handle_coordinate("w0", iteration)["kind"] == "adjust":
                break
        blob = StateBlob.encode(sample_state(), chunk_bytes=256)
        base = blob.describe("t-m")
        for seq in range(blob.total_chunks):
            net._handle_state_chunk("w0", dict(
                base, seq=seq, digest=blob.chunk_digest(seq),
                data=blob.chunk(seq),
            ))
        net._handle_state_done("w0", dict(base))
        snap = metrics.snapshot()
        assert snap["net.chunks.received"] == blob.total_chunks
        assert snap["net.chunks.bytes_received"] == blob.total_bytes
        assert snap["net.transfers.completed"] == 1


class TestConcurrentFanout:
    def test_joiners_fetch_concurrently_within_a_round(self):
        """Two joiners whose planner rounds coincide pull the same
        download from separate threads without corruption."""
        spec = JobSpec(iterations=64, coordination_interval=4, chunk_bytes=128)
        net = NetworkedApplicationMaster(spec, ["w0", "w1"])
        assert net._handle_adjustment_request(
            {"kind": "scale_out", "add": ["w2", "w3"]}
        )["accepted"]
        net.am.worker_report("w2")
        net.am.worker_report("w3")
        for iteration in range(4, 400, 4):
            if net._handle_coordinate("w0", iteration)["kind"] == "adjust":
                net._handle_coordinate("w1", iteration)
                break
        state = sample_state()
        blob = StateBlob.encode(state, chunk_bytes=128)
        base = blob.describe("t-c")
        for seq in range(blob.total_chunks):
            net._handle_state_chunk("w0", dict(
                base, seq=seq, digest=blob.chunk_digest(seq),
                data=blob.chunk(seq),
            ))
        net._handle_state_done("w0", dict(base))
        results, errors = {}, []

        def fetch(joiner):
            try:
                offer = net._handle_join(joiner)
                descriptor = offer["state_transfer"]
                collected = bytearray()
                for seq in range(descriptor["total_chunks"]):
                    deadline = time.monotonic() + 10
                    while True:
                        reply = net._handle_state_fetch(
                            joiner,
                            {"transfer_id": descriptor["transfer_id"],
                             "seq": seq},
                        )
                        if reply.get("status") != "pending":
                            break
                        assert time.monotonic() < deadline, "round never opened"
                        time.sleep(0.005)
                    assert reply["ok"], reply
                    collected.extend(bytes(reply["data"]))
                results[joiner] = decode_state_blob(collected)
            except Exception as exc:  # surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=fetch, args=(j,)) for j in ("w2", "w3")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert not errors, errors
        for joiner in ("w2", "w3"):
            assert_states_equal(results[joiner], state)
