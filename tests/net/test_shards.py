"""Sharded state migration (ISSUE 10): stores, fan-in, delta, recovery.

Four layers:

* :class:`ShardStore` — owners freeze a bit-identical full blob and
  serve digest-verified chunks of it over the peer plane, with TTL
  eviction so a dead transfer cannot pin memory forever;
* :class:`ChunkedFetcher` backoff — a queued joiner polls its round
  gate with bounded exponential backoff instead of a tight loop;
* :class:`ShardedFetcher` — multi-peer fan-in, delta rejoin, and
  re-planning a shard whose owner died (or diverged) mid-fetch, driven
  against in-memory fakes so every failure mode is deterministic;
* end-to-end — a ring-enabled elastic job with ``replication_shards``
  set scales out over the memory and TCP transports; the joiners pull
  their shards from the owner peers (never through the AM link) and
  every replica finishes bit-identical.
"""

import threading
import time

import numpy as np
import pytest

from repro.coordination.messages import MessageType
from repro.net import (
    ChunkedFetcher,
    ChunkStore,
    JobSpec,
    MemoryPeerHost,
    NetworkedApplicationMaster,
    StateBlob,
    TcpPeerHost,
    WorkerAgent,
    memory_link,
    tcp_link,
)
from repro.net.chunks import ShardedFetcher, ShardStore, TransferError
from repro.observability import MetricRegistry


def sample_state(floats=4096, seed=7):
    rng = np.random.default_rng(seed)
    return {
        "params": {
            "w": rng.random((floats // 2, 2)),
            "b": rng.random(64, dtype=np.float32),
        },
        "optimizer": {"lr": 0.05, "velocity": {"w": rng.random(128)}},
        "loader": {"cursor": 12, "epoch": 0},
    }


def assert_states_equal(a, b):
    np.testing.assert_array_equal(a["params"]["w"], b["params"]["w"])
    np.testing.assert_array_equal(a["params"]["b"], b["params"]["b"])
    np.testing.assert_array_equal(
        a["optimizer"]["velocity"]["w"], b["optimizer"]["velocity"]["w"]
    )
    assert a["loader"] == b["loader"]


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now


class TestShardStore:
    def test_serves_digest_verified_chunks_of_the_frozen_blob(self):
        blob = StateBlob.encode(sample_state(), chunk_bytes=512)
        store = ShardStore()
        frozen = store.register("t1", blob)
        assert frozen == blob.total_bytes
        assert store.holds("t1")
        joined = bytearray()
        for seq in range(blob.total_chunks):
            reply = store.handle_fetch("j", {"transfer_id": "t1", "seq": seq})
            assert reply["ok"], reply
            assert reply["digest"] == blob.chunk_digest(seq)
            joined.extend(bytes(reply["data"]))
        assert bytes(joined) == blob.tobytes()
        assert store.served == blob.total_chunks

    def test_unknown_transfer_and_bad_seq_are_refused(self):
        blob = StateBlob.encode(sample_state(), chunk_bytes=512)
        store = ShardStore()
        store.register("t1", blob)
        assert not store.handle_fetch("j", {"transfer_id": "x", "seq": 0})["ok"]
        for seq in (-1, blob.total_chunks, None, "0"):
            reply = store.handle_fetch("j", {"transfer_id": "t1", "seq": seq})
            assert not reply["ok"], (seq, reply)

    def test_idle_entries_are_evicted_on_the_ttl(self):
        clock = FakeClock()
        metrics = MetricRegistry()
        blob = StateBlob.encode(sample_state(), chunk_bytes=512)
        store = ShardStore(metrics=metrics, ttl=10.0, clock=clock)
        store.register("t1", blob)
        clock.now += 9.0
        assert store.handle_fetch("j", {"transfer_id": "t1", "seq": 0})["ok"]
        clock.now += 10.1  # idle past the TTL since the last serve
        reply = store.handle_fetch("j", {"transfer_id": "t1", "seq": 1})
        assert not reply["ok"]
        assert store.evicted == 1
        assert metrics.snapshot()["net.shards.evicted"] == 1.0
        assert not store.holds("t1")

    def test_release_drops_the_frozen_copy(self):
        blob = StateBlob.encode(sample_state(), chunk_bytes=512)
        store = ShardStore()
        store.register("t1", blob)
        store.release("t1")
        assert not store.holds("t1")

    def test_on_serve_hook_sees_the_running_count(self):
        blob = StateBlob.encode(sample_state(), chunk_bytes=512)
        counts = []
        store = ShardStore(on_serve=counts.append)
        store.register("t1", blob)
        for seq in range(3):
            store.handle_fetch("j", {"transfer_id": "t1", "seq": seq})
        assert counts == [0, 1, 2]


class TestChunkStoreTtl:
    """Satellite: completed/abandoned assemblers die on a TTL, not at
    the next plan mint."""

    def _chunk_payload(self, blob, transfer_id, seq):
        return {
            "transfer_id": transfer_id,
            "seq": seq,
            "data": blob.chunk(seq),
            "digest": blob.chunk_digest(seq),
            "total_bytes": blob.total_bytes,
            "total_chunks": blob.total_chunks,
            "chunk_bytes": blob.chunk_bytes,
            "codec": blob.codec,
        }

    def test_abandoned_upload_is_swept_inline(self):
        clock = FakeClock()
        metrics = MetricRegistry()
        store = ChunkStore(metrics=metrics, ttl=10.0, clock=clock)
        blob = StateBlob.encode(sample_state(), chunk_bytes=512)
        store.handle_chunk("dead", self._chunk_payload(blob, "t1", 0))
        clock.now += 11.0
        # The next handled message (any sender) sweeps the idle one.
        store.handle_chunk("live", self._chunk_payload(blob, "t2", 0))
        assert store.assembler("dead") is None
        assert store.assembler("live") is not None
        assert store.evicted == 1
        assert metrics.snapshot()["net.transfers.evicted"] == 1.0

    def test_activity_refreshes_the_ttl(self):
        clock = FakeClock()
        store = ChunkStore(ttl=10.0, clock=clock)
        blob = StateBlob.encode(sample_state(), chunk_bytes=512)
        for seq in range(min(3, blob.total_chunks)):
            store.handle_chunk("up", self._chunk_payload(blob, "t1", seq))
            clock.now += 8.0  # always within the TTL of the last chunk
        assert store.assembler("up") is not None
        assert store.evicted == 0

    def test_ttl_none_disables_eviction(self):
        clock = FakeClock()
        store = ChunkStore(ttl=None, clock=clock)
        blob = StateBlob.encode(sample_state(), chunk_bytes=512)
        store.handle_chunk("up", self._chunk_payload(blob, "t1", 0))
        clock.now += 1e6
        assert store.evict_expired() == []
        assert store.assembler("up") is not None


class FakeLink:
    """A ReliableLink stand-in: dispatches requests to a handler."""

    def __init__(self, handler, node_id="joiner"):
        self.handler = handler
        self.node_id = node_id
        self.requests = 0
        self.closed = False

    def request(self, msg_type, payload=None):
        self.requests += 1
        return self.handler(msg_type, dict(payload or {}))

    def close(self):
        self.closed = True


class TestFetcherBackoff:
    """Satellite: the pending wait is bounded exponential backoff."""

    def test_backoff_delays_grow_and_cap(self):
        link = FakeLink(lambda m, p: {"ok": True})
        fetcher = ChunkedFetcher(
            link, poll_interval=0.01, max_poll_interval=0.05
        )
        backoff = fetcher._backoff()
        delays = [backoff.delay(attempt) for attempt in range(8)]
        assert delays[0] == pytest.approx(0.01)
        assert delays == sorted(delays)
        assert delays[-1] == pytest.approx(0.05)
        assert all(d <= 0.05 for d in delays)

    def test_max_poll_interval_never_below_poll_interval(self):
        link = FakeLink(lambda m, p: {"ok": True})
        fetcher = ChunkedFetcher(
            link, poll_interval=0.2, max_poll_interval=0.01
        )
        assert fetcher.max_poll_interval == 0.2

    def test_pending_rounds_resolve_after_backoff(self):
        blob = StateBlob.encode(sample_state(), chunk_bytes=2048)
        pending_left = [3]

        def handler(msg_type, payload):
            assert msg_type is MessageType.STATE_FETCH
            if pending_left[0] > 0:
                pending_left[0] -= 1
                return {"status": "pending"}
            seq = payload["seq"]
            return {
                "ok": True, "seq": seq, "data": blob.chunk(seq),
                "digest": blob.chunk_digest(seq),
            }

        fetcher = ChunkedFetcher(
            FakeLink(handler), window=1,
            poll_interval=0.001, max_poll_interval=0.004, timeout=5.0,
        )
        state = fetcher.fetch(blob.describe("t1"))
        assert_states_equal(state, sample_state())
        assert pending_left[0] == 0


def make_sharded_world(owners=("w0", "w1"), chunk_bytes=1024,
                       state=None, shard_count=None, am_blob=None):
    """An AM-side descriptor plus per-owner ShardStores, all in-process.

    Returns ``(descriptor, stores, am_handler)`` where ``descriptor``
    is what a join offer would carry, ``stores[owner]`` holds that
    owner's frozen blob, and ``am_handler`` answers probe/complete and
    serves the AM's own full copy as the last-resort source.
    """
    state = state if state is not None else sample_state()
    blob = StateBlob.encode(state, chunk_bytes=chunk_bytes)
    am_blob = am_blob if am_blob is not None else blob
    shards = blob.shard_plan(shard_count or len(owners))
    for shard in shards:
        shard["owner"] = owners[shard["index"] % len(owners)]
        shard["addr"] = f"mem://{shard['owner']}"
    stores = {}
    for owner in owners:
        store = ShardStore()
        store.register("t1", blob)
        stores[owner] = store

    completions = []

    def am_handler(msg_type, payload):
        assert msg_type is MessageType.STATE_FETCH
        if payload.get("probe"):
            return {"ok": True, "open": True}
        if payload.get("complete"):
            completions.append(payload["transfer_id"])
            return {"ok": True}
        seq = payload["seq"]
        return {
            "ok": True, "seq": seq, "data": am_blob.chunk(seq),
            "digest": am_blob.chunk_digest(seq),
        }

    descriptor = blob.describe("t1")
    descriptor["shards"] = shards
    am_handler.completions = completions
    return descriptor, stores, am_handler


def peer_connector(stores, dead=(), die_after=None):
    """connect(addr) -> FakeLink onto the owner's ShardStore.

    Owners in ``dead`` refuse the connection; ``die_after[owner]``
    makes the owner's link raise after that many served chunks — the
    in-process analogue of ``--shard-die-after``'s hard exit.
    """
    def connect(addr):
        owner = addr.split("://", 1)[1]
        if owner in dead:
            raise ConnectionError(f"{owner} is dead")
        store = stores[owner]
        limit = (die_after or {}).get(owner)

        def handler(msg_type, payload):
            if limit is not None and store.served >= limit:
                raise ConnectionError(f"{owner} died mid-fetch")
            return store.handle_fetch("joiner", payload)

        return FakeLink(handler, node_id=owner)

    return connect


class TestShardedFetcher:
    def test_fan_in_from_all_owners_is_bit_identical(self):
        state = sample_state()
        descriptor, stores, am = make_sharded_world(state=state)
        fetcher = ShardedFetcher(
            FakeLink(am), connect=peer_connector(stores),
            poll_interval=0.001, timeout=5.0,
            metrics=MetricRegistry(),
        )
        fetched = fetcher.fetch(descriptor)
        assert_states_equal(fetched, state)
        # Every chunk came off the owner peers, none off the AM link.
        assert stores["w0"].served > 0
        assert stores["w1"].served > 0
        assert sum(s.served for s in stores.values()) == (
            descriptor["total_chunks"]
        )
        assert fetcher.stats["net.shards.fetched"] == len(
            descriptor["shards"]
        )
        assert am.completions == ["t1"]

    def test_owner_death_mid_fetch_replans_onto_the_survivor(self):
        state = sample_state()
        descriptor, stores, am = make_sharded_world(state=state)
        # w0 serves exactly one chunk, then every request explodes.
        connect = peer_connector(stores, die_after={"w0": 1})
        fetcher = ShardedFetcher(
            FakeLink(am), connect=connect,
            window=1, poll_interval=0.001, timeout=5.0,
        )
        fetched = fetcher.fetch(descriptor)
        assert_states_equal(fetched, state)
        assert fetcher.stats.get("net.shards.replans", 0) >= 1
        # The survivor holds the FULL frozen blob, so it covered the
        # dead owner's shard too.
        assert stores["w1"].served >= descriptor["total_chunks"] - 1

    def test_all_owners_dead_falls_back_to_the_am_full_copy(self):
        state = sample_state()
        descriptor, stores, am = make_sharded_world(state=state)
        connect = peer_connector(stores, dead=("w0", "w1"))
        am_link = FakeLink(am)
        fetcher = ShardedFetcher(
            am_link, connect=connect, poll_interval=0.001, timeout=5.0,
        )
        fetched = fetcher.fetch(descriptor)
        assert_states_equal(fetched, state)
        assert sum(s.served for s in stores.values()) == 0
        assert fetcher.stats["net.shards.replans"] == len(
            descriptor["shards"]
        )

    def test_no_peer_route_fetches_everything_from_the_am(self):
        state = sample_state()
        descriptor, stores, am = make_sharded_world(state=state)
        fetcher = ShardedFetcher(
            FakeLink(am), connect=None, poll_interval=0.001, timeout=5.0,
        )
        fetched = fetcher.fetch(descriptor)
        assert_states_equal(fetched, state)
        assert sum(s.served for s in stores.values()) == 0

    def test_divergent_owner_replica_fails_digest_and_replans(self):
        """The plan digests come from the UPLOADED blob; an owner whose
        frozen copy differs (a divergent replica) must be caught by the
        per-shard digest and re-planned, never silently adopted."""
        state = sample_state()
        blob = StateBlob.encode(state, chunk_bytes=1024)
        descriptor, stores, am = make_sharded_world(
            state=state, am_blob=blob
        )
        # Corrupt w0's frozen copy in place: same geometry, wrong bytes.
        entry = stores["w0"]._entries["t1"]
        poisoned = bytearray(entry.data)
        poisoned[0] ^= 0xFF
        entry.data = bytes(poisoned)
        entry._chunk_digests.clear()
        fetcher = ShardedFetcher(
            FakeLink(am), connect=peer_connector(stores),
            window=1, poll_interval=0.001, timeout=5.0,
        )
        fetched = fetcher.fetch(descriptor)
        assert_states_equal(fetched, state)
        assert fetcher.stats.get("net.shards.replans", 0) >= 1

    def test_delta_rejoin_ships_under_twenty_percent_when_stale(self):
        """The delta acceptance criterion: with <= 20% of the parameters
        changed since the stale snapshot, the rejoin fetches < 20% of
        the full snapshot's bytes."""
        rng = np.random.default_rng(11)
        state = {
            "params": {
                f"p{i}": rng.random(2048) for i in range(10)
            },
            "optimizer": {"lr": 0.1, "velocity": {}},
            "loader": {"cursor": 3},
        }
        stale = {
            "params": {k: v.copy() for k, v in state["params"].items()},
            "optimizer": {"lr": 0.1, "velocity": {}},
            "loader": {"cursor": 3},
        }
        # Touch ~10% of the parameter space: one buffer of ten.
        state["params"]["p4"] += 1.0
        descriptor, stores, am = make_sharded_world(
            owners=("w0", "w1"), state=state, chunk_bytes=2048,
            shard_count=10,
        )
        fetcher = ShardedFetcher(
            FakeLink(am), connect=peer_connector(stores),
            poll_interval=0.001, timeout=5.0,
        )
        fetched = fetcher.fetch(descriptor, stale_state=stale)
        for name, value in state["params"].items():
            np.testing.assert_array_equal(fetched["params"][name], value)
        assert fetched["loader"] == state["loader"]
        total = descriptor["total_bytes"]
        shipped = fetcher.stats.get("net.shards.bytes_fetched", 0)
        skipped = fetcher.stats.get("net.shards.delta_bytes_skipped", 0)
        assert fetcher.stats["net.shards.delta_skipped"] >= 1
        assert shipped + skipped == total
        assert shipped < 0.2 * total, (shipped, total)

    def test_stale_snapshot_with_different_geometry_is_ignored(self):
        state = sample_state()
        descriptor, stores, am = make_sharded_world(state=state)
        other = sample_state(floats=128, seed=9)
        fetcher = ShardedFetcher(
            FakeLink(am), connect=peer_connector(stores),
            poll_interval=0.001, timeout=5.0,
        )
        fetched = fetcher.fetch(descriptor, stale_state=other)
        assert_states_equal(fetched, state)
        assert fetcher.stats.get("net.shards.delta_skipped", 0) == 0

    def test_round_gate_pending_then_open(self):
        state = sample_state()
        descriptor, stores, inner_am = make_sharded_world(state=state)
        gate = [2]

        def am_handler(msg_type, payload):
            if payload.get("probe") and gate[0] > 0:
                gate[0] -= 1
                return {"status": "pending"}
            return inner_am(msg_type, payload)

        fetcher = ShardedFetcher(
            FakeLink(am_handler), connect=peer_connector(stores),
            poll_interval=0.001, timeout=5.0,
        )
        fetched = fetcher.fetch(descriptor)
        assert_states_equal(fetched, state)
        assert gate[0] == 0

    def test_round_gate_refusal_raises(self):
        descriptor, stores, _ = make_sharded_world()

        def am_handler(msg_type, payload):
            return {"ok": False, "reason": "not a planned joiner"}

        fetcher = ShardedFetcher(
            FakeLink(am_handler), connect=peer_connector(stores),
            poll_interval=0.001, timeout=1.0,
        )
        with pytest.raises(TransferError):
            fetcher.fetch(descriptor)


class ShardedHarness:
    """Ring-enabled elastic job with sharded replication, both transports."""

    def __init__(self, transport, spec, initial_workers):
        self.transport = transport
        self.spec = spec
        self.master = NetworkedApplicationMaster(spec, initial_workers)
        self.server = (
            self.master.serve_tcp() if transport == "tcp" else None
        )
        self.mesh = (
            TcpPeerHost() if transport == "tcp" else MemoryPeerHost()
        )
        self.results = {}
        self.errors = {}
        self.threads = {}
        self.agents = {}

    def link(self, node_id, ack_timeout=0.5):
        if self.transport == "tcp":
            link, _transport = tcp_link(
                self.server.host, self.server.port, node_id,
                ack_timeout=ack_timeout, heartbeat_interval=0.2,
            )
            return link
        return memory_link(self.master.core, node_id, ack_timeout=ack_timeout)

    def start_worker(self, worker_id, stale_state=None):
        def run():
            link = self.link(worker_id)
            agent = WorkerAgent(
                worker_id, link, poll_interval=0.02,
                peer_host=self.mesh, stale_state=stale_state,
            )
            self.agents[worker_id] = agent
            try:
                self.results[worker_id] = agent.run()
            except Exception as exc:  # surfaced by the test body
                self.errors[worker_id] = exc
            finally:
                link.close()

        thread = threading.Thread(target=run, daemon=True)
        self.threads[worker_id] = thread
        thread.start()

    def join_all(self, timeout=90.0):
        deadline = time.monotonic() + timeout
        for thread in self.threads.values():
            thread.join(timeout=max(0.1, deadline - time.monotonic()))
        assert not self.errors, self.errors
        assert all(not t.is_alive() for t in self.threads.values()), (
            "workers still running"
        )

    def close(self):
        self.master.close()
        self.mesh.close()


@pytest.fixture(params=["memory", "tcp"])
def transport(request):
    return request.param


def wait_for_iteration(driver, iteration, timeout=30.0):
    deadline = time.monotonic() + timeout
    while True:
        status = driver.request(MessageType.STATUS)
        if status["iteration"] >= iteration:
            return status
        assert time.monotonic() < deadline, status
        time.sleep(0.02)


class TestShardedElasticJob:
    def test_sharded_scale_out_is_bit_identical(self, transport):
        """The tentpole acceptance criterion: with ``replication_shards``
        set, a scale-out's joiners fan in their shards from the owner
        peers — the AM never serves a chunk — and every replica (old and
        new, on both transports) finishes with the same digest."""
        spec = JobSpec(
            iterations=16, coordination_interval=4, iteration_sleep=0.01,
            allreduce_timeout=10.0, sync_ack_timeout=1.0,
            chunk_bytes=1024, replication_shards=2,
        )
        harness = ShardedHarness(transport, spec, ["w0", "w1"])
        try:
            harness.start_worker("w0")
            harness.start_worker("w1")
            driver = harness.link("driver", ack_timeout=2.0)
            wait_for_iteration(driver, 4)
            reply = driver.request(
                MessageType.ADJUSTMENT_REQUEST,
                {"kind": "scale_out", "add": ["w2", "w3"]},
            )
            assert reply["accepted"] is True
            harness.start_worker("w2")
            harness.start_worker("w3")
            harness.join_all()

            status = driver.request(MessageType.STATUS)
            assert status["complete"]
            digests = status["digests"]
            assert len(digests) == 4
            assert len(set(digests.values())) == 1, digests

            snap = harness.master.metrics.snapshot()
            assert snap.get("net.shards.planned", 0) >= 2
            assert snap.get("net.shards.joins_completed", 0) == 2
            # The owners served the chunks peer-side; the AM's own
            # chunk-serving counter never moved.
            assert snap.get("net.chunks.served", 0) == 0
            served = sum(
                harness.agents[w]._shard_store.served
                for w in ("w0", "w1")
                if harness.agents[w]._shard_store is not None
            )
            assert served > 0
        finally:
            harness.close()

    def test_zero_optimizer_job_matches_and_halves_persisted_state(
        self, transport
    ):
        """With the ZeRO axis on, replicas still finish bit-identical
        (stepping uses the full velocity) while each worker's persisted
        optimizer shard is ~1/world of the full buffers."""
        spec = JobSpec(
            iterations=12, coordination_interval=4, iteration_sleep=0.01,
            allreduce_timeout=10.0, sync_ack_timeout=1.0,
            chunk_bytes=1024, replication_shards=2, zero_optimizer=True,
        )
        harness = ShardedHarness(transport, spec, ["w0", "w1"])
        try:
            harness.start_worker("w0")
            harness.start_worker("w1")
            driver = harness.link("driver", ack_timeout=2.0)
            wait_for_iteration(driver, 4)
            reply = driver.request(
                MessageType.ADJUSTMENT_REQUEST,
                {"kind": "scale_out", "add": ["w2"]},
            )
            assert reply["accepted"] is True
            harness.start_worker("w2")
            harness.join_all()

            status = driver.request(MessageType.STATUS)
            assert status["complete"]
            assert len(set(status["digests"].values())) == 1

            shards = {
                w: harness.agents[w].zero_shard
                for w in ("w0", "w1", "w2")
            }
            assert all(s is not None for s in shards.values())
            ranks = sorted(
                (s["rank"], s["world"]) for s in shards.values()
            )
            assert ranks == [(0, 3), (1, 3), (2, 3)]
            total_elems = shards["w0"]["total"]
            for shard in shards.values():
                assert shard["slice"].size <= total_elems // 3 + 1
            # Together the shards tile the flat space exactly.
            from repro.training.optim import ShardedMomentumSGD
            merged = ShardedMomentumSGD.merge_shards(list(shards.values()))
            covered = sum(s["slice"].size for s in shards.values())
            assert covered == total_elems
            assert sum(
                v.size for v in merged["velocity"].values()
            ) == total_elems
        finally:
            harness.close()

    def test_delta_rejoin_skips_matching_shards_end_to_end(self):
        """A joiner holding a fresh stale snapshot (captured from a
        finished worker of an identical run) adopts every matching
        shard and fetches only what changed."""
        spec = JobSpec(
            iterations=16, coordination_interval=4, iteration_sleep=0.01,
            allreduce_timeout=10.0, sync_ack_timeout=1.0,
            chunk_bytes=1024, replication_shards=2,
        )

        def run_once(stale_state=None):
            harness = ShardedHarness("memory", spec, ["w0", "w1"])
            try:
                harness.start_worker("w0")
                harness.start_worker("w1")
                driver = harness.link("driver", ack_timeout=2.0)
                wait_for_iteration(driver, 4)
                driver.request(
                    MessageType.ADJUSTMENT_REQUEST,
                    {"kind": "scale_out", "add": ["w2", "w3"]},
                )
                harness.start_worker("w2", stale_state=stale_state)
                harness.start_worker("w3")
                harness.join_all()
                status = driver.request(MessageType.STATUS)
                assert len(set(status["digests"].values())) == 1
                uploader = next(
                    w for w in ("w0", "w1")
                    if harness.agents[w].final_state is not None
                )
                return harness.agents[uploader].final_state, harness
            finally:
                harness.close()

        # First run: capture a survivor's final state as the "stale"
        # snapshot a rejoining worker would hold on disk.
        final_state, _ = run_once()
        stale = {
            "params": {
                k: np.array(v) for k, v in final_state["params"].items()
            },
            "optimizer": final_state["optimizer"],
            "loader": dict(final_state["loader"]),
        }
        # Second run is deterministic up to the scale-out boundary, so
        # the loader cursor matches and parts of the stale state (at
        # minimum the identically-seeded early layers) may be adopted;
        # the invariant under test is correctness, not the hit rate:
        # digests must agree whatever mix of adopt/fetch happened.
        _, _ = run_once(stale_state=stale)
