"""Shared-memory peer transport tests: ring buffer, frames, reliability.

Every test asserts the no-leak invariant on the way out: after a clean
close — or a SIGKILL — no ``elanshm_*`` segment may survive in
``/dev/shm``.
"""

import glob
import os
import signal
import subprocess
import sys
import textwrap
import threading
import time

import numpy as np
import pytest

from repro.coordination.faults import FaultPlan
from repro.coordination.messages import MessageType
from repro.net import ServerCore, ShmPeerHost, ShmRing, TransportClosed
from repro.net import wire
from repro.net.shm import (
    SHM_NAME_PREFIX,
    ShmServer,
    decode_shm_frame,
    shm_frame_buffers,
    shm_link,
)


def leaked_segments():
    return glob.glob(f"/dev/shm/{SHM_NAME_PREFIX}*")


@pytest.fixture(autouse=True)
def no_segment_leaks():
    before = set(leaked_segments())
    yield
    # Serve/read loops run at a 0.2 s poll cadence; give teardown one
    # full cycle before declaring a leak.
    deadline = time.monotonic() + 2.0
    while time.monotonic() < deadline:
        after = set(leaked_segments()) - before
        if not after:
            return
        time.sleep(0.05)
    assert not after, f"leaked shm segments: {sorted(after)}"


class TestShmRing:
    def test_write_read_round_trip(self):
        ring = ShmRing(capacity=4096)
        try:
            assert ring.write([b"hello", b" ", b"world"]) > 0
            # bytes() drops the ring view immediately: views must not
            # outlive advance()/close().
            assert bytes(ring.read()) == b"hello world"
            ring.advance()
            assert ring.read(timeout=0.05) is None
        finally:
            ring.close(unlink=True)

    def test_attach_sees_creators_records(self):
        ring = ShmRing(capacity=4096)
        other = ShmRing(name=ring.name)
        try:
            ring.write([b"x" * 100])
            assert bytes(other.read()) == b"x" * 100
            other.advance()
        finally:
            other.close()
            ring.close(unlink=True)

    def test_records_never_wrap(self):
        """A record near the lap end starts at offset 0 of the next lap,
        so every read() view is contiguous."""
        ring = ShmRing(capacity=1024)
        try:
            payloads = [os.urandom(300) for _ in range(20)]
            reader_done = []

            def reader():
                for expected in payloads:
                    view = ring.read(timeout=5.0)
                    assert view is not None
                    assert bytes(view) == expected
                    ring.advance()
                reader_done.append(True)

            thread = threading.Thread(target=reader, daemon=True)
            thread.start()
            for payload in payloads:
                assert ring.write([payload], timeout=5.0) > 0
            thread.join(timeout=10.0)
            assert reader_done
        finally:
            ring.close(unlink=True)

    def test_oversized_frame_rejected_loudly(self):
        ring = ShmRing(capacity=1024)
        try:
            with pytest.raises(wire.WireError, match="capacity"):
                ring.write([b"x" * 600])
        finally:
            ring.close(unlink=True)

    def test_write_into_closed_ring_returns_zero(self):
        ring = ShmRing(capacity=1024)
        other = ShmRing(name=ring.name)
        other.mark_closed()
        try:
            assert ring.write([b"data"]) == 0
            assert ring.read(timeout=0.05) is None
        finally:
            other.close()
            ring.close(unlink=True)

    def test_full_ring_blocks_until_advance(self):
        ring = ShmRing(capacity=256)
        try:
            assert ring.write([b"a" * 120]) > 0
            assert ring.write([b"b" * 100]) > 0
            # Full now: a third write must wait for the reader.
            assert ring.write([b"c" * 120], timeout=0.1) == 0
            assert bytes(ring.read()) == b"a" * 120
            ring.advance()
            assert ring.write([b"c" * 120], timeout=5.0) > 0
        finally:
            ring.close(unlink=True)

    def test_double_close_and_double_unlink_tolerated(self):
        ring = ShmRing(capacity=1024)
        other = ShmRing(name=ring.name)
        ring.close(unlink=True)
        ring.close(unlink=True)
        other.close(unlink=True)


class TestShmFrames:
    def test_binary_frame_round_trips_through_a_ring(self):
        ring = ShmRing(capacity=1 << 20)
        try:
            arr = np.arange(777, dtype=np.float64)
            frame = wire.message_frame(
                wire.decode_message({
                    "kind": "msg", "type": "ack", "sender": "w0",
                    "msg_id": 1, "payload": {"grad": arr, "tag": "t"},
                }),
                raw=True,
            )
            ring.write(shm_frame_buffers(frame))
            decoded = decode_shm_frame(ring.read())
            got = decoded["payload"]["grad"]
            assert np.array_equal(got, arr)
            # Zero-copy: the decoded array is a view into the ring.
            assert not got.flags.owndata
            del got, decoded  # release ring views before advance/close
            ring.advance()
        finally:
            ring.close(unlink=True)

    def test_corrupt_record_raises(self):
        ring = ShmRing(capacity=4096)
        try:
            ring.write([b"\x00\x00"])
            with pytest.raises(wire.WireError, match="prefix"):
                decode_shm_frame(ring.read())
            ring.advance()
        finally:
            ring.close(unlink=True)


@pytest.fixture
def shm_server():
    from repro.net.shm import _own_arrays

    # Handlers that retain payload data must copy it out of the ring
    # (decode_shm_frame's contract); ServerCore's reply cache would
    # otherwise pin ring views past the segment's lifetime.
    core = ServerCore(handler=lambda m: {"echo": _own_arrays(m.payload)})
    server = ShmServer(core).start()
    yield server
    server.close()


class TestShmTransport:
    def test_request_reply_with_arrays(self, shm_server):
        link, transport = shm_link(shm_server.path, "w0")
        try:
            arr = np.linspace(0.0, 1.0, 513)
            reply = link.request(MessageType.ACK, {"a": arr})
            assert np.array_equal(reply["echo"]["a"], arr)
            assert transport.server_node == "am"
            assert transport.frames_sent == 1
            assert shm_server.connections_accepted == 1
        finally:
            link.close()

    def test_exactly_once_under_drops_and_duplicates(self, shm_server):
        counted = []
        shm_server.core.handler = lambda m: (
            counted.append(m.payload["i"]) or {"n": len(counted)}
        )
        plan = FaultPlan.for_link(drop_every=3, duplicate_every=4)
        link, _transport = shm_link(
            shm_server.path, "w0", fault_plan=plan, ack_timeout=0.2,
        )
        try:
            for i in range(12):
                link.request(MessageType.ACK, {"i": i})
            # Dedup means the handler saw each message exactly once.
            assert counted == list(range(12))
        finally:
            link.close()

    def test_reset_redials_and_retransmits(self, shm_server):
        plan = FaultPlan.for_link(resets=(2,))
        link, transport = shm_link(
            shm_server.path, "w0", fault_plan=plan, ack_timeout=0.2,
        )
        try:
            for i in range(5):
                assert link.request(MessageType.ACK, {"i": i})["echo"] == {
                    "i": i
                }
            assert transport.reconnects >= 1
            assert shm_server.connections_accepted >= 2
        finally:
            link.close()

    def test_handshake_without_segments_rejected(self, shm_server):
        import socket as socket_mod

        sock = socket_mod.socket(socket_mod.AF_UNIX, socket_mod.SOCK_STREAM)
        try:
            sock.connect(shm_server.path)
            wire.write_frame(sock, wire.hello_frame("w0"), "json")
            answer = wire.read_frame(sock, "json")
            assert answer["kind"] == "reject"
            assert "segments" in answer["reason"]
        finally:
            sock.close()
        assert shm_server.handshakes_rejected == 1

    def test_server_close_unblocks_client(self, shm_server):
        link, _transport = shm_link(shm_server.path, "w0", ack_timeout=0.2,
                                    max_attempts=2)
        try:
            link.request(MessageType.ACK, {})
            shm_server.close()
            from repro.net import RequestTimeout

            with pytest.raises((RequestTimeout, TransportClosed)):
                link.request(MessageType.ACK, {"after": "close"})
        finally:
            link.close()


class TestShmPeerHost:
    def test_serve_connect_release(self):
        host = ShmPeerHost()
        core = ServerCore(handler=lambda m: {"ok": True})
        try:
            addr = host.serve(core, "w0")
            assert addr.startswith("shm://")
            link = host.connect(addr, "w1")
            assert link.request(MessageType.ACK, {})["ok"] is True
            link.close()
            host.release(addr)
            with pytest.raises(TransportClosed):
                host.connect(addr, "w1")
        finally:
            host.close()

    def test_tcp_fallback_for_remote_peers(self):
        from repro.net import TcpPeerHost

        shm_host = ShmPeerHost()
        tcp_host = TcpPeerHost()
        core = ServerCore(handler=lambda m: {"via": "tcp"})
        try:
            addr = tcp_host.serve(core, "w0")
            link = shm_host.connect(addr, "w1")
            assert link.request(MessageType.ACK, {})["via"] == "tcp"
            link.close()
        finally:
            tcp_host.close()
            shm_host.close()


class TestCrashCleanup:
    def test_sigkilled_client_leaves_no_segments(self, shm_server):
        """A worker SIGKILL'd mid-conversation must not leak segments:
        its resource tracker (or the surviving server) unlinks them."""
        script = textwrap.dedent(f"""
            import time
            from repro.coordination.messages import MessageType
            from repro.net.shm import shm_link

            link, _t = shm_link({shm_server.path!r}, "doomed")
            link.request(MessageType.ACK, {{"alive": True}})
            print("READY", flush=True)
            time.sleep(60)
        """)
        env = dict(os.environ)
        src_root = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src_root)
        process = subprocess.Popen(
            [sys.executable, "-c", script], env=env,
            stdout=subprocess.PIPE, text=True,
        )
        try:
            line = process.stdout.readline()
            assert "READY" in line, line
            assert leaked_segments(), "client should hold live segments"
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=10.0)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10.0)
        # The autouse fixture polls the leak set on the way out; here we
        # just wait for the server's EOF probe to notice the death.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline and leaked_segments():
            time.sleep(0.05)
        assert not leaked_segments()
