"""End-to-end elastic jobs over both transports — the acceptance test.

The same chaos schedule (message drops + connection resets on one
worker) is replayed over the in-memory transport and over loopback TCP;
in both cases a scale-up commits mid-training with no message loss and
all replicas finish bit-identical.  One parametrized test body, two
transports — that is the point of the Transport seam.
"""

import threading
import time

import pytest

from repro.coordination.faults import FaultPlan
from repro.coordination.messages import MessageType
from repro.net import (
    JobSpec,
    NetworkedApplicationMaster,
    WorkerAgent,
    memory_link,
    tcp_link,
)

CHAOS_PLAN = FaultPlan(drop_every=9, connection_resets=(5, 17))


class Harness:
    """One job, workers as threads, links per the chosen transport."""

    def __init__(self, transport, spec, initial_workers):
        self.transport = transport
        self.spec = spec
        self.master = NetworkedApplicationMaster(spec, initial_workers)
        self.server = (
            self.master.serve_tcp() if transport == "tcp" else None
        )
        self.results = {}
        self.errors = {}
        self.transports = {}
        self.threads = {}
        self.agents = {}

    def link(self, node_id, fault_plan=None, ack_timeout=0.5):
        if self.transport == "tcp":
            link, transport = tcp_link(
                self.server.host, self.server.port, node_id,
                fault_plan=fault_plan, ack_timeout=ack_timeout,
                heartbeat_interval=0.2,
            )
            self.transports[node_id] = transport
            return link
        link = memory_link(
            self.master.core, node_id, fault_plan=fault_plan,
            ack_timeout=ack_timeout,
        )
        self.transports[node_id] = link.transport
        return link

    def start_worker(self, worker_id, fault_plan=None):
        def run():
            link = self.link(worker_id, fault_plan=fault_plan)
            agent = WorkerAgent(worker_id, link, poll_interval=0.02)
            self.agents[worker_id] = agent
            try:
                self.results[worker_id] = agent.run()
            except Exception as exc:  # surfaced by the test body
                self.errors[worker_id] = exc
            finally:
                link.close()

        thread = threading.Thread(target=run, daemon=True)
        self.threads[worker_id] = thread
        thread.start()

    def join_all(self, timeout=60.0):
        deadline = time.monotonic() + timeout
        for thread in self.threads.values():
            thread.join(timeout=max(0.1, deadline - time.monotonic()))
        assert not self.errors, self.errors
        assert all(not t.is_alive() for t in self.threads.values()), (
            "workers still running"
        )

    def close(self):
        self.master.close()


@pytest.fixture(params=["memory", "tcp"])
def transport(request):
    return request.param


def wait_for_iteration(driver, iteration, timeout=30.0):
    deadline = time.monotonic() + timeout
    while True:
        status = driver.request(MessageType.STATUS)
        if status["iteration"] >= iteration:
            return status
        assert time.monotonic() < deadline, status
        time.sleep(0.02)


class TestElasticJobOverBothTransports:
    def test_scale_up_commits_under_chaos(self, transport):
        """The ISSUE acceptance criterion: a scale-up adjustment commits
        with no message loss while one worker's connection is being
        reset and every 9th of its messages dropped — identically over
        the in-memory transport and loopback TCP."""
        spec = JobSpec(
            iterations=24, coordination_interval=4, iteration_sleep=0.01,
            allreduce_timeout=10.0, sync_ack_timeout=1.0,
            # Small chunks so the snapshot exercises the chunked data
            # plane (several STATE_CHUNKs + round-gated fetches) under
            # the same chaos schedule.
            chunk_bytes=1024,
        )
        harness = Harness(transport, spec, ["w0", "w1"])
        try:
            harness.start_worker("w0", fault_plan=CHAOS_PLAN)
            harness.start_worker("w1")
            driver = harness.link("driver", ack_timeout=2.0)
            wait_for_iteration(driver, 4)
            reply = driver.request(
                MessageType.ADJUSTMENT_REQUEST,
                {"kind": "scale_out", "add": ["w2", "w3"]},
            )
            assert reply["accepted"] is True
            harness.start_worker("w2")
            harness.start_worker("w3")
            harness.join_all()

            status = driver.request(MessageType.STATUS)
            assert status["adjustments_committed"] == 1
            assert status["complete"]
            assert sorted(status["group"]) == ["w0", "w1", "w2", "w3"]
            # No message loss: every replica finished every iteration
            # and all four ended bit-identical.
            digests = status["digests"]
            assert len(digests) == 4
            assert len(set(digests.values())) == 1
            assert harness.results["w2"]["joined_at"] > 0
            assert harness.results["w0"]["iterations_run"] == spec.iterations
            # Every completed rendezvous was evicted once all members
            # collected the mean — no per-iteration gradient retention.
            assert not harness.master._barriers

            # The chaos actually happened on w0's transport.
            chaotic = harness.transports["w0"]
            assert chaotic.reconnects >= 1
            assert harness.master.core.duplicates >= 0

            # The snapshot rode the chunked data plane exactly once:
            # the uploader (w0 — the chaotic worker) streamed each
            # chunk to exactly one handler execution, and both joiners
            # pulled every chunk back out through round-gated fetches.
            summary = harness.agents["w0"].upload_summary
            assert summary is not None
            chunks = summary["chunks"]
            assert chunks >= 2, summary
            core = harness.master.core
            assert core.executions[("w0", "state_chunk")] == chunks
            assert core.executions[("w0", "state_done")] == 1
            assert harness.master._chunks.completed == 1
            snap = harness.master.metrics.snapshot()
            assert snap["net.chunks.received"] == chunks
            assert snap["net.chunks.served"] == 2 * chunks
            assert snap["net.transfers.completed"] == 1
            driver.close()
        finally:
            harness.close()

    def test_scale_in_departs_removed_worker(self, transport):
        spec = JobSpec(
            iterations=20, coordination_interval=4, iteration_sleep=0.01,
        )
        harness = Harness(transport, spec, ["w0", "w1", "w2"])
        try:
            for worker in ("w0", "w1", "w2"):
                harness.start_worker(worker)
            driver = harness.link("driver", ack_timeout=2.0)
            wait_for_iteration(driver, 4)
            reply = driver.request(
                MessageType.ADJUSTMENT_REQUEST,
                {"kind": "scale_in", "remove": ["w2"]},
            )
            assert reply["accepted"] is True
            harness.join_all()

            status = driver.request(MessageType.STATUS)
            assert status["adjustments_committed"] == 1
            assert status["complete"]
            assert sorted(status["group"]) == ["w0", "w1"]
            assert status["departed"] == ["w2"]
            assert len(set(status["digests"].values())) == 1
            assert harness.results["w2"]["removed"]
            driver.close()
        finally:
            harness.close()

    def test_exactly_once_counters_match_across_transports(self, transport):
        """Handler executions are per-(sender, type) exactly-once even
        with aggressive duplication on every worker."""
        spec = JobSpec(iterations=8, coordination_interval=4)
        plan = FaultPlan(duplicate_every=1)
        harness = Harness(transport, spec, ["w0", "w1"])
        try:
            harness.start_worker("w0", fault_plan=plan)
            harness.start_worker("w1", fault_plan=plan)
            harness.join_all(timeout=30.0)
            core = harness.master.core
            # Each worker: 1 join + 8 syncs + 1 coordinate (iter 4)
            # + 1 final upload, each executed exactly once.
            for worker in ("w0", "w1"):
                assert core.executions[(worker, "sync")] == 8
                assert core.executions[(worker, "coordinate")] == 1
                assert core.executions[(worker, "state_upload")] == 1
            assert core.duplicates > 0
        finally:
            harness.close()


class TestJoinOfferLifecycle:
    """Join offers are single-use and generation-checked, so a worker id
    scaled out and back in can never be served a stale snapshot."""

    @staticmethod
    def _drive_to_adjust(net, worker, start=4):
        interval = net.spec.coordination_interval
        for iteration in range(start, start + 20 * interval, interval):
            reply = net._handle_coordinate(worker, iteration)
            if reply["kind"] == "adjust":
                return reply
        raise AssertionError("adjust directive never issued")

    @staticmethod
    def _snapshot():
        import numpy as np

        return {"params": {"w": np.zeros(2)}, "optimizer": {}, "loader": {}}

    def test_offer_is_consumed_on_first_join(self):
        spec = JobSpec(iterations=64, coordination_interval=4)
        net = NetworkedApplicationMaster(spec, ["w0"])
        assert net._handle_adjustment_request(
            {"kind": "scale_out", "add": ["w2"]}
        )["accepted"]
        assert net._handle_join("w2") == {"status": "pending"}
        reply = self._drive_to_adjust(net, "w0")
        assert reply["upload"]
        assert net._handle_state_upload("w0", self._snapshot())["ok"]
        offer = net._handle_join("w2")
        assert offer["status"] == "join"
        assert offer["generation"] == 1
        # Consumed: nothing left to replay to a later incarnation.
        assert net._join_offers == {}

    def test_stale_offer_is_dropped_not_served(self):
        spec = JobSpec(iterations=64, coordination_interval=4)
        net = NetworkedApplicationMaster(spec, ["w0"])
        net._generation = 3
        net._groups[3] = ("w0",)
        # An offer left over from generation 1 (its joiner never polled).
        net._join_offers["w2"] = {"status": "join", "generation": 1}
        assert net._handle_join("w2") == {"status": "pending"}
        assert "w2" not in net._join_offers

    def test_minting_a_new_plan_clears_predecessor_offers(self):
        spec = JobSpec(iterations=64, coordination_interval=4)
        net = NetworkedApplicationMaster(spec, ["w0"])
        net._join_offers["w2"] = {"status": "join", "generation": 5}
        assert net._handle_adjustment_request(
            {"kind": "scale_out", "add": ["w2"]}
        )["accepted"]
        net.am.worker_report("w2")
        reply = self._drive_to_adjust(net, "w0")
        assert reply["kind"] == "adjust"
        # The stale offer died at mint time; w2 now waits for the new
        # plan's snapshot.
        assert "w2" not in net._join_offers
