"""AM failover: journal replay, fencing, and in-flight plan recovery.

Manual protocol drives over the in-memory transport — each test plays
both sides of the wire so the exact crash point is under test control:
the primary is abandoned mid-adjustment and a successor is rebuilt with
:meth:`NetworkedApplicationMaster.from_journal`, after which the
workers' links are redirected (the in-memory stand-in for re-resolving
the AM endpoint) and the protocol must finish what the predecessor
started — or abort it cleanly.
"""

import pytest

from repro.coordination.messages import MessageType
from repro.net import (
    JobSpec,
    NetworkedApplicationMaster,
    RetryableError,
    memory_link,
)


def make_spec(**overrides):
    # ring_enabled=False keeps the drives star-only: no peer addresses
    # to advertise, no ring payloads to install.
    defaults = dict(
        iterations=8, coordination_interval=4, iteration_sleep=0.0,
        ring_enabled=False,
    )
    defaults.update(overrides)
    return JobSpec(**defaults)


class Cluster:
    """One AM plus hand-driven worker links (no WorkerAgent threads)."""

    def __init__(self, spec, workers):
        self.spec = spec
        self.master = NetworkedApplicationMaster(spec, workers)
        self.links = {w: memory_link(self.master.core, w) for w in workers}
        self.driver = memory_link(self.master.core, "driver")

    def join_all(self):
        replies = {
            w: link.request(MessageType.JOIN, {})
            for w, link in self.links.items()
        }
        for reply in replies.values():
            assert reply["status"] == "start"
            assert reply["epoch"] == self.master.epoch
        return replies

    def fail_over(self):
        """Kill the primary, promote a journal-replayed successor."""
        old = self.master
        old.abandon()
        successor = NetworkedApplicationMaster.from_journal(old.journal)
        for link in list(self.links.values()) + [self.driver]:
            link.transport.redirect(successor.core)
        self.master = successor
        return successor

    def coordinate(self, worker, iteration):
        return self.links[worker].request(
            MessageType.COORDINATE,
            {"iteration": iteration, "ring_epoch": -1},
        )

    def final(self, worker, iteration, digest, removed=False):
        return self.links[worker].request(
            MessageType.STATE_UPLOAD,
            {"final": True, "iteration": iteration, "digest": digest,
             "removed": removed},
        )

    def close(self):
        for link in list(self.links.values()) + [self.driver]:
            link.close()
        self.master.close()


@pytest.fixture
def cluster():
    c = Cluster(make_spec(), ["w0", "w1", "w2"])
    yield c
    c.close()


class TestFailover:
    def test_scale_in_plan_survives_failover(self, cluster):
        """A scale-in accepted (and partially acked) by the primary is
        completed by the successor: the journaled request, plan and ack
        reconstruct the commit, and the job finishes on the shrunk
        group with the predecessor's commitments intact."""
        cluster.join_all()
        reply = cluster.driver.request(
            MessageType.ADJUSTMENT_REQUEST,
            {"kind": "scale_in", "remove": ["w2"]},
        )
        assert reply["accepted"] is True
        # w0 reaches the boundary first and acks the directive on the
        # *primary*; the crash happens with that ack journaled.
        directive = cluster.coordinate("w0", 4)
        assert directive["kind"] == "adjust"
        assert directive["group"] == ["w0", "w1"]
        assert directive["upload"] is False  # scale-in replicates nothing

        successor = cluster.fail_over()
        assert successor.epoch == 2

        # The remaining old-group members ack on the successor; their
        # directives must match what the primary handed w0.
        for worker in ("w1", "w2"):
            directive = cluster.coordinate(worker, 4)
            assert directive["kind"] == "adjust", (worker, directive)
            assert directive["group"] == ["w0", "w1"]

        status = cluster.driver.request(MessageType.STATUS)
        assert status["epoch"] == 2
        assert status["generation"] == 1
        assert status["adjustments_committed"] == 1
        assert status["group"] == ["w0", "w1"]
        assert not status["adjustment_pending"]

        cluster.final("w2", 4, None, removed=True)
        cluster.final("w0", 8, "d1")
        cluster.final("w1", 8, "d1")
        status = cluster.driver.request(MessageType.STATUS)
        assert status["complete"]
        assert status["digests"] == {"w0": "d1", "w1": "d1"}
        assert status["departed"] == ["w2"]

    def test_fenced_predecessor_rejects_with_retryable_error(self, cluster):
        """After abandon() every request to the old incarnation gets the
        structured am_superseded error — the signal a worker uses to
        back off and re-enroll, never a silent timeout."""
        cluster.join_all()
        cluster.master.abandon()
        with pytest.raises(RetryableError) as excinfo:
            cluster.driver.request(MessageType.STATUS)
        assert excinfo.value.reason == "am_superseded"

    def test_pending_request_without_plan_is_re_driven(self, cluster):
        """An accepted scale-out whose joiner never arrived before the
        crash is still pending on the successor — the journaled request
        is re-driven, not forgotten."""
        cluster.join_all()
        assert cluster.driver.request(
            MessageType.ADJUSTMENT_REQUEST,
            {"kind": "scale_out", "add": ["w3"]},
        )["accepted"] is True

        cluster.fail_over()
        status = cluster.driver.request(MessageType.STATUS)
        assert status["adjustment_pending"], status
        assert status["generation"] == 0

    def test_scale_out_plan_reinstated_demands_reupload(self):
        """If the primary dies after minting a scale-out plan but before
        the snapshot record landed, the successor reinstates the plan
        and the (live) uploader is told to upload again."""
        cluster = Cluster(make_spec(), ["w0", "w1"])
        try:
            cluster.join_all()
            assert cluster.driver.request(
                MessageType.ADJUSTMENT_REQUEST,
                {"kind": "scale_out", "add": ["w2"]},
            )["accepted"] is True
            # The joiner's first JOIN poll doubles as its worker-report,
            # which schedules the commit at the next boundary.
            joiner = memory_link(cluster.master.core, "w2")
            cluster.links["w2"] = joiner
            assert joiner.request(MessageType.JOIN, {}) == {
                "status": "pending"
            }
            directive = cluster.coordinate("w0", 4)
            assert directive["kind"] == "adjust"
            assert directive["upload"] is True  # w0 is old_group[0]

            successor = cluster.fail_over()
            # The plan survived, but the snapshot died with the primary:
            # the uploader's (retransmitted) coordinate demands it anew.
            directive = cluster.coordinate("w0", 4)
            assert directive["kind"] == "adjust"
            assert directive["upload"] is True
            status = cluster.driver.request(MessageType.STATUS)
            assert status["adjustment_pending"]

            # A mid-stream chunk for a transfer the successor never saw:
            # the uploader is told to restart from chunk 0 rather than
            # stream into a void.
            reply = cluster.links["w0"].request(
                MessageType.STATE_CHUNK, {"transfer_id": "ghost", "seq": 3},
            )
            assert reply["ok"] is False
            assert reply.get("restart") is True
            assert successor.epoch == 2
        finally:
            cluster.close()

    def test_plan_aborted_when_uploader_condemned(self):
        """A scale-out whose elected uploader was condemned before the
        snapshot landed can never replicate: the successor aborts it
        back to the last committed generation instead of wedging the
        joiner forever."""
        cluster = Cluster(make_spec(), ["w0", "w1"])
        try:
            cluster.join_all()
            assert cluster.driver.request(
                MessageType.ADJUSTMENT_REQUEST,
                {"kind": "scale_out", "add": ["w2"]},
            )["accepted"] is True
            joiner = memory_link(cluster.master.core, "w2")
            cluster.links["w2"] = joiner
            joiner.request(MessageType.JOIN, {})
            assert cluster.coordinate("w0", 4)["upload"] is True
            # The uploader's lease expired just before the crash.
            cluster.master.journal.append("condemn", worker="w0")

            successor = cluster.fail_over()
            assert successor.metrics.snapshot().get(
                "am.plans_aborted", 0
            ) == 1
            status = cluster.driver.request(MessageType.STATUS)
            assert status["generation"] == 0
            assert "w0" in status["condemned"]
        finally:
            cluster.close()

    def test_enroll_verdicts(self, cluster):
        """ENROLL answers with the successor's epoch and a verdict: ok
        for members, evicted for the condemned, unknown for strangers."""
        cluster.join_all()
        successor = cluster.fail_over()
        reply = cluster.links["w0"].request(
            MessageType.ENROLL,
            {"generation": 0, "iteration": 4, "ring_epoch": -1},
        )
        assert reply == {
            "epoch": 2, "generation": 0, "status": "ok", "job": "netjob",
        }

        successor.journal.append("condemn", worker="w1")
        with successor._lock:
            successor._condemned["w1"] = 0.0
        reply = cluster.links["w1"].request(
            MessageType.ENROLL, {"generation": 0, "iteration": 4},
        )
        assert reply["status"] == "evicted"

        stranger = memory_link(successor.core, "w9")
        try:
            reply = stranger.request(
                MessageType.ENROLL, {"generation": 0, "iteration": 0},
            )
            assert reply["status"] == "unknown"
        finally:
            stranger.close()

    def test_enrollment_records_peer_address(self, cluster):
        """An ENROLL carrying a peer address registers it with the
        successor — the mesh survives failover even for workers whose
        JOIN-time advertisement predates the journal horizon."""
        cluster.join_all()
        successor = cluster.fail_over()
        cluster.links["w0"].request(
            MessageType.ENROLL,
            {"generation": 0, "iteration": 4, "peer": "127.0.0.1:9999"},
        )
        assert successor._peer_addrs["w0"] == "127.0.0.1:9999"
        assert successor.metrics.snapshot().get("am.enrollments", 0) == 1

    def test_double_failover_keeps_raising_the_epoch(self, cluster):
        """Failover composes: a successor of a successor fences both
        predecessors out (epoch is max-monotone over the journal)."""
        cluster.join_all()
        cluster.fail_over()
        third = cluster.fail_over()
        assert third.epoch == 3
        status = cluster.driver.request(MessageType.STATUS)
        assert status["epoch"] == 3
        assert status["group"] == ["w0", "w1", "w2"]
