"""Externally issued RESIZE directives (scheduler -> AM).

The cluster scheduler drives a job's grow/shrink through a ``RESIZE``
message rather than the driver-facing ``ADJUSTMENT_REQUEST``: the AM
journals the directive's *origin* and its pinned commit boundary, the
pin rounds up to the next coordination boundary, and — the regression
this file exists for — a scheduler-issued shrink accepted before an AM
crash still commits after a journal-replay failover.
"""

import time

import pytest

from repro.cluster import ElasticJobRunner, JobRequest
from repro.coordination.master import (
    AdjustmentKind,
    AdjustmentRequest,
    ApplicationMaster,
)
from repro.net import NetworkedApplicationMaster
from repro.net.transport import memory_link


def make_runner(job_id, iterations=16, sleep=0.0, max_res=4):
    return ElasticJobRunner(
        JobRequest(
            job_id=job_id, iterations=iterations, max_res=max_res,
            iteration_sleep=sleep,
        ),
        transport="memory",
    )


def wait_progress(runner, target, timeout=15.0):
    """Block until the job has trained past ``target`` iterations.

    The live scheduler only resizes (and only fails over) jobs that are
    actually training; acting during the enroll/join window instead
    exercises a startup race no scheduling pass can produce.
    """
    deadline = time.monotonic() + timeout
    while runner.progress() < target:
        assert time.monotonic() < deadline, "no training progress"
        time.sleep(0.02)


class TestResizeMessage:
    def test_resize_journals_origin_and_pin(self):
        runner = make_runner("rz", iterations=16, sleep=0.02)
        runner.start(2)
        try:
            assert runner.resize(3, at_iteration=8, origin="scheduler")
            assert runner.master.wait_complete(timeout=30.0)
        finally:
            runner.close()
        assert not runner.errors
        requests = [
            r["data"] for r in runner.master.journal.records()
            if r["kind"] == "request"
        ]
        assert len(requests) == 1
        assert requests[0]["origin"] == "scheduler"
        assert requests[0]["at_iteration"] == 8
        # The pin is the commit boundary: the plan minted for this
        # request must commit exactly at iteration 8.
        plans = [
            r["data"] for r in runner.master.journal.records()
            if r["kind"] == "plan"
        ]
        assert plans and plans[0]["commit_iteration"] == 8
        digests = set(runner.digests().values())
        assert len(digests) == 1

    def test_pin_must_be_future_boundary(self):
        with pytest.raises(ValueError, match="at_iteration"):
            AdjustmentRequest(
                kind=AdjustmentKind.SCALE_OUT, add_workers=("w9",),
                at_iteration=0,
            ).validate(("w0",))

    def test_pin_rounds_up_to_coordination_boundary(self):
        master = ApplicationMaster(
            "pin", ["w0", "w1"], coordination_interval=4,
        )
        assert master.request_adjustment(AdjustmentRequest(
            kind=AdjustmentKind.SCALE_IN, remove_workers=("w1",),
            at_iteration=6,
        ))
        assert master.commit_iteration == 8  # 6 rounded up to a boundary

    def test_late_pin_degrades_to_natural_boundary(self):
        master = ApplicationMaster(
            "late", ["w0", "w1"], coordination_interval=4,
        )
        master.latest_iteration = 10
        assert master.request_adjustment(AdjustmentRequest(
            kind=AdjustmentKind.SCALE_IN, remove_workers=("w1",),
            at_iteration=4,
        ))
        # The pin is behind the workers: never schedule in the past.
        assert master.commit_iteration == 12

    def test_second_resize_rejected_while_pending(self):
        runner = make_runner("busy", iterations=24, sleep=0.05)
        runner.start(1)
        try:
            assert runner.resize(2, at_iteration=12)
            # The AM accepts one adjustment at a time.
            assert not runner.resize(3, at_iteration=16)
            assert runner.master.wait_complete(timeout=30.0)
        finally:
            runner.close()
        assert not runner.errors
        assert len(runner.master.status()["group"]) == 2


class TestResizeSurvivesFailover:
    def test_scheduler_issued_shrink_survives_am_failover(self):
        """A shrink accepted pre-crash commits after journal replay."""
        runner = make_runner("fo", iterations=24, sleep=0.05)
        runner.start(3)
        try:
            wait_progress(runner, 2)
            assert runner.resize(2, at_iteration=16, origin="scheduler")
            # Kill the primary before the pinned boundary can commit.
            wait_progress(runner, 4)
            old = runner.master
            old.abandon()
            successor = NetworkedApplicationMaster.from_journal(
                old.journal,
            )
            for link in list(runner._links.values()):
                link.transport.redirect(successor.core)
            runner.master = successor
            assert successor.wait_complete(timeout=30.0)
        finally:
            runner.close()
        assert not runner.errors
        status = runner.master.status()
        # The successor re-drove the journaled shrink: it committed at
        # the pinned boundary and the group is down to two workers.
        assert status["adjustments_committed"] == 1
        assert sorted(status["group"]) == ["fo-w0", "fo-w1"]
        requests = [
            r["data"] for r in runner.master.journal.records()
            if r["kind"] == "request"
        ]
        assert requests[0]["origin"] == "scheduler"
        assert requests[0]["at_iteration"] == 16
        plans = [
            r["data"] for r in runner.master.journal.records()
            if r["kind"] == "plan"
        ]
        assert plans[-1]["commit_iteration"] == 16

    def test_resize_after_failover_reaches_successor(self):
        runner = make_runner("fo2", iterations=24, sleep=0.05)
        runner.start(2)
        try:
            wait_progress(runner, 2)
            old = runner.master
            old.abandon()
            successor = NetworkedApplicationMaster.from_journal(old.journal)
            for link in list(runner._links.values()):
                link.transport.redirect(successor.core)
            runner.master = successor
            assert runner.resize(3, at_iteration=12, origin="scheduler")
            assert successor.wait_complete(timeout=30.0)
        finally:
            runner.close()
        assert not runner.errors
        assert len(runner.master.status()["group"]) == 3


class TestLeaseEvictionOrigin:
    def test_lease_eviction_journals_its_origin(self):
        """Auto-evictions and scheduler resizes are distinguishable."""
        from repro.net import JobSpec

        spec = JobSpec(
            iterations=40, coordination_interval=4, iteration_sleep=0.05,
            worker_lease_ttl=0.6, lease_check_interval=0.1,
            ring_enabled=False,
        )
        master = NetworkedApplicationMaster(spec, ["w0", "w1"])
        links = {}
        import threading

        from repro.net.agent import WorkerAgent

        def run(worker_id, die_at):
            link = memory_link(master.core, worker_id, ack_timeout=0.2,
                               heartbeat_interval=0.1)
            links[worker_id] = link
            agent = WorkerAgent(
                worker_id, link, poll_interval=0.02,
                die_at_iteration=die_at,
            )
            try:
                agent.run()
            except BaseException:
                pass

        threads = [
            threading.Thread(target=run, args=("w0", None), daemon=True),
            threading.Thread(target=run, args=("w1", 8), daemon=True),
        ]
        for thread in threads:
            thread.start()
        try:
            # w1 dies at iteration 8; close its link so nothing feeds
            # its lease, then the evictor condemns it (scale-in).
            threads[1].join(timeout=30.0)
            links["w1"].close()
            assert master.wait_complete(timeout=30.0)
        finally:
            for link in links.values():
                link.close()
            master.close()
        evictions = [
            r["data"] for r in master.journal.records()
            if r["kind"] == "request" and r["data"].get("auto")
        ]
        assert evictions
        assert evictions[0]["origin"] == "lease"
