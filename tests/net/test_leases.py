"""Lease-based worker eviction, driven by an injectable clock.

A SIGKILLed worker sends no goodbye: only its expiring heartbeat lease
tells the AM it is gone.  These tests pin the detection pipeline —
message activity renews leases, :meth:`check_leases` condemns expired
holders, condemnation mints the scale-in, fences the straggler out, and
feeds the detection/MTTR telemetry — without any supervisor thread or
wall-clock sleeps (the clock is a test-controlled lambda, which also
keeps the AM from starting its lease loop).
"""

import numpy as np
import pytest

from repro.coordination.messages import MessageType
from repro.net import (
    JobSpec,
    NetworkedApplicationMaster,
    memory_link,
)
from repro.net.master_service import _SyncBarrier


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


TTL = 5.0


@pytest.fixture
def rig():
    spec = JobSpec(
        iterations=8, coordination_interval=4, iteration_sleep=0.0,
        ring_enabled=False, worker_lease_ttl=TTL,
    )
    clock = FakeClock()
    master = NetworkedApplicationMaster(
        spec, ["w0", "w1", "w2"], clock=clock,
    )
    assert master._lease_thread is None  # injectable clock: no thread
    links = {w: memory_link(master.core, w) for w in ("w0", "w1", "w2")}
    for worker, link in links.items():
        assert link.request(MessageType.JOIN, {})["status"] == "start"
    yield master, links, clock
    for link in links.values():
        link.close()
    master.close()


class TestLeases:
    def test_activity_renews_lease_and_nothing_expires(self, rig):
        master, links, clock = rig
        clock.advance(TTL * 0.8)
        for worker, link in links.items():
            link.request(
                MessageType.COORDINATE, {"iteration": 1, "ring_epoch": -1},
            )
        clock.advance(TTL * 0.8)  # past the JOIN-time lease, not the renewal
        assert master.check_leases() == []
        assert master.status()["condemned"] == []

    def test_silent_worker_is_condemned_and_eviction_minted(self, rig):
        master, links, clock = rig
        clock.advance(TTL * 0.5)
        for worker in ("w0", "w1"):  # w2 goes silent
            links[worker].request(
                MessageType.COORDINATE, {"iteration": 1, "ring_epoch": -1},
            )
        clock.advance(TTL * 0.7)
        assert master.check_leases() == ["w2"]

        status = master.status()
        assert status["condemned"] == ["w2"]
        assert status["adjustment_pending"]  # the auto scale-in
        snap = master.metrics.snapshot()
        assert snap.get("worker.lease.expired") == 1
        assert snap.get("am.evictions") == 1
        detection = snap["failure.detection_latency_seconds"]
        assert detection["count"] == 1
        # Detection latency is the sweep's lag past the lease deadline,
        # so it is bounded by how far the clock jumped.
        assert 0.0 <= detection["max"] <= TTL
        # The eviction request is journaled as auto=True so a successor
        # re-drives it as its own.
        requests = [
            r for r in master.journal.records() if r["kind"] == "request"
        ]
        assert requests and requests[-1]["data"] == {
            "kind": "scale_in", "add": [], "remove": ["w2"], "auto": True,
            "origin": "lease",
        }

    def test_whole_group_is_never_evicted(self, rig):
        master, links, clock = rig
        clock.advance(TTL * 2)
        condemned = master.check_leases()
        # All three leases expired; all three are condemned, but no
        # eviction request can be minted (it would empty the job).
        assert sorted(condemned) == ["w0", "w1", "w2"]
        assert not master.status()["adjustment_pending"]
        # Condemnation is idempotent: the next sweep finds nobody new.
        clock.advance(TTL)
        assert master.check_leases() == []

    def test_parked_barrier_amnesty(self, rig):
        """A worker whose request is parked in an open sync barrier the
        AM itself is holding has proven liveness: it must be re-leased,
        not condemned, even though it produces no new traffic."""
        master, links, clock = rig
        barrier = _SyncBarrier(expected=("w0", "w1", "w2"))
        barrier.contributions["w2"] = {"g": np.zeros(2)}
        with master._lock:
            master._barriers[(0, 4)] = barrier

        clock.advance(TTL * 1.1)
        condemned = master.check_leases()
        assert sorted(condemned) == ["w0", "w1"]
        assert "w2" not in condemned
        # The amnesty minted a fresh lease: w2 survives the next sweep
        # too while the barrier stays open.
        clock.advance(TTL * 0.5)
        assert master.check_leases() == []

    def test_condemned_worker_is_fenced_on_coordinate(self, rig):
        """A condemned-but-merely-slow worker must not keep feeding a
        generation that is being rebuilt without it: its COORDINATE is
        answered with the structured retryable error, its ENROLL with
        the evicted verdict."""
        master, links, clock = rig
        clock.advance(TTL * 0.5)
        for worker in ("w0", "w1"):
            links[worker].request(
                MessageType.COORDINATE, {"iteration": 1, "ring_epoch": -1},
            )
        clock.advance(TTL * 0.7)
        assert master.check_leases() == ["w2"]

        from repro.net import RetryableError

        with pytest.raises(RetryableError) as excinfo:
            links["w2"].request(
                MessageType.COORDINATE, {"iteration": 2, "ring_epoch": -1},
            )
        assert excinfo.value.reason == "am_superseded"
        reply = links["w2"].request(
            MessageType.ENROLL, {"generation": 0, "iteration": 2},
        )
        assert reply["status"] == "evicted"

    def test_eviction_commits_and_feeds_mttr(self, rig):
        """Survivors coordinating through the boundary commit the auto
        scale-in; the commit closes the MTTR measurement the
        condemnation opened."""
        master, links, clock = rig
        clock.advance(TTL * 0.5)
        for worker in ("w0", "w1"):
            links[worker].request(
                MessageType.COORDINATE, {"iteration": 1, "ring_epoch": -1},
            )
        clock.advance(TTL * 0.7)
        assert master.check_leases() == ["w2"]

        for worker in ("w0", "w1"):
            directive = links[worker].request(
                MessageType.COORDINATE, {"iteration": 4, "ring_epoch": -1},
            )
            assert directive["kind"] == "adjust", (worker, directive)
            assert directive["group"] == ["w0", "w1"]

        status = master.status()
        assert status["adjustments_committed"] == 1
        assert status["group"] == ["w0", "w1"]
        assert status["departed"] == ["w2"]
        snap = master.metrics.snapshot()
        mttr = snap["failure.mttr_seconds"]
        assert mttr["count"] == 1
        assert mttr["max"] >= 0.0

    def test_lease_state_survives_failover_via_journal(self, rig):
        """Condemnation is journaled before it is acted on: a successor
        AM still knows w2 is condemned and re-mints the eviction."""
        master, links, clock = rig
        clock.advance(TTL * 0.5)
        for worker in ("w0", "w1"):
            links[worker].request(
                MessageType.COORDINATE, {"iteration": 1, "ring_epoch": -1},
            )
        clock.advance(TTL * 0.7)
        assert master.check_leases() == ["w2"]

        master.abandon()
        successor = NetworkedApplicationMaster.from_journal(master.journal)
        try:
            status = successor.status()
            assert status["condemned"] == ["w2"]
            assert status["adjustment_pending"]
        finally:
            successor.close()
