"""TCP transport tests: handshake, heartbeat, reconnect, reliability."""

import socket
import time

import pytest

from repro.coordination.faults import FaultPlan
from repro.coordination.messages import MessageType
from repro.net import ServerCore, TcpServer, tcp_link
from repro.net import wire
from repro.net.tcp import TcpTransport


@pytest.fixture
def server():
    core = ServerCore(handler=lambda m: {"echo": dict(m.payload)})
    tcp = TcpServer(core).start()
    yield tcp
    tcp.close()


class TestHandshake:
    def test_request_reply_over_loopback(self, server):
        link, transport = tcp_link(server.host, server.port, "w0")
        try:
            assert link.request(MessageType.ACK, {"x": 1}) == {"echo": {"x": 1}}
            assert transport.server_node == "am"
            assert server.connections_accepted == 1
        finally:
            link.close()

    def test_version_mismatch_is_rejected(self, server):
        sock = socket.create_connection((server.host, server.port))
        try:
            hello = wire.hello_frame("w0")
            hello["version"] = wire.PROTOCOL_VERSION + 1
            wire.write_frame(sock, hello)
            answer = wire.read_frame(sock)
            assert answer["kind"] == "reject"
            assert "version mismatch" in answer["reason"]
            # The server closes after rejecting.
            assert wire.read_frame(sock) is None
        finally:
            sock.close()
        assert server.handshakes_rejected == 1
        assert server.connections_accepted == 0

    def test_client_raises_on_rejection(self, server):
        transport = TcpTransport(
            server.host, server.port, "w0", on_reply=lambda *a: None,
            heartbeat_interval=None,
        )
        # Sabotage the advertised version to provoke the reject path.
        real = wire.hello_frame
        try:
            wire.hello_frame = lambda node, codec="json", binary=True: {
                **real(node, codec, binary), "version": 999,
            }
            with pytest.raises(wire.WireError, match="rejected"):
                transport.connect()
        finally:
            wire.hello_frame = real
            transport.close()


class TestHeartbeat:
    def test_keepalive_acked(self, server):
        link, transport = tcp_link(
            server.host, server.port, "w0", heartbeat_interval=0.05
        )
        try:
            deadline = time.monotonic() + 2.0
            while transport.heartbeats_acked < 2:
                assert time.monotonic() < deadline, "no heartbeat acks"
                time.sleep(0.02)
            assert server.heartbeats_received >= 2
            assert transport.last_heartbeat_rtt is not None
            assert "w0" in server.last_seen
        finally:
            link.close()


class TestReconnect:
    def test_reset_reconnects_and_resends(self, server):
        plan = FaultPlan(connection_resets=(2,))
        link, transport = tcp_link(
            server.host, server.port, "w0",
            fault_plan=plan, ack_timeout=0.5, heartbeat_interval=None,
        )
        try:
            for i in range(3):
                reply = link.request(MessageType.ACK, {"i": i})
                assert reply == {"echo": {"i": i}}
            assert transport.reconnects == 1
            assert link.resends >= 1
            assert server.connections_accepted == 2
            # Exactly-once despite the loss.
            assert server.core.executions[("w0", "ack")] == 3
        finally:
            link.close()

    def test_server_restart_mid_session(self):
        """A server that goes away entirely: the client's reconnect
        backoff keeps retrying until a new listener is up on the port."""
        core = ServerCore(handler=lambda m: {"pong": True})
        first = TcpServer(core).start()
        port = first.port
        link, transport = tcp_link(
            "127.0.0.1", port, "w0", ack_timeout=0.5,
            heartbeat_interval=None,
        )
        try:
            assert link.request(MessageType.ACK) == {"pong": True}
            first.close()
            # Rebinding the port races the old connection's teardown
            # (it sits in FIN_WAIT until the client notices the EOF).
            second = None
            for _ in range(100):
                try:
                    second = TcpServer(core, port=port).start()
                    break
                except OSError:
                    time.sleep(0.05)
            assert second is not None, "port never became free"
            try:
                assert link.request(MessageType.ACK) == {"pong": True}
                assert transport.reconnects >= 1
            finally:
                second.close()
        finally:
            link.close()

    def test_closed_transport_refuses_sends(self, server):
        link, transport = tcp_link(server.host, server.port, "w0")
        link.close()
        assert not transport.connected
        from repro.net import RequestTimeout

        with pytest.raises(RequestTimeout):
            link.request(MessageType.ACK, ack_timeout=0.01)


class TestDropsOverTcp:
    def test_drop_schedule_applies_to_socket_sends(self, server):
        plan = FaultPlan(drop_every=2)
        link, transport = tcp_link(
            server.host, server.port, "w0",
            fault_plan=plan, ack_timeout=0.1, heartbeat_interval=None,
        )
        try:
            for i in range(4):
                assert link.request(MessageType.ACK, {"i": i})["echo"]["i"] == i
            assert transport._channel.dropped >= 2
            assert link.resends >= 2
            assert server.core.executions[("w0", "ack")] == 4
        finally:
            link.close()


class TestRawSocketErrors:
    def test_write_oserror_is_lost_send_not_crash(self, server):
        """A real broken pipe / ECONNRESET during the socket write must
        surface as a lost send the timeout-resend recovers — never as an
        exception out of ReliableLink.request."""
        link, transport = tcp_link(
            server.host, server.port, "w0", ack_timeout=0.5,
            heartbeat_interval=None,
        )
        try:
            real_deliver = transport._channel._deliver
            failures = []

            def broken_pipe_once(message):
                if not failures:
                    failures.append(True)
                    transport._drop_connection()
                    raise OSError(32, "Broken pipe")
                return real_deliver(message)

            transport._channel._deliver = broken_pipe_once
            assert link.request(MessageType.ACK, {"x": 1})["echo"] == {"x": 1}
            assert failures, "the injected write failure never fired"
            assert link.resends >= 1
            assert transport.reconnects >= 1
        finally:
            link.close()

    def test_peer_shutdown_mid_session_recovers(self, server):
        """Shut the socket's write half down under the transport: the
        next request must reconnect and succeed rather than raise."""
        link, transport = tcp_link(
            server.host, server.port, "w0", ack_timeout=0.5,
            heartbeat_interval=None,
        )
        try:
            assert link.request(MessageType.ACK, {"i": 0})["echo"]["i"] == 0
            transport._sock.shutdown(socket.SHUT_RDWR)
            assert link.request(MessageType.ACK, {"i": 1})["echo"]["i"] == 1
            assert transport.reconnects >= 1
        finally:
            link.close()


class TestHeartbeatBookkeeping:
    def test_acked_timestamps_are_pruned(self, server):
        """Every acked heartbeat's timestamp is popped; the map only
        ever holds the in-flight few, not one entry per beat."""
        link, transport = tcp_link(
            server.host, server.port, "w0", heartbeat_interval=0.03
        )
        try:
            deadline = time.monotonic() + 3.0
            while transport.heartbeats_acked < 5:
                assert time.monotonic() < deadline, "heartbeats not acked"
                time.sleep(0.02)
            assert len(transport._heartbeat_sent_at) <= 2
        finally:
            link.close()

    def test_drop_connection_clears_inflight_heartbeats(self, server):
        link, transport = tcp_link(
            server.host, server.port, "w0", heartbeat_interval=None
        )
        try:
            transport._heartbeat_sent_at[1] = time.perf_counter()
            transport._drop_connection()
            assert transport._heartbeat_sent_at == {}
        finally:
            link.close()
