"""Goodput-SLO chaos soak over both transports — the acceptance drill.

One deterministic schedule — worker w2 silently dies at iteration 9
(lease eviction), the AM is killed at iteration 14 (journal-replayed
successor) — is run once per transport and every assertion reads the
cached run: the SLO floors hold, the survivors finish bit-identical,
and the recovery *counts* match across memory and TCP even though the
timings differ.

This is also the networked-path coverage for RuntimeTelemetry: the
failure.detection_latency_seconds and failure.mttr_seconds histograms
asserted here are fed by the lease evictor inside the message-driven
AM, on the in-memory transport and on loopback TCP alike.
"""

import pytest

from repro.net import ChaosSoak, JobSpec, SoakSchedule

TRANSPORTS = ("memory", "tcp")

#: Generous ceiling: TCP recovery pays reconnect backoff on dead peer
#: links, which lands well past the memory transport's MTTR.
MTTR_CEILING = 30.0


def make_soak(transport):
    spec = JobSpec(
        seed=7,
        iterations=24,
        coordination_interval=4,
        iteration_sleep=0.05,
        allreduce_timeout=15.0,
        sync_ack_timeout=0.3,
        chunk_bytes=1024,
        worker_lease_ttl=1.2,
        lease_check_interval=0.2,
    )
    schedule = SoakSchedule(
        worker_kills={"w2": 9}, am_kill_iteration=14,
    )
    return ChaosSoak(
        transport, spec, ["w0", "w1", "w2"], schedule, timeout=120.0,
    )


@pytest.fixture(scope="module")
def soaks():
    """Run the identical schedule once per transport; cache the runs."""
    runs = {}
    for transport in TRANSPORTS:
        soak = make_soak(transport)
        report = soak.run()
        runs[transport] = (soak, report)
    return runs


@pytest.fixture(params=TRANSPORTS)
def soaked(request, soaks):
    return soaks[request.param]


class TestChaosSoak:
    def test_slo_holds(self, soaked):
        soak, report = soaked
        report.assert_slo(goodput_floor=0.3, mttr_ceiling=MTTR_CEILING)
        assert 0.0 < report.goodput <= 1.0
        assert report.wall_seconds > 0

    def test_workers_finished_or_died_on_schedule(self, soaked):
        soak, report = soaked
        assert soak.errors == {}
        assert soak.killed == ["w2"]
        assert sorted(soak.results) == ["w0", "w1"]

    def test_survivors_bit_identical(self, soaked):
        soak, report = soaked
        digests = soak.master.status()["digests"]
        assert sorted(digests) == ["w0", "w1"]
        assert len(set(digests.values())) == 1, digests

    def test_failover_and_eviction_counts(self, soaked):
        soak, report = soaked
        assert soak.failed_over
        assert report.counts["failovers"] == 1
        assert report.counts["condemned"] == 1
        assert report.counts["evictions_minted"] == 1
        status = soak.master.status()
        assert status["epoch"] == 2
        # The eviction committed before the AM kill, so the successor
        # replays w2 as departed, not still-condemned.
        assert "w2" in status["departed"]
        # The initial scale hosts no adjustment; the only commit is the
        # lease eviction's shrink.
        assert status["adjustments_committed"] == 1
        assert status["group"] == ["w0", "w1"]

    def test_telemetry_histograms_fed_from_networked_path(self, soaked):
        """Satellite coverage: record_detection/record_recovery driven
        by the networked AM (lease expiry -> condemn -> commit), not by
        the single-process runtime."""
        soak, report = soaked
        snap = soak.master.metrics.snapshot()
        detection = snap["failure.detection_latency_seconds"]
        mttr = snap["failure.mttr_seconds"]
        assert detection["count"] >= 1
        assert mttr["count"] >= 1
        assert report.mean_detection is not None
        assert report.mean_mttr is not None
        assert report.mean_mttr <= MTTR_CEILING
        assert report.recoveries >= 1

    def test_goodput_gauges_exported(self, soaked):
        soak, report = soaked
        snap = soak.master.metrics.snapshot()
        assert snap["goodput.ratio"] == pytest.approx(report.goodput)
        assert snap["goodput.wall_seconds"] == pytest.approx(
            report.wall_seconds
        )

    def test_recovery_counts_match_across_transports(self, soaks):
        """The schedule is keyed by iteration, so what happened — as
        opposed to how long it took — must replay identically over the
        in-memory transport and loopback TCP."""
        reports = {t: report for t, (_, report) in soaks.items()}
        for label in (
            "failovers", "condemned", "evictions_minted", "workers_evicted",
        ):
            values = {t: r.counts[label] for t, r in reports.items()}
            assert len(set(values.values())) == 1, (label, values)

    def test_digests_match_across_transports(self, soaks):
        """Same seed, same schedule, same survivors: the final model is
        bit-identical no matter which wire carried the job."""
        digests = {
            t: set(soak.master.status()["digests"].values())
            for t, (soak, _) in soaks.items()
        }
        assert digests["memory"] == digests["tcp"]
