"""Transport-seam tests: ReliableLink, ServerCore, InMemoryTransport."""

import threading
import time

import pytest

from repro.coordination.faults import ExponentialBackoff, FaultPlan
from repro.coordination.messages import MessageType
from repro.net import (
    InMemoryTransport,
    ReliableLink,
    RemoteError,
    RequestTimeout,
    ServerCore,
    Transport,
    TransportFaults,
    memory_link,
)
from repro.observability import Tracer


def echo_core(**kwargs):
    return ServerCore(
        handler=lambda message: {"echo": dict(message.payload)}, **kwargs
    )


class TestTransportProtocol:
    def test_in_memory_transport_satisfies_protocol(self):
        transport = InMemoryTransport("w0", echo_core(), on_reply=lambda *a: None)
        assert isinstance(transport, Transport)

    def test_faulty_channel_satisfies_protocol(self):
        from repro.coordination.messages import FaultyChannel

        assert isinstance(FaultyChannel(lambda m: None), Transport)


class TestReliableLink:
    def test_round_trip(self):
        link = memory_link(echo_core(), "w0")
        assert link.request(MessageType.ACK, {"x": 1}) == {"echo": {"x": 1}}

    def test_drops_are_resent_exactly_once_executed(self):
        core = echo_core()
        link = memory_link(
            core, "w0", fault_plan=FaultPlan(drop_every=2), ack_timeout=0.05
        )
        for i in range(6):
            assert link.request(MessageType.ACK, {"i": i})["echo"] == {"i": i}
        assert link.resends > 0
        # Every request executed exactly once despite the drops.
        assert core.executions[("w0", "ack")] == 6

    def test_duplicates_absorbed_without_reexecution(self):
        core = echo_core()
        link = memory_link(
            core, "w0", fault_plan=FaultPlan(duplicate_every=1)
        )
        for i in range(5):
            link.request(MessageType.ACK, {"i": i})
        assert core.duplicates == 5
        assert core.executions[("w0", "ack")] == 5

    def test_remote_error_propagates(self):
        def explode(message):
            raise ValueError("handler went boom")

        link = memory_link(ServerCore(handler=explode), "w0")
        with pytest.raises(RemoteError, match="handler went boom"):
            link.request(MessageType.ACK)

    def test_timeout_when_everything_dropped(self):
        link = memory_link(
            echo_core(), "w0", fault_plan=FaultPlan(drop_every=1),
            ack_timeout=0.01, max_attempts=3,
        )
        with pytest.raises(RequestTimeout):
            link.request(MessageType.ACK)

    def test_per_sender_dedup_keys_do_not_collide(self):
        """Two clients' message ids could coincide (the epoch nonce
        makes it unlikely, not impossible); the server must still treat
        their requests as distinct because it keys on the sender too."""
        core = echo_core()
        link_a = memory_link(core, "a")
        link_b = memory_link(core, "b")
        assert link_a.request(MessageType.ACK, {"who": "a"})["echo"]["who"] == "a"
        assert link_b.request(MessageType.ACK, {"who": "b"})["echo"]["who"] == "b"
        assert core.duplicates == 0
        assert core.executions == {("a", "ack"): 1, ("b", "ack"): 1}


class TestConnectionResets:
    def test_reset_loses_message_then_reconnects(self):
        core = echo_core()
        link = memory_link(
            core, "w0",
            fault_plan=FaultPlan(connection_resets=(2,)), ack_timeout=0.05,
        )
        for i in range(4):
            link.request(MessageType.ACK, {"i": i})
        transport = link.transport
        assert transport.reconnects == 1
        assert link.resends >= 1
        assert core.executions[("w0", "ack")] == 4

    def test_injected_delay_applies(self):
        faults = TransportFaults(delays={1: 0.01, 3: 0.02})
        first = faults.next_send()
        assert first.delay == 0.01 and not first.reset
        assert faults.next_send().delay == 0.0
        assert faults.next_send().delay == 0.02
        assert faults.delays_injected == 2

    def test_from_plan_ignores_pure_loss_plans(self):
        assert TransportFaults.from_plan(FaultPlan(drop_every=3)) is None
        assert TransportFaults.from_plan(None) is None
        faults = TransportFaults.from_plan(
            FaultPlan(net_delays={2: 0.1}, connection_resets=(4,))
        )
        assert faults.delays == {2: 0.1}
        assert faults.resets == frozenset({4})


class TestServerCore:
    def test_concurrent_duplicate_waits_for_original(self):
        release = threading.Event()

        def slow(message):
            release.wait(2.0)
            return {"done": True}

        core = ServerCore(handler=slow, reply_wait=5.0)
        from repro.coordination.messages import MessageFactory

        message = MessageFactory().make(MessageType.ACK, "w0", {})
        replies = []
        threads = [
            threading.Thread(
                target=lambda: replies.append(core.dispatch(message))
            )
            for _ in range(2)
        ]
        threads[0].start()
        threads[1].start()
        release.set()
        for thread in threads:
            thread.join(timeout=5.0)
        assert replies == [{"done": True}, {"done": True}]
        assert core.executions[("w0", "ack")] == 1
        assert core.duplicates == 1

    def test_tracing_spans_emitted(self):
        tracer = Tracer(process="test")
        core = echo_core(tracer=tracer)
        link = memory_link(
            core, "w0",
            fault_plan=FaultPlan(connection_resets=(1,)),
            ack_timeout=0.05, tracer=tracer,
        )
        link.request(MessageType.ACK, {"x": 1})
        names = {event["name"] for event in tracer.to_events()}
        assert {"net.send", "net.recv", "net.reconnect"} <= names


class TestIncarnations:
    def test_restarted_sender_is_not_misread_as_duplicate(self):
        """A worker restarted with the same worker id (the self-healing
        recovery model) allocates ids from a fresh epoch, so its first
        requests execute instead of being answered from the reply cache
        of an unrelated earlier message."""
        core = echo_core()
        first = memory_link(core, "w0")
        assert first.request(MessageType.ACK, {"inc": 1})["echo"]["inc"] == 1
        first.close()
        second = memory_link(core, "w0")
        assert second.request(MessageType.ACK, {"inc": 2})["echo"]["inc"] == 2
        assert core.duplicates == 0
        assert core.executions[("w0", "ack")] == 2

    def test_factory_epochs_disjoint_across_incarnations(self):
        from repro.coordination.messages import MessageFactory

        a = MessageFactory()
        b = MessageFactory()
        ids_a = {a.make(MessageType.ACK, "w0", {}).msg_id for _ in range(50)}
        ids_b = {b.make(MessageType.ACK, "w0", {}).msg_id for _ in range(50)}
        assert not ids_a & ids_b

    def test_epoch_zero_keeps_small_deterministic_ids(self):
        from repro.coordination.messages import MessageFactory

        factory = MessageFactory(epoch=0)
        assert factory.make(MessageType.ACK, "w0", {}).msg_id == 1
        assert factory.make(MessageType.ACK, "w0", {}).msg_id == 2


class TestDedupWindow:
    def test_reply_cache_evicts_after_ttl(self):
        """The dedup window is bounded: entries older than dedup_ttl are
        evicted, so a long-running server does not keep every
        (sender, msg_id) forever."""
        core = echo_core(dedup_ttl=0.02)
        link = memory_link(core, "w0")
        link.request(MessageType.ACK, {"i": 0})
        time.sleep(0.05)
        link.request(MessageType.ACK, {"i": 1})
        assert core.evicted >= 1
        assert len(core._replies) == 1  # only the fresh reply is cached

    def test_ttl_none_disables_eviction(self):
        core = echo_core(dedup_ttl=None)
        link = memory_link(core, "w0")
        for i in range(3):
            link.request(MessageType.ACK, {"i": i})
        assert core.evicted == 0
        assert len(core._replies) == 3

    def test_entries_inside_ttl_still_dedup(self):
        core = echo_core(dedup_ttl=60.0)
        link = memory_link(
            core, "w0", fault_plan=FaultPlan(duplicate_every=1)
        )
        for i in range(4):
            link.request(MessageType.ACK, {"i": i})
        assert core.duplicates == 4
        assert core.executions[("w0", "ack")] == 4
