"""Peer-host lifecycle tests, parametrized over all three transports."""

import threading

import numpy as np
import pytest

from repro.coordination.messages import MessageType
from repro.net import (
    MemoryPeerHost,
    ServerCore,
    ShmPeerHost,
    TcpPeerHost,
    TransportClosed,
)
from repro.net.peers import parse_peer_addr, peer_scheme


def make_core(tag="srv"):
    return ServerCore(handler=lambda m: {"ok": True, "tag": tag},
                      node_id=tag)


@pytest.fixture(params=["memory", "tcp", "shm"])
def host(request):
    built = {
        "memory": MemoryPeerHost,
        "tcp": TcpPeerHost,
        "shm": ShmPeerHost,
    }[request.param]()
    yield built
    built.close()


class TestPeerHostLifecycle:
    def test_serve_connect_round_trip(self, host):
        addr = host.serve(make_core(), "w0")
        assert peer_scheme(addr) in ("mem", "tcp", "shm")
        link = host.connect(addr, "w1")
        try:
            assert link.request(MessageType.ACK, {})["ok"] is True
        finally:
            link.close()

    def test_connect_after_release_raises(self, host):
        addr = host.serve(make_core(), "w0")
        host.release(addr)
        with pytest.raises(TransportClosed):
            host.connect(addr, "w1")

    def test_release_is_idempotent(self, host):
        addr = host.serve(make_core(), "w0")
        host.release(addr)
        host.release(addr)

    def test_re_serve_same_worker_after_release(self, host):
        first = host.serve(make_core("first"), "w0")
        host.release(first)
        second = host.serve(make_core("second"), "w0")
        link = host.connect(second, "w1")
        try:
            assert link.request(MessageType.ACK, {})["tag"] == "second"
        finally:
            link.close()

    def test_close_mid_send_fails_the_request_not_the_process(self, host):
        from repro.net import RequestTimeout

        addr = host.serve(make_core(), "w0")
        link = host.connect(addr, "w1", ack_timeout=0.1, max_attempts=2)
        try:
            assert link.request(MessageType.ACK, {})["ok"] is True
            host.close()
            with pytest.raises((RequestTimeout, TransportClosed)):
                link.request(
                    MessageType.ACK,
                    {"arr": np.zeros(16), "after": "close"},
                )
        finally:
            link.close()


class TestCrossScheme:
    def test_memory_host_rejects_foreign_schemes(self):
        host = MemoryPeerHost()
        try:
            for addr in ("tcp://127.0.0.1:1", "shm:///tmp/x.sock"):
                with pytest.raises(ValueError, match="mem://"):
                    host.connect(addr, "w1")
        finally:
            host.close()

    def test_tcp_host_rejects_foreign_schemes(self):
        host = TcpPeerHost()
        try:
            for addr in ("mem://w0", "shm:///tmp/x.sock"):
                with pytest.raises(ValueError, match="tcp://"):
                    host.connect(addr, "w1")
        finally:
            host.close()

    def test_shm_host_rejects_mem_but_falls_back_to_tcp(self):
        shm_host = ShmPeerHost()
        tcp_host = TcpPeerHost()
        try:
            with pytest.raises(ValueError):
                shm_host.connect("mem://w0", "w1")
            addr = tcp_host.serve(make_core("remote"), "w0")
            link = shm_host.connect(addr, "w1")
            try:
                assert link.request(MessageType.ACK, {})["tag"] == "remote"
            finally:
                link.close()
        finally:
            tcp_host.close()
            shm_host.close()


class TestMemoryHostRace:
    def test_connect_loses_race_with_release(self, monkeypatch):
        """A release between registry lookup and link construction must
        surface as TransportClosed, never hand out a link to a retired
        core."""
        host = MemoryPeerHost()
        core = make_core()
        addr = host.serve(core, "w0")

        import repro.net.peers as peers_mod

        real_memory_link = peers_mod.memory_link

        def racing_link(*args, **kwargs):
            link = real_memory_link(*args, **kwargs)
            host.release(addr)  # the race: release wins mid-connect
            return link

        monkeypatch.setattr(peers_mod, "memory_link", racing_link)
        with pytest.raises(TransportClosed, match="released during connect"):
            host.connect(addr, "w1")
        host.close()

    def test_connect_loses_race_with_close(self, monkeypatch):
        host = MemoryPeerHost()
        addr = host.serve(make_core(), "w0")

        import repro.net.peers as peers_mod

        real_memory_link = peers_mod.memory_link

        def racing_link(*args, **kwargs):
            link = real_memory_link(*args, **kwargs)
            host.close()
            return link

        monkeypatch.setattr(peers_mod, "memory_link", racing_link)
        with pytest.raises(TransportClosed):
            host.connect(addr, "w1")

    def test_concurrent_release_and_close_is_clean(self):
        host = MemoryPeerHost()
        addrs = [host.serve(make_core(), f"w{i}") for i in range(8)]
        threads = [
            threading.Thread(target=host.release, args=(addr,))
            for addr in addrs
        ] + [threading.Thread(target=host.close) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5.0)
        assert all(not t.is_alive() for t in threads)
        with pytest.raises(TransportClosed):
            host.serve(make_core(), "w9")


class TestAddressParsing:
    def test_scheme_dispatch(self):
        assert peer_scheme("mem://w0") == "mem"
        assert peer_scheme("tcp://127.0.0.1:9999") == "tcp"
        assert peer_scheme("shm:///tmp/peer.sock") == "shm"

    def test_unknown_scheme_rejected(self):
        for bad in ("udp://x:1", "w0", "tcp:/oops", "://host:1"):
            with pytest.raises(ValueError, match="unknown peer address"):
                peer_scheme(bad)

    def test_empty_endpoint_rejected(self):
        for bad in ("mem://", "tcp://", "shm://"):
            with pytest.raises(ValueError, match="no endpoint"):
                peer_scheme(bad)

    def test_parse_valid_tcp_addr(self):
        assert parse_peer_addr("tcp://127.0.0.1:8080") == ("127.0.0.1", 8080)
        assert parse_peer_addr("tcp://[::1]:443") == ("[::1]", 443)

    def test_parse_rejects_non_tcp(self):
        with pytest.raises(ValueError, match="not a tcp"):
            parse_peer_addr("mem://w0")

    def test_parse_rejects_empty_host_or_bad_port(self):
        for bad in ("tcp://:8080", "tcp://host:", "tcp://host:abc",
                    "tcp://host:-1"):
            with pytest.raises(ValueError, match="malformed"):
                parse_peer_addr(bad)

    def test_parse_rejects_out_of_range_ports(self):
        for bad in ("tcp://host:0", "tcp://host:65536", "tcp://host:99999"):
            with pytest.raises(ValueError, match="out of range"):
                parse_peer_addr(bad)
