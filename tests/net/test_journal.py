"""Tests for the AM's write-ahead journal and its replay semantics.

The journal is the whole failover story: journal-before-reply means a
successor can never forget a commitment a worker observed, and the
torn-tail rule means a crash mid-append only ever loses un-replied
work.  These tests pin down the record format, the file round-trip,
corruption handling, and the :class:`JournalState` replay rules that
:meth:`NetworkedApplicationMaster.from_journal` builds on.
"""

import json

import numpy as np
import pytest

from repro.net import Journal, JournalError, JournalState
from repro.net.journal import RECORD_KINDS, _checksum


class TestJournalAppend:
    def test_in_memory_round_trip(self):
        journal = Journal()
        journal.append("init", job_id="j", spec={}, workers=["w0", "w1"])
        journal.append("epoch", epoch=1)
        journal.append("progress", iteration=4)
        records = journal.records()
        assert [r["seq"] for r in records] == [0, 1, 2]
        assert [r["kind"] for r in records] == ["init", "epoch", "progress"]
        assert records[0]["data"]["workers"] == ["w0", "w1"]
        assert len(journal) == 3

    def test_unknown_kind_rejected_at_write_time(self):
        journal = Journal()
        with pytest.raises(JournalError):
            journal.append("typo_kind", x=1)
        assert len(journal) == 0

    def test_kind_is_positional_only(self):
        # An adjustment request record carries its *own* "kind" field
        # (scale_in / scale_out) in the data — the record kind must not
        # collide with it.
        journal = Journal()
        record = journal.append(
            "request", kind="scale_in", add=[], remove=["w2"], auto=True
        )
        assert record["kind"] == "request"
        assert record["data"]["kind"] == "scale_in"
        replayed = journal.records()[0]
        assert replayed["kind"] == "request"
        assert replayed["data"]["kind"] == "scale_in"


class TestJournalFile:
    def test_reopen_continues_sequence(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        first = Journal(path)
        first.append("init", job_id="j", spec={}, workers=["w0"])
        first.append("epoch", epoch=1)
        first.close()

        second = Journal(path)
        assert [r["seq"] for r in second.records()] == [0, 1]
        record = second.append("epoch", epoch=2)
        assert record["seq"] == 2
        second.close()

        third = Journal(path)
        assert [r["kind"] for r in third.records()] == [
            "init", "epoch", "epoch",
        ]
        assert third.truncated == 0
        third.close()

    def test_torn_tail_is_dropped_not_fatal(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = Journal(path)
        journal.append("init", job_id="j", spec={}, workers=["w0"])
        journal.append("epoch", epoch=1)
        journal.close()
        # A crash mid-append leaves a torn, unparseable last line.
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"seq": 2, "kind": "progr')

        reopened = Journal(path)
        assert [r["seq"] for r in reopened.records()] == [0, 1]
        assert reopened.truncated == 1
        # Appends continue from the surviving prefix.
        assert reopened.append("progress", iteration=8)["seq"] == 2
        reopened.close()

    def test_corrupt_middle_line_ends_the_journal_there(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = Journal(path)
        journal.append("init", job_id="j", spec={}, workers=["w0"])
        journal.append("epoch", epoch=1)
        journal.append("progress", iteration=4)
        journal.close()

        lines = open(path, encoding="utf-8").read().splitlines()
        middle = json.loads(lines[1])
        middle["data"]["epoch"] = 99  # flipped bits, stale checksum
        lines[1] = json.dumps(middle, sort_keys=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write("\n".join(lines) + "\n")

        reopened = Journal(path)
        # Nothing after the corrupt record can be trusted (its sequence
        # chain is broken), so the journal ends right before it.
        assert [r["seq"] for r in reopened.records()] == [0]
        assert reopened.truncated == 1
        reopened.close()

    def test_sequence_gap_ends_the_journal(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = Journal(path)
        for i in range(3):
            journal.append("progress", iteration=i)
        journal.close()
        lines = open(path, encoding="utf-8").read().splitlines()
        # Drop the middle line: seq 0 then seq 2 is a gap.
        with open(path, "w", encoding="utf-8") as f:
            f.write(lines[0] + "\n" + lines[2] + "\n")
        reopened = Journal(path)
        assert [r["seq"] for r in reopened.records()] == [0]
        assert reopened.truncated == 1
        reopened.close()

    def test_ndarray_payload_survives_the_file(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        params = {"w": np.arange(12, dtype=np.float64).reshape(3, 4)}
        journal = Journal(path)
        journal.append(
            "snapshot", generation=1,
            state={"params": params, "optimizer": {"t": 3}, "loader": {}},
        )
        journal.close()

        reopened = Journal(path)
        state = reopened.records()[0]["data"]["state"]
        np.testing.assert_array_equal(state["params"]["w"], params["w"])
        assert state["params"]["w"].dtype == np.float64
        assert state["optimizer"] == {"t": 3}
        reopened.close()

    def test_checksum_covers_seq_kind_and_data(self):
        a = _checksum(0, "epoch", {"epoch": 1})
        assert a != _checksum(1, "epoch", {"epoch": 1})
        assert a != _checksum(0, "progress", {"epoch": 1})
        assert a != _checksum(0, "epoch", {"epoch": 2})


class TestJournalStateReplay:
    def _records(self, *pairs):
        journal = Journal()
        for kind, data in pairs:
            journal.append(kind, **data)
        return journal.records()

    def test_commit_applies_generation_and_group(self):
        state = JournalState.replay(self._records(
            ("init", {"job_id": "j", "spec": {}, "workers": ["w0", "w1"]}),
            ("epoch", {"epoch": 1}),
            ("plan", {"generation": 1, "commit_iteration": 4,
                      "old_group": ["w0", "w1"],
                      "new_group": ["w0", "w1", "w2"], "uploader": "w0"}),
            ("ack", {"worker": "w0", "generation": 1}),
            ("commit", {"generation": 1, "commit_iteration": 4,
                        "old_group": ["w0", "w1"],
                        "new_group": ["w0", "w1", "w2"], "uploader": "w0",
                        "latency": 0.5, "departed": {}}),
        ))
        assert state.generation == 1
        assert state.groups[1] == ("w0", "w1", "w2")
        assert state.plan is None and state.pending_request is None
        assert state.acked == set()
        assert state.adjustments_committed == 1
        assert state.commit_latencies == [0.5]
        assert state.last_commit["commit_iteration"] == 4
        assert state.replayed == 5

    def test_abort_clears_plan_and_its_group(self):
        state = JournalState.replay(self._records(
            ("init", {"job_id": "j", "spec": {}, "workers": ["w0", "w1"]}),
            ("request", {"kind": "scale_out", "add": ["w2"], "remove": []}),
            ("plan", {"generation": 1, "commit_iteration": 4,
                      "old_group": ["w0", "w1"],
                      "new_group": ["w0", "w1", "w2"], "uploader": "w0"}),
            ("abort", {}),
        ))
        assert state.plan is None and state.pending_request is None
        assert state.generation == 0
        assert 1 not in state.groups
        assert state.current_group == ("w0", "w1")

    def test_epoch_is_max_monotone(self):
        state = JournalState.replay(self._records(
            ("epoch", {"epoch": 1}),
            ("epoch", {"epoch": 3}),
            ("epoch", {"epoch": 2}),
        ))
        assert state.epoch == 3

    def test_final_and_condemn_records(self):
        state = JournalState.replay(self._records(
            ("init", {"job_id": "j", "spec": {}, "workers": ["w0", "w1"]}),
            ("condemn", {"worker": "w1"}),
            ("final", {"worker": "w0", "iteration": 8,
                       "digest": "abc", "removed": False}),
            ("final", {"worker": "w1", "iteration": 4,
                       "digest": None, "removed": True}),
            ("progress", {"iteration": 8}),
            ("progress", {"iteration": 4}),
        ))
        assert state.condemned == {"w1"}
        assert state.final == {
            "w0": {"iteration": 8, "digest": "abc", "removed": False},
        }
        assert "w1" in state.departed
        assert state.progress == 8  # watermark never regresses

    def test_ack_for_stale_generation_ignored(self):
        state = JournalState.replay(self._records(
            ("plan", {"generation": 2, "commit_iteration": 8,
                      "old_group": ["w0"], "new_group": ["w0", "w1"],
                      "uploader": "w0"}),
            ("ack", {"worker": "w0", "generation": 1}),
            ("ack", {"worker": "w0", "generation": 2}),
        ))
        assert state.acked == {"w0"}

    def test_every_record_kind_is_replayable(self):
        # RECORD_KINDS is the write-time whitelist; _apply must accept
        # every member or a journaled record could brick failover.
        samples = {
            "init": {"job_id": "j", "spec": {}, "workers": ["w0"]},
            "epoch": {"epoch": 1},
            "peer": {"worker": "w0", "addr": "mem://w0"},
            "request": {"kind": "scale_in", "add": [], "remove": ["w0"]},
            "plan": {"generation": 1, "commit_iteration": 4,
                     "old_group": ["w0"], "new_group": ["w1"],
                     "uploader": None},
            "ack": {"worker": "w0", "generation": 1},
            "snapshot": {"generation": 1, "state": {}},
            "commit": {"generation": 1, "commit_iteration": 4,
                       "old_group": ["w0"], "new_group": ["w1"],
                       "uploader": None, "latency": 0.1, "departed": {}},
            "abort": {},
            "final": {"worker": "w0", "iteration": 4, "digest": "d",
                      "removed": False},
            "progress": {"iteration": 4},
            "condemn": {"worker": "w0"},
        }
        assert set(samples) == RECORD_KINDS
        journal = Journal()
        for kind, data in samples.items():
            journal.append(kind, **data)
        state = JournalState.replay(journal.records())
        assert state.replayed == len(RECORD_KINDS)
