"""Gradient codec tests: quantization units + the ring's codec seam."""

import threading

import numpy as np
import pytest

from repro.net import (
    MemoryPeerHost,
    RingMailbox,
    RingNode,
    ServerCore,
    ring_reference_average,
)
from repro.net.codecs import (
    RING_CODECS,
    decode_bucket,
    encode_bucket,
    validate_codec,
)
from repro.net.wire import WireError


class TestValidate:
    def test_known_codecs_pass_through(self):
        for codec in RING_CODECS:
            assert validate_codec(codec) == codec

    def test_none_and_empty_default(self):
        assert validate_codec(None) == "none"
        assert validate_codec("") == "none"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown ring codec"):
            validate_codec("zstd")


class TestEncodeBucket:
    def test_fp16_round_trip_error_bounded(self):
        rng = np.random.default_rng(0)
        values = rng.standard_normal(4096)
        enc = encode_bucket("fp16", [values])
        assert enc.data[0].dtype == np.float16
        assert enc.compressed_bytes == enc.raw_bytes // 4
        decoded = decode_bucket(enc.data, enc.meta)[0]
        assert decoded.dtype == np.float64
        # fp16 has ~2^-11 relative precision.
        assert np.max(np.abs(decoded - values)) < 2e-3

    def test_int8_round_trip_error_bounded(self):
        rng = np.random.default_rng(1)
        values = rng.standard_normal(4096)
        enc = encode_bucket("int8", [values])
        assert enc.data[0].dtype == np.int8
        assert enc.compressed_bytes == enc.raw_bytes // 8
        decoded = decode_bucket(enc.data, enc.meta)[0]
        peak = float(np.max(np.abs(values)))
        # Symmetric linear quantization: half a step of error.
        assert np.max(np.abs(decoded - values)) <= peak / 127.0

    def test_int8_all_zero_array_survives(self):
        values = np.zeros(64)
        enc = encode_bucket("int8", [values])
        assert np.array_equal(decode_bucket(enc.data, enc.meta)[0], values)

    def test_error_feedback_updates_residual_in_place(self):
        rng = np.random.default_rng(2)
        values = rng.standard_normal(512)
        residual = np.zeros_like(values)
        enc = encode_bucket("fp16", [values], [residual])
        decoded = decode_bucket(enc.data, enc.meta)[0]
        # residual = (x + r) - dq(Q(x + r)) with r starting at zero.
        assert np.allclose(residual, values - decoded)
        assert enc.residual_sq == pytest.approx(float(np.dot(
            residual, residual
        )))
        # Next round: the error is added back before quantizing.
        enc2 = encode_bucket("fp16", [values], [residual])
        carried = values + (values - decoded)
        assert np.allclose(
            decode_bucket(enc2.data, enc2.meta)[0],
            carried.astype(np.float16).astype(np.float64),
        )

    def test_non_float_arrays_fall_back_to_raw(self):
        counts = np.arange(100, dtype=np.int64)
        enc = encode_bucket("fp16", [counts])
        assert enc.fallbacks == 1
        assert enc.compressed_bytes == enc.raw_bytes
        assert np.array_equal(decode_bucket(enc.data, enc.meta)[0], counts)

    def test_decode_rejects_mismatched_metadata(self):
        enc = encode_bucket("fp16", [np.ones(8)])
        with pytest.raises(WireError, match="disagrees"):
            decode_bucket(enc.data, {"name": "fp16", "arrays": []})


# -- the ring's codec seam -----------------------------------------------------


class CodecMesh:
    """N ring nodes over in-memory peer links with one codec."""

    def __init__(self, workers, codec):
        self.host = MemoryPeerHost()
        self.nodes = {}
        addrs = {}
        for worker in workers:
            mailbox = RingMailbox()
            core = ServerCore(mailbox.handle, node_id=f"{worker}/peer")
            addrs[worker] = self.host.serve(core, worker)
            connect = lambda addr, w=worker: self.host.connect(
                addr, node_id=w, ack_timeout=0.2,
            )
            self.nodes[worker] = RingNode(worker, mailbox, connect)
        self.ring = {
            "epoch": 0, "order": list(workers), "peers": addrs,
            "active_from": 0,
        }
        if codec != "none":
            self.ring["codec"] = codec
        for node in self.nodes.values():
            node.install(self.ring)

    def allreduce_all(self, grads_by_worker, iteration=0):
        results, errors = {}, {}

        def run(worker):
            try:
                results[worker] = self.nodes[worker].allreduce(
                    0, iteration, grads_by_worker[worker]
                )
            except Exception as exc:  # pragma: no cover - surfaced below
                errors[worker] = exc

        threads = [
            threading.Thread(target=run, args=(w,), daemon=True)
            for w in self.nodes
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert all(not t.is_alive() for t in threads), "ring hung"
        assert not errors, errors
        return results

    def close(self):
        for node in self.nodes.values():
            node.close()
        self.host.close()


def make_grads(workers, seed=42):
    rng = np.random.default_rng(seed)
    return {
        w: {
            "dense.w": rng.standard_normal(1000),
            "dense.b": rng.standard_normal((32, 8)),
        }
        for w in workers
    }


WORKERS = ["w0", "w1", "w2"]


@pytest.fixture(params=["fp16", "int8"])
def codec(request):
    return request.param


class TestRingCodecs:
    def test_install_adopts_the_payload_codec(self, codec):
        mesh = CodecMesh(WORKERS, codec)
        try:
            assert all(n.codec == codec for n in mesh.nodes.values())
        finally:
            mesh.close()

    def test_no_codec_key_means_none(self):
        mesh = CodecMesh(WORKERS, "none")
        try:
            assert all(n.codec == "none" for n in mesh.nodes.values())
        finally:
            mesh.close()

    def test_replicas_stay_bit_identical_under_compression(self, codec):
        grads = make_grads(WORKERS)
        mesh = CodecMesh(WORKERS, codec)
        try:
            results = mesh.allreduce_all(grads)
            base = results["w0"]
            for worker in WORKERS[1:]:
                for name in base:
                    assert np.array_equal(results[worker][name], base[name])
        finally:
            mesh.close()

    def test_compressed_mean_error_is_bounded(self, codec):
        grads = make_grads(WORKERS)
        reference = ring_reference_average([grads[w] for w in WORKERS])
        mesh = CodecMesh(WORKERS, codec)
        try:
            results = mesh.allreduce_all(grads)
            bound = 5e-3 if codec == "fp16" else 1e-1
            for name, exact in reference.items():
                drift = float(np.max(np.abs(results["w0"][name] - exact)))
                assert drift < bound, (name, drift)
        finally:
            mesh.close()

    def test_error_feedback_keeps_longrun_drift_bounded(self, codec):
        """Feeding the quantization error forward means repeated
        allreduces do not accumulate bias: the mean of the compressed
        means tracks the exact mean."""
        grads = make_grads(WORKERS)
        reference = ring_reference_average([grads[w] for w in WORKERS])
        mesh = CodecMesh(WORKERS, codec)
        try:
            totals = {name: np.zeros_like(ref)
                      for name, ref in reference.items()}
            rounds = 12
            for iteration in range(rounds):
                results = mesh.allreduce_all(grads, iteration=iteration)
                for name in totals:
                    totals[name] += results["w0"][name]
            per_round = 5e-3 if codec == "fp16" else 1e-1
            for name, ref in reference.items():
                mean_drift = float(np.max(np.abs(
                    totals[name] / rounds - ref
                )))
                # Without error feedback the per-round bias would add up
                # linearly; with it the average stays a fraction of one
                # round's quantization error.
                assert mean_drift < per_round / 2, (name, mean_drift)
        finally:
            mesh.close()

    def test_residuals_survive_capture_restore_and_reinstall(self, codec):
        grads = make_grads(WORKERS)
        mesh = CodecMesh(WORKERS, codec)
        try:
            mesh.allreduce_all(grads)
            node = mesh.nodes["w0"]
            state = node.capture_residuals()
            assert set(state) == {"dense.w", "dense.b"}
            assert any(np.any(r != 0) for r in state.values())
            # Residuals are full-size per parameter, geometry-free.
            assert state["dense.w"].shape == (1000,)
            assert state["dense.b"].shape == (32 * 8,)
            # A new ring epoch keeps them; an explicit restore replaces.
            node.install({**mesh.ring, "epoch": 1})
            after = node.capture_residuals()
            assert all(
                np.array_equal(after[name], state[name]) for name in state
            )
            node.restore_residuals(
                {name: np.zeros_like(r) for name, r in state.items()}
            )
            assert all(
                not np.any(r) for r in node.capture_residuals().values()
            )
        finally:
            mesh.close()

    def test_codec_metrics_recorded(self, codec):
        from repro.observability import MetricRegistry

        grads = make_grads(WORKERS)
        host = MemoryPeerHost()
        metrics = MetricRegistry()
        nodes, addrs = {}, {}
        for worker in WORKERS:
            mailbox = RingMailbox()
            core = ServerCore(mailbox.handle, node_id=f"{worker}/peer")
            addrs[worker] = host.serve(core, worker)
            connect = lambda addr, w=worker: host.connect(
                addr, node_id=w, ack_timeout=0.2,
            )
            nodes[worker] = RingNode(
                worker, mailbox, connect,
                metrics=metrics if worker == "w0" else None,
            )
        ring = {
            "epoch": 0, "order": list(WORKERS), "peers": addrs,
            "active_from": 0, "codec": codec,
        }
        for node in nodes.values():
            node.install(ring)
        try:
            results, errors = {}, {}

            def run(worker):
                try:
                    results[worker] = nodes[worker].allreduce(
                        0, 0, grads[worker]
                    )
                except Exception as exc:
                    errors[worker] = exc

            threads = [
                threading.Thread(target=run, args=(w,), daemon=True)
                for w in WORKERS
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)
            assert not errors, errors
            snapshot = metrics.snapshot()
            raw = snapshot["net.codec.bytes_raw"]
            compressed = snapshot["net.codec.bytes_compressed"]
            assert raw > 0
            ratio = compressed / raw
            expected = 0.25 if codec == "fp16" else 0.125
            assert ratio == pytest.approx(expected, rel=0.01)
            assert snapshot["net.codec.residual_norm"]["count"] >= 1
        finally:
            for node in nodes.values():
                node.close()
            host.close()
