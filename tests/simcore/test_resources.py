"""Unit tests for Resource, Store and Container primitives."""

import pytest

from repro.simcore import Container, Resource, Simulator, Store


@pytest.fixture
def sim():
    return Simulator()


class TestResource:
    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_serializes_access(self, sim):
        res = Resource(sim, capacity=1)
        log = []

        def user(name):
            with res.request() as req:
                yield req
                log.append((name, "in", sim.now))
                yield sim.timeout(2.0)
                log.append((name, "out", sim.now))

        sim.process(user("a"))
        sim.process(user("b"))
        sim.run()
        assert log == [
            ("a", "in", 0.0),
            ("a", "out", 2.0),
            ("b", "in", 2.0),
            ("b", "out", 4.0),
        ]

    def test_capacity_two_allows_concurrency(self, sim):
        res = Resource(sim, capacity=2)
        done_times = []

        def user():
            with res.request() as req:
                yield req
                yield sim.timeout(2.0)
                done_times.append(sim.now)

        for _ in range(4):
            sim.process(user())
        sim.run()
        assert done_times == [2.0, 2.0, 4.0, 4.0]

    def test_priority_order(self, sim):
        res = Resource(sim, capacity=1)
        order = []

        def holder():
            with res.request() as req:
                yield req
                yield sim.timeout(1.0)

        def user(name, priority, delay):
            yield sim.timeout(delay)
            with res.request(priority=priority) as req:
                yield req
                order.append(name)

        sim.process(holder())
        sim.process(user("low", priority=5, delay=0.1))
        sim.process(user("high", priority=1, delay=0.2))
        sim.run()
        assert order == ["high", "low"]

    def test_cancel_queued_request(self, sim):
        res = Resource(sim, capacity=1)
        first = res.request()
        second = res.request()
        assert res.count == 1
        assert res.queued == 1
        res.release(second)  # cancel before grant
        assert res.queued == 0
        res.release(first)
        assert res.count == 0

    def test_count_and_queued_tracking(self, sim):
        res = Resource(sim, capacity=2)
        reqs = [res.request() for _ in range(3)]
        assert res.count == 2
        assert res.queued == 1
        res.release(reqs[0])
        assert res.count == 2  # third request was granted
        assert res.queued == 0


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("msg")
        got = store.get()
        assert got.triggered
        sim.run()
        assert got.value == "msg"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        results = []

        def consumer():
            item = yield store.get()
            results.append((item, sim.now))

        def producer():
            yield sim.timeout(3.0)
            store.put("late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert results == [("late", 3.0)]

    def test_fifo_ordering(self, sim):
        store = Store(sim)
        for item in (1, 2, 3):
            store.put(item)
        values = []

        def consumer():
            for _ in range(3):
                values.append((yield store.get()))

        sim.run(until=sim.process(consumer()))
        assert values == [1, 2, 3]

    def test_len_counts_buffered_items(self, sim):
        store = Store(sim)
        assert len(store) == 0
        store.put("a")
        store.put("b")
        assert len(store) == 2


class TestContainer:
    def test_init_validation(self, sim):
        with pytest.raises(ValueError):
            Container(sim, init=-1.0)
        with pytest.raises(ValueError):
            Container(sim, init=5.0, capacity=2.0)

    def test_get_blocks_until_enough(self, sim):
        pool = Container(sim, init=1.0)
        results = []

        def consumer():
            yield pool.get(3.0)
            results.append(sim.now)

        def producer():
            yield sim.timeout(2.0)
            pool.put(2.0)

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert results == [2.0]
        assert pool.level == 0.0

    def test_put_clamped_at_capacity(self, sim):
        pool = Container(sim, init=0.0, capacity=10.0)
        pool.put(25.0)
        assert pool.level == 10.0

    def test_negative_amounts_rejected(self, sim):
        pool = Container(sim, init=1.0)
        with pytest.raises(ValueError):
            pool.put(-1.0)
        with pytest.raises(ValueError):
            pool.get(-1.0)

    def test_fifo_gets(self, sim):
        pool = Container(sim, init=0.0)
        order = []

        def consumer(name, amount):
            yield pool.get(amount)
            order.append(name)

        sim.process(consumer("big", 5.0))
        sim.process(consumer("small", 1.0))
        pool.put(6.0)
        sim.run()
        assert order == ["big", "small"]  # FIFO, no overtaking
