"""Unit tests for simulation processes (generators, interrupts)."""

import pytest

from repro.simcore import Interrupt, Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestProcessBasics:
    def test_process_runs_and_returns(self, sim):
        def worker():
            yield sim.timeout(3.0)
            return "result"

        proc = sim.process(worker())
        assert sim.run(until=proc) == "result"
        assert sim.now == 3.0
        assert not proc.is_alive

    def test_requires_generator(self, sim):
        with pytest.raises(TypeError):
            sim.process(lambda: None)

    def test_process_receives_event_value(self, sim):
        def worker():
            got = yield sim.timeout(1.0, value="payload")
            return got

        assert sim.run(until=sim.process(worker())) == "payload"

    def test_processes_interleave(self, sim):
        log = []

        def worker(name, delay):
            yield sim.timeout(delay)
            log.append((name, sim.now))
            yield sim.timeout(delay)
            log.append((name, sim.now))

        sim.process(worker("a", 1.0))
        sim.process(worker("b", 1.5))
        sim.run()
        assert log == [("a", 1.0), ("b", 1.5), ("a", 2.0), ("b", 3.0)]

    def test_process_waits_for_process(self, sim):
        def child():
            yield sim.timeout(2.0)
            return 99

        def parent():
            value = yield sim.process(child())
            return value + 1

        assert sim.run(until=sim.process(parent())) == 100

    def test_yield_non_event_fails_process(self, sim):
        def worker():
            yield "not an event"

        proc = sim.process(worker())
        with pytest.raises(TypeError):
            sim.run(until=proc)

    def test_exception_in_process_propagates_to_waiter(self, sim):
        def child():
            yield sim.timeout(1.0)
            raise KeyError("inner")

        def parent():
            yield sim.process(child())

        with pytest.raises(KeyError):
            sim.run(until=sim.process(parent()))

    def test_yield_already_processed_event_resumes_same_time(self, sim):
        done = sim.event()
        done.succeed("x")
        sim.run()

        def worker():
            value = yield done
            return (value, sim.now)

        assert sim.run(until=sim.process(worker())) == ("x", 0.0)

    def test_active_process_visible_during_step(self, sim):
        seen = []

        def worker():
            seen.append(sim.active_process)
            yield sim.timeout(1.0)

        proc = sim.process(worker())
        sim.run()
        assert seen == [proc]
        assert sim.active_process is None


class TestInterrupts:
    def test_interrupt_wakes_process_early(self, sim):
        def sleeper():
            try:
                yield sim.timeout(100.0)
                return "slept"
            except Interrupt as intr:
                return ("interrupted", intr.cause, sim.now)

        proc = sim.process(sleeper())

        def interrupter():
            yield sim.timeout(2.0)
            proc.interrupt("wake up")

        sim.process(interrupter())
        assert sim.run(until=proc) == ("interrupted", "wake up", 2.0)

    def test_interrupt_dead_process_raises(self, sim):
        def quick():
            yield sim.timeout(1.0)

        proc = sim.process(quick())
        sim.run()
        with pytest.raises(RuntimeError):
            proc.interrupt()

    def test_process_resumes_waiting_after_interrupt(self, sim):
        def sleeper():
            try:
                yield sim.timeout(10.0)
            except Interrupt:
                pass
            yield sim.timeout(5.0)  # sleep again after the interrupt
            return sim.now

        proc = sim.process(sleeper())

        def interrupter():
            yield sim.timeout(2.0)
            proc.interrupt()

        sim.process(interrupter())
        assert sim.run(until=proc) == 7.0

    def test_abandoned_event_does_not_double_resume(self, sim):
        hits = []

        def sleeper():
            try:
                yield sim.timeout(3.0)
                hits.append("timeout")
            except Interrupt:
                hits.append("interrupt")
            yield sim.timeout(10.0)

        proc = sim.process(sleeper())

        def interrupter():
            yield sim.timeout(1.0)
            proc.interrupt()

        sim.process(interrupter())
        sim.run()
        assert hits == ["interrupt"]
