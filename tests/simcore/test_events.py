"""Unit tests for the event primitives."""

import pytest

from repro.simcore import Event, EventPending, Simulator, all_of, any_of


@pytest.fixture
def sim():
    return Simulator()


class TestEvent:
    def test_value_before_trigger_raises(self, sim):
        event = sim.event()
        with pytest.raises(EventPending):
            _ = event.value

    def test_succeed_sets_value(self, sim):
        event = sim.event()
        event.succeed(42)
        assert event.triggered
        assert event.ok
        assert event.value == 42

    def test_double_trigger_rejected(self, sim):
        event = sim.event()
        event.succeed()
        with pytest.raises(RuntimeError):
            event.succeed()
        with pytest.raises(RuntimeError):
            event.fail(ValueError("x"))

    def test_fail_stores_exception(self, sim):
        event = sim.event()
        event.fail(ValueError("boom"))
        assert event.triggered
        assert not event.ok
        with pytest.raises(ValueError, match="boom"):
            _ = event.value

    def test_fail_requires_exception_instance(self, sim):
        event = sim.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_callbacks_run_on_processing(self, sim):
        event = sim.event()
        seen = []
        event.callbacks.append(lambda ev: seen.append(ev.value))
        event.succeed("hello")
        assert seen == []  # not yet processed
        sim.run()
        assert seen == ["hello"]
        assert event.processed


class TestTimeout:
    def test_timeout_advances_clock(self, sim):
        sim.timeout(5.0)
        sim.run()
        assert sim.now == 5.0

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-1.0)

    def test_timeout_carries_value(self, sim):
        timeout = sim.timeout(1.0, value="done")
        sim.run()
        assert timeout.value == "done"

    def test_timeouts_fire_in_order(self, sim):
        order = []
        for delay in (3.0, 1.0, 2.0):
            sim.timeout(delay).callbacks.append(
                lambda ev, d=delay: order.append(d)
            )
        sim.run()
        assert order == [1.0, 2.0, 3.0]

    def test_equal_times_fifo(self, sim):
        order = []
        for tag in ("a", "b", "c"):
            sim.timeout(1.0).callbacks.append(
                lambda ev, t=tag: order.append(t)
            )
        sim.run()
        assert order == ["a", "b", "c"]


class TestConditions:
    def test_all_of_waits_for_every_event(self, sim):
        events = [sim.timeout(1.0, value=1), sim.timeout(3.0, value=3)]
        combined = all_of(sim, events)
        sim.run(until=combined)
        assert sim.now == 3.0
        assert combined.value == {events[0]: 1, events[1]: 3}

    def test_any_of_fires_on_first(self, sim):
        events = [sim.timeout(5.0), sim.timeout(2.0, value="fast")]
        combined = any_of(sim, events)
        sim.run(until=combined)
        assert sim.now == 2.0
        assert events[1] in combined.value

    def test_all_of_empty_triggers_immediately(self, sim):
        combined = all_of(sim, [])
        assert combined.triggered
        sim.run()
        assert combined.value == {}

    def test_any_of_empty_triggers_immediately(self, sim):
        combined = any_of(sim, [])
        assert combined.triggered

    def test_all_of_propagates_failure(self, sim):
        good = sim.timeout(1.0)
        bad = sim.event()
        combined = all_of(sim, [good, bad])
        bad.fail(RuntimeError("dead"))
        with pytest.raises(RuntimeError, match="dead"):
            sim.run(until=combined)

    def test_all_of_with_already_processed_event(self, sim):
        done = sim.event()
        done.succeed("early")
        sim.run()
        assert done.processed
        combined = all_of(sim, [done, sim.timeout(1.0, value="late")])
        sim.run(until=combined)
        assert sim.now == 1.0


class TestSimulatorRun:
    def test_run_until_time_stops_clock_there(self, sim):
        sim.timeout(10.0)
        sim.run(until=4.0)
        assert sim.now == 4.0

    def test_run_until_past_raises(self, sim):
        sim.timeout(5.0)
        sim.run()
        with pytest.raises(ValueError):
            sim.run(until=1.0)

    def test_run_until_event_returns_value(self, sim):
        event = sim.timeout(2.0, value="v")
        assert sim.run(until=event) == "v"

    def test_run_until_untriggered_event_raises(self, sim):
        event = sim.event()  # never triggered
        sim.timeout(1.0)
        with pytest.raises(RuntimeError):
            sim.run(until=event)

    def test_peek_empty_is_infinite(self, sim):
        assert sim.peek() == float("inf")

    def test_peek_reports_next_event_time(self, sim):
        sim.timeout(7.0)
        sim.timeout(2.0)
        assert sim.peek() == 2.0
