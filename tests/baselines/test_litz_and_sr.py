"""Tests for the Litz throughput model (Fig. 16) and the live S&R job."""

import numpy as np
import pytest

from repro.baselines import LITZ_2, LITZ_4, LitzConfig, LitzModel, ShutdownRestartJob
from repro.perfmodel import MODEL_ZOO, RESNET50, TRANSFORMER
from repro.training import make_classification, train_single


class TestLitzModel:
    @pytest.mark.parametrize("spec", list(MODEL_ZOO.values()),
                             ids=lambda s: s.name)
    def test_litz_far_below_elan(self, spec):
        """Fig. 16: context switches destroy throughput for every model."""
        for config in (LITZ_2, LITZ_4):
            model = LitzModel(spec, config)
            for workers in (2, 8, 32, 64):
                assert model.relative_throughput(workers) < 0.4

    def test_transformer_reduction_exceeds_90_percent(self):
        """Paper: 'the reduction of throughput even exceeds 90% on
        Transformer' (for Litz-4)."""
        model = LitzModel(TRANSFORMER, LITZ_4)
        assert model.relative_throughput(2) < 0.11

    def test_more_workers_slightly_better(self):
        """Paper: throughput 'goes up slightly' with more workers thanks
        to local gradient aggregation."""
        model = LitzModel(MODEL_ZOO["MobileNet-v2"], LITZ_2)
        assert model.relative_throughput(64) > model.relative_throughput(8)

    def test_litz4_more_samples_per_iteration(self):
        """Litz-4 computes twice the samples of Litz-2 per iteration but
        also pays twice the switches, so the ratio stays poor."""
        l2 = LitzModel(RESNET50, LITZ_2)
        l4 = LitzModel(RESNET50, LITZ_4)
        assert l4.iteration_time(8) > l2.iteration_time(8)
        assert l4.throughput(8) < 2 * l2.throughput(8)

    def test_context_switch_dominated_by_state_size(self):
        big = LitzModel(MODEL_ZOO["VGG-19"], LITZ_2).context_switch_time()
        small = LitzModel(MODEL_ZOO["MobileNet-v2"], LITZ_2).context_switch_time()
        assert big > 5 * small

    def test_validation(self):
        with pytest.raises(ValueError):
            LitzConfig(executors_per_worker=0)
        with pytest.raises(ValueError):
            LitzConfig(executors_per_worker=2, per_executor_batch=0)
        with pytest.raises(ValueError):
            LitzModel(RESNET50, LITZ_2).iteration_time(0)


class TestShutdownRestartJob:
    @pytest.fixture(scope="class")
    def dataset(self):
        return make_classification(train_size=512, test_size=128, seed=3)

    def test_checkpoint_restart_preserves_state_exactly(self, dataset):
        """The S&R cycle must be lossless: training after an adjustment
        continues the same trajectory as an uninterrupted run."""
        job = ShutdownRestartJob(dataset, workers=4, total_batch_size=64, seed=0)
        job.train(10)
        job.adjust(workers=8)  # checkpoint -> shutdown -> restart
        job.train(10)

        # Reference: same schedule without the S&R cycle.  Strong scaling
        # keeps the batch, so the trajectory must match exactly.
        reference = ShutdownRestartJob(
            dataset, workers=4, total_batch_size=64, seed=0
        )
        reference.train(10)
        reference.workers = 8
        reference._loader.repartition(8)
        reference.train(10)
        for name in job.params():
            assert np.allclose(
                job.params()[name], reference.params()[name], atol=1e-12
            )

    def test_cannot_train_while_shut_down(self, dataset):
        job = ShutdownRestartJob(dataset, workers=2, total_batch_size=32)
        job.train(2)
        job.checkpoint()
        job.shutdown()
        with pytest.raises(RuntimeError):
            job.train(1)
        with pytest.raises(RuntimeError):
            job.evaluate()

    def test_restart_requires_checkpoint(self, dataset):
        job = ShutdownRestartJob(dataset, workers=2, total_batch_size=32)
        job.shutdown()
        with pytest.raises(RuntimeError):
            job.restart(4)

    def test_counters(self, dataset):
        job = ShutdownRestartJob(dataset, workers=2, total_batch_size=32)
        job.train(3)
        job.adjust(4)
        job.adjust(2)
        assert job.checkpoints == 2
        assert job.restarts == 2
        assert job.storage.writes == 2
        assert job.storage.reads == 2

    def test_iteration_counter_survives_restart(self, dataset):
        job = ShutdownRestartJob(dataset, workers=2, total_batch_size=32)
        job.train(7)
        job.adjust(4)
        assert job.iteration == 7
        job.train(3)
        assert job.iteration == 10

    def test_validation(self, dataset):
        with pytest.raises(ValueError):
            ShutdownRestartJob(dataset, workers=0, total_batch_size=32)
        with pytest.raises(ValueError):
            ShutdownRestartJob(dataset, workers=8, total_batch_size=4)
        job = ShutdownRestartJob(dataset, workers=2, total_batch_size=32)
        job.checkpoint()
        job.shutdown()
        with pytest.raises(ValueError):
            job.restart(0)

    def test_learns(self, dataset):
        job = ShutdownRestartJob(
            dataset, workers=2, total_batch_size=32, base_lr=0.02, seed=1
        )
        job.train(100)
        assert job.evaluate() > 0.35
