"""Tests for the adjustment-latency models (Figs. 10/11/14/15)."""

import pytest

from repro.baselines import (
    ElanAdjustmentModel,
    ShutdownRestartModel,
    runtime_overhead_fraction,
)
from repro.perfmodel import MODEL_ZOO, RESNET50, VGG19


@pytest.fixture
def elan():
    return ElanAdjustmentModel(seed=0)


@pytest.fixture
def sr():
    return ShutdownRestartModel(seed=0)


class TestElanModel:
    def test_all_adjustments_around_one_second(self, elan):
        """The paper's headline: ~1s for every kind, scale and model."""
        for kind, old, new in (
            ("migration", 8, 8),
            ("scale_in", 16, 8),
            ("scale_out", 8, 16),
            ("scale_out", 16, 32),
        ):
            for spec in MODEL_ZOO.values():
                total = elan.adjustment_time(kind, spec, old, new).total
                assert total < 1.5, f"{kind}/{spec.name}: {total:.2f}s"

    def test_scale_in_needs_no_replication(self, elan):
        timing = elan.adjustment_time("scale_in", RESNET50, 16, 8)
        assert timing.phases["replication"] == 0.0

    def test_start_and_init_absent_from_critical_path(self, elan):
        """The asynchronous coordination mechanism hides start + init."""
        timing = elan.adjustment_time("scale_out", RESNET50, 8, 16)
        assert "start" not in timing.phases
        assert "init" not in timing.phases

    def test_unknown_kind_rejected(self, elan):
        with pytest.raises(ValueError):
            elan.adjustment_time("resize", RESNET50, 8, 16)


class TestShutdownRestartModel:
    def test_start_init_dominate_scaling(self, sr):
        """Fig. 11: start + initialization are the bulk of the timeline."""
        timing = sr.adjustment_time("scale_out", RESNET50, 8, 16)
        startup = timing.phases["start"] + timing.phases["init"]
        assert startup > 0.6 * timing.total

    def test_migration_skips_restart(self, sr):
        """S&R migration benefits from async start (old workers are
        discarded), so only checkpoint + load remain."""
        timing = sr.adjustment_time("migration", RESNET50, 8, 8)
        assert "start" not in timing.phases
        assert "shutdown" not in timing.phases

    def test_load_contention_grows_with_readers(self, sr):
        few = sr.adjustment_time("scale_out", VGG19, 8, 9).phases["load"]
        many = ShutdownRestartModel(seed=0).adjustment_time(
            "scale_out", VGG19, 8, 64
        ).phases["load"]
        assert many > few


class TestFig15Ratios:
    """The paper's comparison: ~4x on migration, 10-80x on scaling."""

    @pytest.mark.parametrize("spec", list(MODEL_ZOO.values()),
                             ids=lambda s: s.name)
    def test_migration_ratio_moderate(self, elan, sr, spec):
        e = elan.adjustment_time("migration", spec, 8, 8).total
        s = sr.adjustment_time("migration", spec, 8, 8).total
        assert 2.0 < s / e < 8.0

    @pytest.mark.parametrize("spec", list(MODEL_ZOO.values()),
                             ids=lambda s: s.name)
    def test_scale_out_ratio_order_of_magnitude(self, elan, sr, spec):
        e = elan.adjustment_time("scale_out", spec, 8, 16).total
        s = sr.adjustment_time("scale_out", spec, 8, 16).total
        assert 10.0 < s / e < 150.0

    def test_scaling_gap_much_larger_than_migration_gap(self, elan, sr):
        """The async mechanism only helps where restart is on the critical
        path — scaling, not migration."""
        migration = (
            sr.adjustment_time("migration", RESNET50, 8, 8).total
            / elan.adjustment_time("migration", RESNET50, 8, 8).total
        )
        scaling = (
            sr.adjustment_time("scale_out", RESNET50, 8, 16).total
            / elan.adjustment_time("scale_out", RESNET50, 8, 16).total
        )
        assert scaling > 5 * migration


class TestFig14Overhead:
    @pytest.mark.parametrize("spec", list(MODEL_ZOO.values()),
                             ids=lambda s: s.name)
    @pytest.mark.parametrize("workers", [2, 8, 16, 64])
    def test_overhead_below_three_per_mille(self, spec, workers):
        """Fig. 14: runtime overhead < 3 per mille everywhere."""
        assert runtime_overhead_fraction(spec, workers) < 0.003

    def test_interval_divides_overhead(self):
        every = runtime_overhead_fraction(RESNET50, 8, coordination_interval=1)
        sparse = runtime_overhead_fraction(RESNET50, 8, coordination_interval=10)
        assert sparse == pytest.approx(every / 10)
