"""Property-based tests: the AM journal's durability contract.

Whatever sequence of records is appended, a file-backed journal must
(1) replay them verbatim after reopen, (2) drop — never choke on — a
torn or garbage tail, and (3) recover a clean *prefix* when the file is
cut at an arbitrary byte (the crash-mid-append case the checksummed
JSONL format exists for).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Journal
from repro.net.journal import RECORD_KINDS

# The wire codec reserves ``__nd__`` / ``__bytes__`` as its envelope
# markers: a payload dict carrying either literal key is outside the
# codec's domain (on the wire and in the journal alike).
keys = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=8
).filter(lambda k: k not in ("__nd__", "__bytes__"))
scalars = st.one_of(
    st.integers(min_value=-(2 ** 40), max_value=2 ** 40),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
    st.booleans(),
    st.none(),
)
datas = st.dictionaries(
    keys,
    st.one_of(scalars, st.lists(scalars, max_size=4)),
    max_size=4,
)
records = st.lists(
    st.tuples(st.sampled_from(sorted(RECORD_KINDS)), datas),
    min_size=1, max_size=12,
)


def fill(journal, entries):
    for kind, data in entries:
        journal.append(kind, **data)


class TestJournalFileProperties:
    @given(entries=records)
    @settings(max_examples=40, deadline=None)
    def test_reopen_replays_verbatim(self, tmp_path_factory, entries):
        path = str(tmp_path_factory.mktemp("journal") / "j.jsonl")
        journal = Journal(path)
        fill(journal, entries)
        written = journal.records()
        journal.close()

        reopened = Journal(path)
        assert reopened.records() == written
        assert reopened.truncated == 0
        assert [r["seq"] for r in written] == list(range(len(entries)))
        reopened.close()

    @given(entries=records, garbage=st.text(max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_garbage_tail_is_dropped(self, tmp_path_factory, entries,
                                     garbage):
        path = str(tmp_path_factory.mktemp("journal") / "j.jsonl")
        journal = Journal(path)
        fill(journal, entries)
        written = journal.records()
        journal.close()
        # A torn line can never be a valid record: no closing brace,
        # no checksum.
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"seq":' + garbage.replace("\n", " "))

        reopened = Journal(path)
        assert reopened.records() == written
        assert reopened.truncated == 1
        # And appending continues the sequence as if the tear never
        # happened.
        assert reopened.append("progress", iteration=1)["seq"] == len(
            entries
        )
        reopened.close()

    @given(entries=records, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_cut_file_recovers_a_prefix(self, tmp_path_factory, entries,
                                        data):
        path = str(tmp_path_factory.mktemp("journal") / "j.jsonl")
        journal = Journal(path)
        fill(journal, entries)
        written = journal.records()
        journal.close()

        raw = open(path, "rb").read()
        cut = data.draw(st.integers(min_value=0, max_value=len(raw)))
        with open(path, "wb") as f:
            f.write(raw[:cut])

        reopened = Journal(path)
        recovered = reopened.records()
        assert recovered == written[:len(recovered)]
        assert reopened.truncated <= 1
        reopened.close()

    @given(
        shape=st.tuples(
            st.integers(min_value=1, max_value=4),
            st.integers(min_value=1, max_value=4),
        ),
        seed=st.integers(min_value=0, max_value=2 ** 16),
    )
    @settings(max_examples=20, deadline=None)
    def test_ndarray_snapshots_round_trip(self, tmp_path_factory, shape,
                                          seed):
        path = str(tmp_path_factory.mktemp("journal") / "j.jsonl")
        params = {
            "w": np.random.default_rng(seed).normal(size=shape),
        }
        journal = Journal(path)
        journal.append(
            "snapshot", generation=1,
            state={"params": params, "optimizer": {}, "loader": {}},
        )
        journal.close()

        reopened = Journal(path)
        restored = reopened.records()[0]["data"]["state"]["params"]["w"]
        np.testing.assert_array_equal(restored, params["w"])
        assert restored.dtype == params["w"].dtype
        reopened.close()
