"""Property-based tests: hybrid scaling, progressive LR, throughput model."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import HybridScalingPolicy, LrRamp, ramp_for_scale
from repro.perfmodel import MODEL_ZOO, ThroughputModel, get_model

model_names = st.sampled_from(sorted(MODEL_ZOO))


class TestProgressiveLrProperties:
    @given(
        base=st.floats(1e-4, 1.0),
        scale=st.floats(0.1, 16.0),
        start=st.integers(0, 10_000),
        length=st.integers(0, 1000),
        t=st.integers(0, 20_000),
    )
    @settings(max_examples=200)
    def test_lr_always_between_base_and_target(self, base, scale, start, length, t):
        ramp = ramp_for_scale(base, scale, start, length)
        lr = ramp.lr_at(t)
        low, high = sorted((ramp.base_lr, ramp.target_lr))
        assert low - 1e-12 <= lr <= high + 1e-12

    @given(
        base=st.floats(1e-4, 1.0),
        scale=st.floats(1.0, 16.0),
        length=st.integers(1, 500),
    )
    @settings(max_examples=100)
    def test_monotone_when_scaling_up(self, base, scale, length):
        ramp = ramp_for_scale(base, scale, 0, length)
        values = [ramp.lr_at(t) for t in range(length + 10)]
        assert all(a <= b + 1e-15 for a, b in zip(values, values[1:]))

    @given(
        base=st.floats(1e-4, 1.0),
        scale=st.floats(0.1, 16.0),
        start=st.integers(0, 1000),
        length=st.integers(0, 500),
    )
    @settings(max_examples=100)
    def test_reaches_exact_target(self, base, scale, start, length):
        ramp = ramp_for_scale(base, scale, start, length)
        assert ramp.lr_at(start + length) == ramp.target_lr
        assert ramp.lr_at(start + length + 10**6) == ramp.target_lr


class TestHybridScalingProperties:
    @given(
        name=model_names,
        old=st.integers(1, 32),
        factor=st.integers(1, 8),
        batch_exp=st.integers(6, 12),
    )
    @settings(max_examples=60, deadline=None)
    def test_batch_never_shrinks_on_scale_out(self, name, old, factor, batch_exp):
        new = old * factor
        batch = 2**batch_exp
        assume(batch >= old)
        policy = HybridScalingPolicy(ThroughputModel(get_model(name)))
        new_batch, _strategy = policy.get_total_batch_size(old, new, batch)
        assert new_batch >= batch

    @given(
        name=model_names,
        old=st.integers(1, 32),
        factor=st.integers(2, 8),
        batch_exp=st.integers(6, 12),
    )
    @settings(max_examples=60, deadline=None)
    def test_batch_growth_bounded_by_worker_growth(self, name, old, factor, batch_exp):
        """The mechanism never scales the batch MORE than weak scaling
        would — weak scaling is its upper bound (Algorithm 1 line 15)."""
        new = old * factor
        batch = 2**batch_exp
        assume(batch >= old)
        policy = HybridScalingPolicy(ThroughputModel(get_model(name)))
        new_batch, _strategy = policy.get_total_batch_size(old, new, batch)
        assert new_batch <= batch * factor

    @given(
        name=model_names,
        old=st.integers(2, 32),
        batch_exp=st.integers(6, 12),
    )
    @settings(max_examples=40, deadline=None)
    def test_scale_in_never_changes_batch(self, name, old, batch_exp):
        batch = 2**batch_exp
        assume(batch >= old)
        policy = HybridScalingPolicy(ThroughputModel(get_model(name)))
        new_batch, strategy = policy.get_total_batch_size(old, old // 2, batch)
        assert new_batch == batch
        assert strategy == "strong"

    @given(
        name=model_names,
        old=st.integers(1, 16),
        factor=st.integers(2, 4),
        batch_exp=st.integers(7, 11),
    )
    @settings(max_examples=40, deadline=None)
    def test_chosen_batch_is_power_of_two_multiple_or_weak(self, name, old, factor, batch_exp):
        """Alg. 1 doubles k, so the result is batch * 2^i, except the
        weak-scaling fallback which is batch * (new/old)."""
        new = old * factor
        batch = 2**batch_exp
        assume(batch >= old)
        policy = HybridScalingPolicy(ThroughputModel(get_model(name)))
        new_batch, strategy = policy.get_total_batch_size(old, new, batch)
        ratio = new_batch / batch
        if strategy in ("strong", "hybrid"):
            assert math.log2(ratio) == int(math.log2(ratio))
        else:
            assert new_batch == max(new, int(round(batch * new / old)))


class TestThroughputModelProperties:
    @given(
        name=model_names,
        workers=st.integers(1, 128),
        batch_exp=st.integers(5, 13),
    )
    @settings(max_examples=100, deadline=None)
    def test_throughput_positive_and_finite(self, name, workers, batch_exp):
        batch = 2**batch_exp
        assume(batch >= workers)
        model = ThroughputModel(get_model(name))
        tp = model.throughput(workers, batch)
        assert 0 < tp < 1e9

    @given(name=model_names, workers=st.integers(1, 64))
    @settings(max_examples=60, deadline=None)
    def test_more_batch_per_worker_more_throughput(self, name, workers):
        """Larger per-worker batches always help (§III-1 obs. 2)."""
        model = ThroughputModel(get_model(name))
        small = model.throughput(workers, workers * 16)
        large = model.throughput(workers, workers * 64)
        assert large > small

    @given(name=model_names, batch_exp=st.integers(6, 12))
    @settings(max_examples=40, deadline=None)
    def test_optimal_workers_within_bounds(self, name, batch_exp):
        batch = 2**batch_exp
        model = ThroughputModel(get_model(name))
        optimal = model.optimal_workers(batch, max_workers=256)
        assert 1 <= optimal <= min(256, batch)
