"""Property-based tests: replication planning over arbitrary topologies."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.replication import plan_replication
from repro.replication.planner import _transfer_claims
from repro.topology import (
    BandwidthProfile,
    ServerSpec,
    build_cluster,
    gpus_of,
    link_level,
)

MB = 1024**2

cluster_shapes = st.builds(
    ServerSpec,
    sockets=st.integers(1, 2),
    switches_per_socket=st.integers(1, 3),
    gpus_per_switch=st.integers(1, 3),
)


@st.composite
def replication_scenarios(draw):
    spec = draw(cluster_shapes)
    nodes = draw(st.integers(1, 3))
    cluster = build_cluster(nodes, spec=spec)
    gpus = gpus_of(cluster)
    total = len(gpus)
    num_existing = draw(st.integers(1, max(1, total - 1)))
    num_new = draw(st.integers(0, total - num_existing))
    indices = draw(st.permutations(range(total)))
    existing = [gpus[i] for i in indices[:num_existing]]
    new = [gpus[i] for i in indices[num_existing : num_existing + num_new]]
    chaining = draw(st.booleans())
    return existing, new, chaining


class TestPlannerProperties:
    @given(scenario=replication_scenarios())
    @settings(max_examples=120, deadline=None)
    def test_every_new_worker_served_exactly_once(self, scenario):
        existing, new, chaining = scenario
        plan = plan_replication(existing, new, 100 * MB, 4096,
                                allow_chaining=chaining)
        targets = sorted(t.target.name for t in plan.transfers)
        assert targets == sorted(g.name for g in new)

    @given(scenario=replication_scenarios())
    @settings(max_examples=120, deadline=None)
    def test_rounds_are_contention_free(self, scenario):
        existing, new, chaining = scenario
        plan = plan_replication(existing, new, 100 * MB, 4096,
                                allow_chaining=chaining)
        for round_ in plan.rounds:
            claimed = set()
            for transfer in round_:
                claims = _transfer_claims(transfer)
                assert not claims & claimed
                claimed |= claims

    @given(scenario=replication_scenarios())
    @settings(max_examples=120, deadline=None)
    def test_source_is_never_farther_than_any_existing_worker(self, scenario):
        """Nearest-neighbor: the chosen source's link level is minimal
        among all workers that could have supplied the state."""
        existing, new, chaining = scenario
        if chaining:
            return  # with chaining the candidate set grows dynamically
        plan = plan_replication(existing, new, 100 * MB, 4096)
        for transfer in plan.transfers:
            best = min(
                int(link_level(transfer.target, source)) for source in existing
            )
            assert int(transfer.level) == best

    @given(scenario=replication_scenarios())
    @settings(max_examples=80, deadline=None)
    def test_chaining_never_slower(self, scenario):
        existing, new, _chaining = scenario
        profile = BandwidthProfile()
        plain = plan_replication(existing, new, 100 * MB, 4096)
        chained = plan_replication(existing, new, 100 * MB, 4096,
                                   allow_chaining=True)
        # Chaining adds sources, so rounds can only shrink or stay equal.
        assert len(chained.rounds) <= len(plain.rounds)
        assert (
            chained.estimated_time(profile)
            <= plain.estimated_time(profile) + 1e-9
        )

    @given(scenario=replication_scenarios())
    @settings(max_examples=80, deadline=None)
    def test_estimated_time_nonnegative_and_bounded(self, scenario):
        existing, new, chaining = scenario
        profile = BandwidthProfile()
        plan = plan_replication(existing, new, 100 * MB, 4096,
                                allow_chaining=chaining)
        estimate = plan.estimated_time(profile)
        assert estimate >= 0.0
        if new:
            # Never worse than strictly serial transfers over the slowest
            # transport.
            worst = len(new) * (
                profile.net.transfer_time(100 * MB) + 0.01
            )
            assert estimate <= worst
