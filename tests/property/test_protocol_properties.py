"""Property-based tests: coordination protocol and the KV store."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coordination import (
    AdjustmentKind,
    AdjustmentRequest,
    ApplicationMaster,
    DeduplicatingInbox,
    DirectiveKind,
    FaultyChannel,
    KeyValueStore,
    MessageFactory,
    MessageType,
    ReliableSender,
)


class TestAmProperties:
    @given(
        group_size=st.integers(1, 8),
        add=st.integers(1, 4),
        interval=st.integers(1, 8),
        coordinate_rounds=st.integers(0, 6),
        report_order=st.randoms(use_true_random=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_commit_always_at_future_boundary(
        self, group_size, add, interval, coordinate_rounds, report_order
    ):
        """Whatever the interleaving of coordinations and reports, the
        commit lands on a boundary strictly after the last coordinated
        iteration — the invariant that keeps lockstep workers agreeing."""
        workers = [f"w{i}" for i in range(group_size)]
        am = ApplicationMaster("job", workers, coordination_interval=interval)
        new_workers = [f"n{i}" for i in range(add)]
        am.request_adjustment(
            AdjustmentRequest(AdjustmentKind.SCALE_OUT,
                              add_workers=tuple(new_workers))
        )
        latest = 0
        pending_reports = list(new_workers)
        report_order.shuffle(pending_reports)
        # Phase A: new workers still starting — every coordination must
        # say CONTINUE (the asynchronous guarantee), training never waits.
        for round_index in range(coordinate_rounds):
            iteration = round_index * interval
            for worker in workers:
                directive = am.coordinate(worker, iteration)
                assert directive.kind is DirectiveKind.CONTINUE
            latest = iteration
        # Phase B: every report arrives (in arbitrary order).
        for report in pending_reports:
            am.worker_report(report)
        assert am.commit_iteration > latest
        assert am.commit_iteration % interval == 0
        # Every worker sees ADJUST at that boundary.
        for worker in workers:
            directive = am.coordinate(worker, am.commit_iteration)
            assert directive.kind is DirectiveKind.ADJUST
            assert set(new_workers) <= set(directive.new_group)

    @given(
        group_size=st.integers(2, 8),
        remove=st.integers(1, 4),
    )
    @settings(max_examples=50, deadline=None)
    def test_scale_in_group_algebra(self, group_size, remove):
        if remove >= group_size:
            remove = group_size - 1
        workers = [f"w{i}" for i in range(group_size)]
        am = ApplicationMaster("job", workers)
        victims = tuple(workers[:remove])
        am.request_adjustment(
            AdjustmentRequest(AdjustmentKind.SCALE_IN, remove_workers=victims)
        )
        directive = am.coordinate(workers[-1], am.commit_iteration)
        assert set(directive.new_group) == set(workers) - set(victims)
        assert len(directive.new_group) == group_size - remove


class TestReliableDeliveryProperties:
    @given(
        # drop_every=1 is a blackhole no retry can beat; exclude it.
        drop_every=st.sampled_from([0, 2, 3, 4, 5]),
        duplicate_every=st.integers(0, 5),
        messages=st.integers(1, 30),
    )
    @settings(max_examples=80, deadline=None)
    def test_exactly_once_under_arbitrary_faults(
        self, drop_every, duplicate_every, messages
    ):
        inbox = DeduplicatingInbox()
        received = []

        def deliver(message):
            if inbox.accept(message):
                received.append(message)

        channel = FaultyChannel(
            deliver, drop_every=drop_every, duplicate_every=duplicate_every
        )
        sender = ReliableSender(channel, max_attempts=10)
        factory = MessageFactory()
        for i in range(messages):
            message = factory.make(MessageType.COORDINATE, "w0", {"seq": i})
            assert sender.send(
                message,
                acknowledged=lambda m=message: any(
                    r.msg_id == m.msg_id for r in received
                ),
            )
        assert len(received) == messages
        assert len({m.msg_id for m in received}) == messages


class TestStoreProperties:
    @given(
        operations=st.lists(
            st.tuples(
                st.sampled_from(["put", "delete"]),
                st.sampled_from(["a", "b", "c"]),
                st.integers(),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_store_matches_reference_dict(self, operations):
        store = KeyValueStore()
        reference = {}
        for op, key, value in operations:
            if op == "put":
                store.put(key, value)
                reference[key] = value
            else:
                store.delete(key)
                reference.pop(key, None)
        for key in ("a", "b", "c"):
            assert store.get(key) == reference.get(key)
        assert store.keys() == sorted(reference)

    @given(puts=st.integers(1, 20))
    @settings(max_examples=40)
    def test_version_counts_puts(self, puts):
        store = KeyValueStore()
        for i in range(puts):
            assert store.put("k", i) == i + 1
        assert store.version("k") == puts
