"""Property-based tests: data-loading semantics (paper §V-C).

Whatever the dataset size, worker counts, batch sizes and adjustment
points, both loader semantics must hand out every sample exactly once per
epoch — the data-consistency guarantee elasticity must not break.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.training import ChunkLoader, SerialLoader

sizes = st.integers(min_value=1, max_value=400)
workers = st.integers(min_value=1, max_value=8)
batches = st.integers(min_value=1, max_value=16)


def drain_epoch(loader, num_workers, batch):
    seen = []
    start = loader.epoch
    guard = 0
    while loader.epoch == start:
        for part in loader.next_iteration(num_workers, batch):
            seen.extend(part.tolist())
        guard += 1
        assert guard < 10_000, "loader failed to finish the epoch"
    return seen


class TestSerialLoaderProperties:
    @given(size=sizes, num_workers=workers, batch=batches, seed=st.integers(0, 50))
    @settings(max_examples=60, deadline=None)
    def test_exactly_once_per_epoch(self, size, num_workers, batch, seed):
        loader = SerialLoader(size, seed=seed)
        seen = drain_epoch(loader, num_workers, batch)
        assert sorted(seen) == list(range(size))

    @given(
        size=st.integers(min_value=20, max_value=300),
        first=workers,
        second=workers,
        batch=batches,
        switch_after=st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_repartition_preserves_exactly_once(
        self, size, first, second, batch, switch_after
    ):
        """An elastic adjustment mid-epoch never duplicates or drops data."""
        loader = SerialLoader(size, seed=1)
        seen = []
        for _ in range(switch_after):
            if loader.epoch > 0:
                break
            for part in loader.next_iteration(first, batch):
                seen.extend(part.tolist())
        if loader.epoch == 0:
            loader.repartition(second)
            seen.extend(drain_epoch(loader, second, batch))
            assert sorted(seen) == list(range(size))

    @given(size=sizes, num_workers=workers, batch=batches)
    @settings(max_examples=40, deadline=None)
    def test_remaining_matches_position(self, size, num_workers, batch):
        loader = SerialLoader(size, seed=0)
        loader.next_iteration(num_workers, batch)
        state = loader.state_dict()
        assert loader.remaining_in_epoch == size - state["position"]

    @given(size=sizes, num_workers=workers, batch=batches, seed=st.integers(0, 20))
    @settings(max_examples=40, deadline=None)
    def test_replicas_stay_in_lockstep(self, size, num_workers, batch, seed):
        """Two replicas fed identical calls produce identical batches —
        the replicated-state-machine property every worker relies on."""
        a = SerialLoader(size, seed=seed)
        b = SerialLoader(size, seed=seed)
        for _ in range(4):
            batches_a = a.next_iteration(num_workers, batch)
            batches_b = b.next_iteration(num_workers, batch)
            for x, y in zip(batches_a, batches_b):
                assert np.array_equal(x, y)


class TestChunkLoaderProperties:
    @given(
        size=st.integers(min_value=1, max_value=300),
        chunk=st.integers(min_value=1, max_value=64),
        num_workers=workers,
        batch=batches,
    )
    @settings(max_examples=60, deadline=None)
    def test_exactly_once_per_epoch(self, size, chunk, num_workers, batch):
        loader = ChunkLoader(size, chunk_size=chunk, num_workers=num_workers)
        seen = drain_epoch(loader, num_workers, batch)
        assert sorted(seen) == list(range(size))

    @given(
        size=st.integers(min_value=30, max_value=300),
        chunk=st.integers(min_value=4, max_value=32),
        first=workers,
        second=workers,
        batch=batches,
    )
    @settings(max_examples=60, deadline=None)
    def test_repartition_preserves_exactly_once(
        self, size, chunk, first, second, batch
    ):
        loader = ChunkLoader(size, chunk_size=chunk, num_workers=first, seed=2)
        seen = []
        for part in loader.next_iteration(first, batch):
            seen.extend(part.tolist())
        if loader.epoch == 0:
            loader.repartition(second)
            seen.extend(drain_epoch(loader, second, batch))
        assert sorted(seen) == list(range(size))

    @given(
        size=st.integers(min_value=10, max_value=200),
        chunk=st.integers(min_value=2, max_value=32),
        num_workers=workers,
    )
    @settings(max_examples=40, deadline=None)
    def test_ownership_partitions_unfinished_chunks(self, size, chunk, num_workers):
        loader = ChunkLoader(size, chunk_size=chunk, num_workers=num_workers)
        loader.next_iteration(num_workers, 3)
        owned = [c for chunks in loader.ownership.values() for c in chunks]
        assert len(owned) == len(set(owned))  # no chunk owned twice
        unfinished = {
            c for c in loader.consumed if loader._remaining_of(c) > 0
        }
        assert unfinished <= set(owned) | unfinished
