"""Property-based tests: the deterministic shard plan (ISSUE 10).

The sharded-migration plane leans on one invariant: for ANY blob
geometry and ANY shard count, the shard plan tiles the blob exactly —
every chunk and every byte lands in exactly one shard, no gaps, no
overlaps — and hashing the shards' bytes in index order reproduces the
whole-blob digest.  A violation would let a joiner assemble a
digest-valid-per-shard snapshot that is silently wrong as a whole.
"""

import hashlib
import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import ChunkAssembler, StateBlob
from repro.net.chunks import decode_state_blob, shard_ranges


def geometry():
    """(total_bytes, chunk_bytes) pairs, including the degenerate ones."""
    return st.tuples(st.integers(0, 5000), st.integers(1, 512))


class TestShardRanges:
    @given(geom=geometry(), count=st.integers(1, 24))
    @settings(max_examples=300, deadline=None)
    def test_plan_tiles_chunks_and_bytes_exactly_once(self, geom, count):
        total_bytes, chunk_bytes = geom
        total_chunks = max(1, math.ceil(total_bytes / chunk_bytes))
        shards = shard_ranges(total_chunks, chunk_bytes, total_bytes, count)

        assert len(shards) == min(count, total_chunks)
        assert [s["index"] for s in shards] == list(range(len(shards)))
        # Chunk ranges are contiguous, half-open, and tile [0, total_chunks).
        assert shards[0]["start_chunk"] == 0
        assert shards[-1]["end_chunk"] == total_chunks
        for prev, nxt in zip(shards, shards[1:]):
            assert prev["end_chunk"] == nxt["start_chunk"]
        # Byte ranges follow the chunks and tile [0, total_bytes).
        assert shards[0]["start_byte"] == 0
        assert shards[-1]["end_byte"] == total_bytes
        for prev, nxt in zip(shards, shards[1:]):
            assert prev["end_byte"] == nxt["start_byte"]
        for shard in shards:
            assert shard["start_byte"] == shard["start_chunk"] * chunk_bytes
            assert shard["end_byte"] == min(
                shard["end_chunk"] * chunk_bytes, total_bytes
            )

    @given(geom=geometry(), count=st.integers(1, 24))
    @settings(max_examples=300, deadline=None)
    def test_remainder_chunks_go_to_lowest_shards(self, geom, count):
        total_bytes, chunk_bytes = geom
        total_chunks = max(1, math.ceil(total_bytes / chunk_bytes))
        shards = shard_ranges(total_chunks, chunk_bytes, total_bytes, count)
        sizes = [s["end_chunk"] - s["start_chunk"] for s in shards]
        assert all(size >= 1 for size in sizes)
        assert max(sizes) - min(sizes) <= 1
        # Non-increasing: the +1 remainder chunks come first.
        assert sizes == sorted(sizes, reverse=True)

    @given(geom=geometry(), count=st.integers(1, 24))
    @settings(max_examples=200, deadline=None)
    def test_plan_is_a_pure_function_of_the_geometry(self, geom, count):
        total_bytes, chunk_bytes = geom
        total_chunks = max(1, math.ceil(total_bytes / chunk_bytes))
        first = shard_ranges(total_chunks, chunk_bytes, total_bytes, count)
        again = shard_ranges(total_chunks, chunk_bytes, total_bytes, count)
        assert first == again


def random_state(draw):
    """A small synthetic training state with randomized array shapes."""
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    n_params = draw(st.integers(1, 4))
    params = {
        f"p{i}": rng.random(draw(st.integers(0, 300)))
        for i in range(n_params)
    }
    return {
        "params": params,
        "optimizer": {"lr": 0.1, "velocity": {"p0": rng.random(8)}},
        "loader": {"cursor": draw(st.integers(0, 100))},
    }


class TestStateBlobShardPlan:
    @given(data=st.data(), chunk_bytes=st.integers(16, 2048),
           count=st.integers(1, 12))
    @settings(max_examples=60, deadline=None)
    def test_shard_digests_compose_to_blob_digest(
        self, data, chunk_bytes, count
    ):
        state = random_state(data.draw)
        blob = StateBlob.encode(state, chunk_bytes=chunk_bytes)
        shards = blob.shard_plan(count)

        joined = b"".join(
            blob.byte_range(s["start_byte"], s["end_byte"]) for s in shards
        )
        assert len(joined) == blob.total_bytes
        # Each shard digest covers exactly its range; in index order the
        # ranges reassemble the full blob bit-for-bit.
        for shard in shards:
            piece = blob.byte_range(shard["start_byte"], shard["end_byte"])
            assert hashlib.sha256(piece).hexdigest() == shard["digest"]
        assert hashlib.sha256(joined).hexdigest() == blob.digest

    @given(data=st.data(), chunk_bytes=st.integers(16, 2048),
           count=st.integers(1, 12))
    @settings(max_examples=40, deadline=None)
    def test_assembler_completes_from_adopted_shards(
        self, data, chunk_bytes, count
    ):
        """Any mix of whole-shard adoption and per-chunk feeding yields a
        digest-identical blob — the delta-rejoin correctness property."""
        state = random_state(data.draw)
        blob = StateBlob.encode(state, chunk_bytes=chunk_bytes)
        shards = blob.shard_plan(count)
        adopt = {
            s["index"] for s in shards
            if data.draw(st.booleans(), label=f"adopt shard {s['index']}")
        }
        assembler = ChunkAssembler(
            "t", blob.total_bytes, blob.total_chunks, blob.chunk_bytes,
            codec=blob.codec,
        )
        for shard in shards:
            if shard["index"] in adopt:
                assembler.adopt_shard(
                    shard,
                    blob.byte_range(shard["start_byte"], shard["end_byte"]),
                    shard["digest"],
                )
            else:
                for seq in range(shard["start_chunk"], shard["end_chunk"]):
                    assembler.add(seq, blob.chunk(seq), blob.chunk_digest(seq))
        assembled = assembler.finish(blob.digest)
        decoded = decode_state_blob(assembled, codec=blob.codec)
        for name, value in state["params"].items():
            np.testing.assert_array_equal(decoded["params"][name], value)
