"""Property-based tests for the fleet trace merger.

The merger's contract: feed it *any* combination of per-process traces
— arbitrary interleavings, subsets, truncated tails, malformed events —
and it always produces a ``validate_events``-clean fleet trace, and the
same combination always produces the *same* trace regardless of the
order the processes were added in.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability import (
    TraceMerger,
    Tracer,
    derive_report,
    validate_events,
)

span_names = st.sampled_from(
    ["worker.iteration", "net.send", "sync.barrier", "net.state_upload"]
)
instant_names = st.sampled_from(
    ["worker.enrolled", "worker.condemned", "am.failover"]
)

# One recorded event: (kind, name, track, start_s, dur_s).
events_strategy = st.lists(
    st.one_of(
        st.tuples(
            st.just("span"), span_names, st.sampled_from(["main", "aux"]),
            st.floats(0.0, 100.0, allow_nan=False),
            st.floats(0.0, 5.0, allow_nan=False),
        ),
        st.tuples(
            st.just("instant"), instant_names,
            st.sampled_from(["main", "aux"]),
            st.floats(0.0, 100.0, allow_nan=False),
            st.just(0.0),
        ),
    ),
    max_size=12,
)


def build_trace(process, recorded, offset=None):
    tracer = Tracer(clock=lambda: 0.0, process=process)
    for kind, name, track, start, dur in recorded:
        if kind == "span":
            tracer.add_span(name, start, start + dur, track=track)
        else:
            tracer.add_instant(name, start, track=track)
    events = tracer.to_events()
    if offset is not None:
        # The process's own clock-sync evidence, as shipped on the wire.
        events.append({
            "name": "net.clock_sample", "cat": "net", "ph": "i", "s": "t",
            "ts": 0.0, "pid": 1, "tid": 1,
            "args": {"offset": offset, "rtt": 0.001},
        })
    return events


process_traces = st.dictionaries(
    keys=st.sampled_from(["am", "w0", "w1", "w2"]),
    values=st.tuples(
        events_strategy,
        st.one_of(st.none(), st.floats(-10.0, 10.0, allow_nan=False)),
    ),
    min_size=0, max_size=4,
)


class TestMergerProperties:
    @given(traces=process_traces, order=st.randoms(use_true_random=False))
    @settings(max_examples=100, deadline=None)
    def test_merge_is_always_valid_and_order_independent(
        self, traces, order
    ):
        """Any subset of processes, added in any order, merges into a
        validate-clean trace — and the result is byte-identical no
        matter the add order."""
        names = sorted(traces)
        shuffled = list(names)
        order.shuffle(shuffled)
        sorted_merger, shuffled_merger = TraceMerger(), TraceMerger()
        for name in names:
            recorded, offset = traces[name]
            sorted_merger.add(build_trace(name, recorded, offset), name)
        for name in shuffled:
            recorded, offset = traces[name]
            shuffled_merger.add(build_trace(name, recorded, offset), name)
        merged = sorted_merger.merge()
        assert validate_events(merged) == []
        assert merged == shuffled_merger.merge()
        # The merge never invents or loses data events: every usable
        # input event survives, nothing else appears.
        expected = sum(
            len(r) + (1 if offset is not None else 0)
            for r, offset in traces.values()
        )
        produced = [e for e in merged if e.get("ph") != "M"]
        if expected:
            assert len(produced) == expected
        # ...and a goodput report can always be derived from it.
        derive_report(merged)

    @given(
        traces=process_traces,
        truncate=st.integers(0, 12),
        victim=st.sampled_from(["am", "w0", "w1", "w2"]),
    )
    @settings(max_examples=100, deadline=None)
    def test_truncated_tails_still_merge_clean(
        self, traces, truncate, victim
    ):
        """A worker that died mid-ship leaves a truncated event list;
        the merge of the partial view must still validate."""
        merger = TraceMerger()
        for name in sorted(traces):
            recorded, offset = traces[name]
            events = build_trace(name, recorded, offset)
            if name == victim:
                events = events[:truncate]
            merger.add(events, name)
        assert validate_events(merger.merge()) == []

    @given(traces=process_traces)
    @settings(max_examples=50, deadline=None)
    def test_offsets_shift_timestamps_exactly(self, traces):
        """Every merged event's timestamp is its source timestamp plus
        its process's offset — alignment is a pure shift, never a
        reorder within a process."""
        merger = TraceMerger()
        for name in sorted(traces):
            recorded, offset = traces[name]
            merger.add(build_trace(name, recorded, offset), name)
        offsets = merger.offsets()
        merged = merger.merge()
        pid_names = {
            e["pid"]: e["args"]["name"] for e in merged
            if e.get("ph") == "M" and e.get("name") == "process_name"
        }
        for name in sorted(traces):
            recorded, _ = traces[name]
            source_ts = sorted(start * 1e6 for _, _, _, start, _ in recorded)
            pid = next(
                (p for p, n in pid_names.items() if n == name), None
            )
            if pid is None:
                assert not recorded
                continue
            shifted = sorted(
                e["ts"] - offsets[name] * 1e6 for e in merged
                if e.get("ph") != "M" and e["pid"] == pid
                and e.get("name") not in ("net.clock_sample", "fleet.merge")
            )
            assert len(shifted) == len(source_ts)
            for got, want in zip(shifted, source_ts):
                assert abs(got - want) < 1e-6
