"""Property-based tests: convergence and memory models."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.perfmodel import (
    MOBILENETV2_CIFAR100,
    MODEL_ZOO,
    RESNET50_IMAGENET,
    AccuracyModel,
    LrPolicy,
    fits,
    get_model,
    max_batch_per_worker,
    memory_footprint,
    min_workers_for_batch,
)

specs = st.sampled_from([RESNET50_IMAGENET, MOBILENETV2_CIFAR100])
model_names = st.sampled_from(sorted(MODEL_ZOO))
policies = st.sampled_from(list(LrPolicy))


class TestConvergenceProperties:
    @given(spec=specs, e1=st.floats(0, 90), e2=st.floats(0, 90))
    @settings(max_examples=150)
    def test_trajectory_monotone(self, spec, e1, e2):
        model = AccuracyModel(spec)
        lo, hi = sorted((e1, e2))
        assume(hi <= spec.phases[-1].end_epoch)
        assert model.accuracy_at_epoch(lo) <= model.accuracy_at_epoch(hi) + 1e-12

    @given(spec=specs, epoch=st.floats(0, 90), penalty=st.floats(0, 0.1))
    @settings(max_examples=100)
    def test_accuracy_bounded(self, spec, epoch, penalty):
        model = AccuracyModel(spec)
        assume(epoch <= spec.phases[-1].end_epoch)
        accuracy = model.accuracy_at_epoch(epoch, penalty=penalty)
        assert 0.0 <= accuracy <= 1.0

    @given(spec=specs, batch_exp=st.integers(5, 14), policy=policies)
    @settings(max_examples=150)
    def test_penalty_nonnegative_and_policy_ordered(self, spec, batch_exp, policy):
        model = AccuracyModel(spec)
        batch = 2**batch_exp
        penalty = model.final_accuracy_penalty(batch, policy)
        assert penalty >= 0.0
        # Progressive linear scaling never does worse than the others.
        progressive = model.final_accuracy_penalty(
            batch, LrPolicy.PROGRESSIVE_LINEAR
        )
        assert progressive <= penalty + 1e-12

    @given(spec=specs, b1=st.integers(5, 14), b2=st.integers(5, 14))
    @settings(max_examples=100)
    def test_fixed_lr_penalty_monotone_in_batch(self, spec, b1, b2):
        model = AccuracyModel(spec)
        lo, hi = sorted((2**b1, 2**b2))
        assert model.final_accuracy_penalty(
            lo, LrPolicy.FIXED
        ) <= model.final_accuracy_penalty(hi, LrPolicy.FIXED) + 1e-12

    @given(spec=specs, target=st.floats(0.2, 0.7))
    @settings(max_examples=80)
    def test_epoch_reaching_is_consistent(self, spec, target):
        model = AccuracyModel(spec)
        end = spec.phases[-1].end_epoch
        assume(model.accuracy_at_epoch(end) >= target)
        epoch = model.epoch_reaching(target)
        assert model.accuracy_at_epoch(epoch) >= target - 1e-9
        if epoch > 0.01:
            assert model.accuracy_at_epoch(epoch - 0.01) <= target + 1e-9


class TestMemoryProperties:
    @given(name=model_names, b1=st.integers(0, 256), b2=st.integers(0, 256))
    @settings(max_examples=100)
    def test_footprint_monotone_in_batch(self, name, b1, b2):
        model = get_model(name)
        lo, hi = sorted((b1, b2))
        assert memory_footprint(model, lo) <= memory_footprint(model, hi)

    @given(name=model_names, batch_exp=st.integers(5, 14))
    @settings(max_examples=100)
    def test_min_workers_is_minimal_and_feasible(self, name, batch_exp):
        model = get_model(name)
        batch = 2**batch_exp
        workers = min_workers_for_batch(model, batch)
        assert fits(model, workers, batch)
        if workers > 1:
            assert not fits(model, workers - 1, batch)

    @given(name=model_names, workers=st.integers(1, 64))
    @settings(max_examples=80)
    def test_max_batch_boundary(self, name, workers):
        model = get_model(name)
        limit = max_batch_per_worker(model)
        assert fits(model, workers, workers * limit)
        assert not fits(model, workers, workers * (limit + 2))
