"""Property-based tests: LR schedules and the scaled-schedule composition."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lr_schedules import (
    ConstantLr,
    CosineDecay,
    ScaledSchedule,
    StepDecay,
    WarmupSchedule,
)


@st.composite
def base_schedules(draw):
    kind = draw(st.sampled_from(["constant", "step", "cosine", "warmup"]))
    base_lr = draw(st.floats(1e-4, 1.0))
    if kind == "constant":
        return ConstantLr(base_lr)
    if kind == "step":
        milestones = tuple(sorted(draw(
            st.sets(st.integers(1, 5000), min_size=0, max_size=4)
        )))
        return StepDecay(base_lr=base_lr, milestones=milestones)
    if kind == "cosine":
        return CosineDecay(base_lr=base_lr,
                           total_iterations=draw(st.integers(1, 5000)))
    return WarmupSchedule(ConstantLr(base_lr),
                          warmup_iterations=draw(st.integers(0, 200)))


@st.composite
def scale_events(draw):
    count = draw(st.integers(0, 4))
    events = []
    iteration = 0
    for _ in range(count):
        iteration += draw(st.integers(0, 1000))
        factor = draw(st.sampled_from([0.5, 1.0, 2.0, 4.0]))
        ramp = draw(st.integers(0, 200))
        events.append((factor, iteration, ramp))
    return events


class TestBaseScheduleProperties:
    @given(schedule=base_schedules(), t=st.integers(0, 10_000))
    @settings(max_examples=150)
    def test_lr_positive_and_bounded(self, schedule, t):
        lr = schedule.lr_at(t)
        assert 0.0 <= lr <= 1.0 + 1e-12

    @given(schedule=base_schedules(), t1=st.integers(0, 10_000),
           t2=st.integers(0, 10_000))
    @settings(max_examples=100)
    def test_decay_schedules_never_increase_after_warmup(self, schedule, t1, t2):
        warmup = getattr(schedule, "warmup_iterations", 0)
        lo, hi = sorted((t1, t2))
        if lo < warmup:
            return
        assert schedule.lr_at(hi) <= schedule.lr_at(lo) + 1e-12


class TestScaledScheduleProperties:
    @given(base=base_schedules(), events=scale_events(),
           t=st.integers(0, 12_000))
    @settings(max_examples=150)
    def test_scale_bounded_by_extreme_cumulative_factors(self, base, events, t):
        schedule = ScaledSchedule(base)
        cumulative = [1.0]
        for factor, iteration, ramp in events:
            schedule.add_scale(factor, iteration, ramp)
            cumulative.append(cumulative[-1] * factor)
        scale = schedule.scale_at(t)
        assert min(cumulative) - 1e-12 <= scale <= max(cumulative) + 1e-12

    @given(base=base_schedules(), events=scale_events())
    @settings(max_examples=100)
    def test_final_scale_is_product_of_factors(self, base, events):
        schedule = ScaledSchedule(base)
        product = 1.0
        last = 0
        for factor, iteration, ramp in events:
            schedule.add_scale(factor, iteration, ramp)
            product *= factor
            last = iteration + ramp
        assert schedule.scale_at(last + 10_000) == pytest.approx(product)
        assert schedule.cumulative_scale == pytest.approx(product)

    @given(base=base_schedules(), events=scale_events(),
           t=st.integers(0, 12_000))
    @settings(max_examples=100)
    def test_composition_is_product(self, base, events, t):
        schedule = ScaledSchedule(base)
        for factor, iteration, ramp in events:
            schedule.add_scale(factor, iteration, ramp)
        assert schedule.lr_at(t) == pytest.approx(
            base.lr_at(t) * schedule.scale_at(t)
        )
