"""Property-based tests: exactly-once delivery on both net transports.

Randomized drop / duplicate / reset / delayed-duplicate (reorder)
schedules are replayed against the §V-D recipe.  Whatever the schedule,
every request the client considers answered was executed exactly once by
the server, and the reply it got is the reply of *its* execution.
"""

import threading

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coordination.faults import FaultPlan
from repro.coordination.messages import Message, MessageType
from repro.net import (
    ChunkedUploader,
    ChunkStore,
    MemoryPeerHost,
    RingDegraded,
    RingMailbox,
    RingNode,
    ServerCore,
    TcpServer,
    memory_link,
    ring_reference_average,
    tcp_link,
)


def counting_core():
    """Echo server that stamps each reply with its execution number."""
    core = ServerCore(
        handler=lambda message: {
            "i": message.payload["i"],
            "execution": core.handled + 1,
        }
    )
    return core


schedules = st.fixed_dictionaries(
    {
        # drop_every=1 would drop every send including every resend —
        # no recipe can deliver over a channel that never delivers.
        "drop_every": st.sampled_from([0, 2, 3, 4, 5]),
        "duplicate_every": st.integers(0, 5),
        "resets": st.lists(st.integers(1, 40), max_size=4, unique=True),
        "requests": st.integers(1, 12),
    }
)


class TestExactlyOnceInMemory:
    @given(schedule=schedules)
    @settings(max_examples=60, deadline=None)
    def test_every_request_executes_once(self, schedule):
        core = counting_core()
        plan = FaultPlan(
            drop_every=schedule["drop_every"],
            duplicate_every=schedule["duplicate_every"],
            connection_resets=tuple(schedule["resets"]),
        )
        link = memory_link(
            core, "w0", fault_plan=plan, ack_timeout=0.02, max_attempts=20
        )
        for i in range(schedule["requests"]):
            reply = link.request(MessageType.ACK, {"i": i})
            # The reply answers THIS request, not a stale one.
            assert reply["i"] == i
        # Exactly-once: executions equal logical requests, regardless of
        # how many retransmissions or duplicates the schedule produced.
        assert core.executions[("w0", "ack")] == schedule["requests"]
        assert core.handled == schedule["requests"]

    @given(
        stash=st.lists(st.booleans(), min_size=2, max_size=12),
    )
    @settings(max_examples=40, deadline=None)
    def test_reordered_duplicates_are_absorbed(self, stash):
        """Duplicates delivered *after later messages* (reordering) are
        still deduplicated: the recipe keys on msg_id, not arrival
        order."""
        core = counting_core()
        link = memory_link(core, "w0")

        class ReorderingTransport:
            """Wraps the real transport; optionally holds back a
            duplicate of each send and injects it after the next one."""

            def __init__(self, inner):
                self.inner = inner
                self.node_id = inner.node_id
                self.pending: "list[Message]" = []
                self.index = 0

            def send(self, message):
                delivered = self.inner.send(message)
                held, self.pending = self.pending, []
                for old in held:  # the out-of-order duplicate
                    self.inner.send(old.duplicate())
                if self.index < len(stash) and stash[self.index]:
                    self.pending.append(message)
                self.index += 1
                return delivered

            def close(self):
                self.inner.close()

            @property
            def connected(self):
                return self.inner.connected

        link.attach(ReorderingTransport(link.transport))
        for i in range(len(stash)):
            assert link.request(MessageType.ACK, {"i": i})["i"] == i
        assert core.executions[("w0", "ack")] == len(stash)
        assert core.duplicates == sum(stash[:-1])


class TestExactlyOnceOverTcp:
    @given(schedule=schedules)
    @settings(max_examples=6, deadline=None)
    def test_same_property_over_loopback_sockets(self, schedule):
        """The identical property, over real sockets (fewer examples:
        each one pays for a listener and a handshake)."""
        core = counting_core()
        server = TcpServer(core).start()
        plan = FaultPlan(
            drop_every=schedule["drop_every"],
            duplicate_every=schedule["duplicate_every"],
            connection_resets=tuple(schedule["resets"]),
        )
        link, _transport = tcp_link(
            server.host, server.port, "w0",
            fault_plan=plan, ack_timeout=0.2, max_attempts=20,
            heartbeat_interval=None,
        )
        try:
            for i in range(schedule["requests"]):
                assert link.request(MessageType.ACK, {"i": i})["i"] == i
            assert core.executions[("w0", "ack")] == schedule["requests"]
        finally:
            link.close()
            server.close()


def chunk_core():
    """A bare :class:`ChunkStore` behind the counting/dedup core."""
    store = ChunkStore()
    completed = {}

    def handle(message):
        if message.msg_type is MessageType.STATE_CHUNK:
            return store.handle_chunk(message.sender, message.payload)
        reply, assembler = store.handle_done(message.sender, message.payload)
        if assembler is not None:
            completed[assembler.transfer_id] = assembler
        return reply

    return ServerCore(handler=handle, node_id="am"), completed


chunk_schedules = st.fixed_dictionaries(
    {
        "drop_every": st.sampled_from([0, 2, 3, 4, 5]),
        "duplicate_every": st.integers(0, 5),
        "resets": st.lists(st.integers(1, 60), max_size=4, unique=True),
        "chunk_bytes": st.sampled_from([64, 256, 1024]),
        "window": st.sampled_from([1, 2, 4]),
        "floats": st.integers(1, 300),
    }
)


def assert_chunked_upload_exactly_once(core, link, schedule, completed):
    """Whatever the schedule: every chunk handler ran exactly once, no
    duplicate ever reached the assembly buffer, and the reassembled
    blob is byte-identical (digest-verified) to what was sent."""
    state = {
        "params": {"w": np.arange(schedule["floats"], dtype=np.float64)},
        "optimizer": {"lr": 0.1},
        "loader": {"cursor": 2},
    }
    uploader = ChunkedUploader(
        link, chunk_bytes=schedule["chunk_bytes"], window=schedule["window"]
    )
    summary = uploader.upload(state)
    assembler = completed[summary["transfer_id"]]
    assert core.executions[("w0", "state_chunk")] == summary["chunks"]
    assert core.executions[("w0", "state_done")] == 1
    assert assembler.duplicates == 0
    decoded = assembler.decode(summary["digest"])
    np.testing.assert_array_equal(
        decoded["params"]["w"], state["params"]["w"]
    )


class TestChunkedTransferProperties:
    """PR-4: the chunked replication data plane inherits exactly-once.

    Chunks are ordinary reliable requests, so the §V-D recipe's
    guarantee must lift to whole transfers: resume after resets, dedup
    of duplicated chunks, and a digest-verified byte-identical blob —
    on both transports, under any schedule.
    """

    @given(schedule=chunk_schedules)
    @settings(max_examples=40, deadline=None)
    def test_transfer_survives_any_schedule_in_memory(self, schedule):
        core, completed = chunk_core()
        plan = FaultPlan(
            drop_every=schedule["drop_every"],
            duplicate_every=schedule["duplicate_every"],
            connection_resets=tuple(schedule["resets"]),
        )
        link = memory_link(
            core, "w0", fault_plan=plan, ack_timeout=0.02, max_attempts=20
        )
        assert_chunked_upload_exactly_once(core, link, schedule, completed)

    @given(schedule=chunk_schedules)
    @settings(max_examples=4, deadline=None)
    def test_transfer_survives_any_schedule_over_tcp(self, schedule):
        core, completed = chunk_core()
        server = TcpServer(core).start()
        plan = FaultPlan(
            drop_every=schedule["drop_every"],
            duplicate_every=schedule["duplicate_every"],
            connection_resets=tuple(schedule["resets"]),
        )
        link, _transport = tcp_link(
            server.host, server.port, "w0",
            fault_plan=plan, ack_timeout=0.2, max_attempts=20,
            heartbeat_interval=None,
        )
        try:
            assert_chunked_upload_exactly_once(
                core, link, schedule, completed
            )
        finally:
            link.close()
            server.close()


ring_schedules = st.fixed_dictionaries(
    {
        "drop_every": st.sampled_from([0, 2, 3, 4, 5]),
        "duplicate_every": st.integers(0, 5),
        "resets": st.lists(st.integers(1, 40), max_size=3, unique=True),
        "members": st.integers(2, 4),
        "bucket_bytes": st.sampled_from([64, 256, 4096]),
        "elements": st.integers(1, 120),
        "seed": st.integers(0, 2**16),
    }
)


class TestRingAllreduceProperties:
    """PR-5: the ring gradient plane inherits exactly-once too.

    Segments are ordinary reliable requests between peers, so under any
    randomized drop/duplicate/reset schedule every rank either finishes
    with the *bit-exact* reference mean or raises
    :class:`RingDegraded` — never a silently wrong result — and no
    duplicate segment is ever executed twice by a peer core.
    """

    @given(schedule=ring_schedules)
    @settings(max_examples=25, deadline=None)
    def test_exact_mean_or_explicit_degradation(self, schedule):
        rng = np.random.default_rng(schedule["seed"])
        workers = [f"w{i}" for i in range(schedule["members"])]
        grads = {
            w: {
                "a": rng.standard_normal(schedule["elements"]),
                "b": rng.standard_normal((3, 2)),
            }
            for w in workers
        }
        host = MemoryPeerHost()
        # The chaos plan afflicts one member's outbound peer links.
        plan = FaultPlan(
            drop_every=schedule["drop_every"],
            duplicate_every=schedule["duplicate_every"],
            connection_resets=tuple(schedule["resets"]),
        )
        nodes, cores, addrs = {}, {}, {}
        for worker in workers:
            mailbox = RingMailbox()
            core = cores[worker] = ServerCore(
                mailbox.handle, node_id=f"{worker}/peer"
            )
            addrs[worker] = host.serve(core, worker)
            faulty = plan if worker == workers[0] else None
            connect = (
                lambda addr, w=worker, p=faulty: host.connect(
                    addr, node_id=w, fault_plan=p,
                    ack_timeout=0.02, max_attempts=20,
                )
            )
            nodes[worker] = RingNode(
                worker, mailbox, connect,
                bucket_bytes=schedule["bucket_bytes"], step_timeout=5.0,
            )
        ring = {
            "epoch": 0, "order": workers, "peers": addrs, "active_from": 0,
        }
        results, errors = {}, {}

        def run(worker):
            nodes[worker].install(ring)
            try:
                results[worker] = nodes[worker].allreduce(
                    0, 0, grads[worker]
                )
            except RingDegraded as exc:
                errors[worker] = exc

        threads = [
            threading.Thread(target=run, args=(w,), daemon=True)
            for w in workers
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        try:
            assert all(not t.is_alive() for t in threads), "ring hung"
            assert set(results) | set(errors) == set(workers)
            reference = ring_reference_average([grads[w] for w in workers])
            for worker, result in results.items():
                for name in reference:
                    assert result[name].tobytes() == (
                        reference[name].tobytes()
                    ), (worker, name)
            # Exactly-once on every peer core: each executed segment ran
            # once; whatever the schedule duplicated was dropped by
            # dedup, not executed again.
            for core in cores.values():
                assert core.handled == sum(core.executions.values())
        finally:
            for node in nodes.values():
                node.close()
            host.close()
