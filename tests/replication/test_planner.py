"""Tests for the concurrent IO-free replication planner (paper §IV-3)."""

import pytest

from repro.replication import plan_migration, plan_replication
from repro.topology import (
    BandwidthProfile,
    LinkLevel,
    Transport,
    build_cluster,
    gpu_by_name,
    gpus_of,
)

MB = 1024**2
GPU_BYTES = 200 * MB  # ResNet-50-ish params + momentum
CPU_BYTES = 4096


@pytest.fixture
def cluster():
    return build_cluster(2)


def gpu(cluster, name):
    return gpu_by_name(cluster, name)


class TestNeighborSelection:
    def test_each_new_worker_gets_nearest_source(self, cluster):
        """Paper Fig. 9: E (next to C) fetches from C; F (node1) from D."""
        existing = [gpu(cluster, n) for n in
                    ("node0/gpu0", "node0/gpu1", "node0/gpu4", "node1/gpu0")]
        new = [gpu(cluster, "node0/gpu5"), gpu(cluster, "node1/gpu4")]
        plan = plan_replication(existing, new, GPU_BYTES, CPU_BYTES)
        by_target = {t.target.name: t for t in plan.transfers}
        assert by_target["node0/gpu5"].source.name == "node0/gpu4"
        assert by_target["node1/gpu4"].source.name == "node1/gpu0"

    def test_figure9_transfers_run_concurrently(self, cluster):
        """The two Fig. 9 replications proceed in parallel (one round)."""
        existing = [gpu(cluster, n) for n in
                    ("node0/gpu0", "node0/gpu1", "node0/gpu4", "node1/gpu0")]
        new = [gpu(cluster, "node0/gpu5"), gpu(cluster, "node1/gpu4")]
        plan = plan_replication(existing, new, GPU_BYTES, CPU_BYTES)
        assert len(plan.rounds) == 1
        assert plan.max_concurrency == 2

    def test_transport_follows_level(self, cluster):
        existing = [gpu(cluster, "node0/gpu0")]
        new = [gpu(cluster, "node0/gpu1"),  # L1
               gpu(cluster, "node0/gpu2"),  # L2
               gpu(cluster, "node0/gpu4"),  # L3
               gpu(cluster, "node1/gpu0")]  # L4
        plan = plan_replication(existing, new, GPU_BYTES, CPU_BYTES)
        transports = {t.target.name: t.transport for t in plan.transfers}
        assert transports["node0/gpu1"] is Transport.P2P
        assert transports["node0/gpu2"] is Transport.SHM
        assert transports["node0/gpu4"] is Transport.SHM
        assert transports["node1/gpu0"] is Transport.NET


class TestContention:
    def test_shared_source_serializes(self, cluster):
        """Two new workers nearest to the same source take turns."""
        existing = [gpu(cluster, "node0/gpu0")]
        new = [gpu(cluster, "node0/gpu1"), gpu(cluster, "node0/gpu2")]
        plan = plan_replication(existing, new, GPU_BYTES, CPU_BYTES)
        assert len(plan.rounds) == 2

    def test_l3_crossings_run_in_turn(self, cluster):
        """Paper §IV-3: replications that traverse L3 (QPI) contend."""
        existing = [gpu(cluster, "node0/gpu0"), gpu(cluster, "node0/gpu2")]
        new = [gpu(cluster, "node0/gpu4"), gpu(cluster, "node0/gpu6")]
        plan = plan_replication(existing, new, GPU_BYTES, CPU_BYTES)
        # Both transfers cross the node0 QPI link -> two rounds.
        assert len(plan.rounds) == 2

    def test_disjoint_l1_transfers_parallel(self, cluster):
        existing = [gpu(cluster, "node0/gpu0"), gpu(cluster, "node0/gpu2")]
        new = [gpu(cluster, "node0/gpu1"), gpu(cluster, "node0/gpu3")]
        plan = plan_replication(existing, new, GPU_BYTES, CPU_BYTES)
        assert len(plan.rounds) == 1

    def test_chaining_increases_fanout(self):
        """Extension: with chaining, a replicated worker becomes a source,
        halving the rounds of a large scale-out from one seed."""
        cluster = build_cluster(1)
        gpus = gpus_of(cluster)
        existing, new = [gpus[0]], gpus[1:8]
        serial = plan_replication(existing, new, GPU_BYTES, CPU_BYTES)
        chained = plan_replication(
            existing, new, GPU_BYTES, CPU_BYTES, allow_chaining=True
        )
        assert len(chained.rounds) < len(serial.rounds)
        profile = BandwidthProfile()
        assert chained.estimated_time(profile) < serial.estimated_time(profile)


class TestPlanProperties:
    def test_every_new_worker_covered_exactly_once(self, cluster):
        existing = gpus_of(cluster)[:4]
        new = gpus_of(cluster)[4:12]
        plan = plan_replication(existing, new, GPU_BYTES, CPU_BYTES)
        targets = [t.target.name for t in plan.transfers]
        assert sorted(targets) == sorted(g.name for g in new)

    def test_sources_only_from_existing_without_chaining(self, cluster):
        existing = gpus_of(cluster)[:4]
        new = gpus_of(cluster)[4:12]
        plan = plan_replication(existing, new, GPU_BYTES, CPU_BYTES)
        existing_names = {g.name for g in existing}
        assert all(t.source.name in existing_names for t in plan.transfers)

    def test_rounds_partition_transfers(self, cluster):
        existing = gpus_of(cluster)[:4]
        new = gpus_of(cluster)[4:10]
        plan = plan_replication(existing, new, GPU_BYTES, CPU_BYTES)
        in_rounds = [t for round_ in plan.rounds for t in round_]
        assert sorted(t.target.name for t in in_rounds) == sorted(
            t.target.name for t in plan.transfers
        )

    def test_no_round_has_conflicting_claims(self, cluster):
        from repro.replication.planner import _transfer_claims

        existing = gpus_of(cluster)[:4]
        new = gpus_of(cluster)[4:12]
        plan = plan_replication(existing, new, GPU_BYTES, CPU_BYTES)
        for round_ in plan.rounds:
            seen = set()
            for transfer in round_:
                claims = _transfer_claims(transfer)
                assert not claims & seen
                seen |= claims

    def test_estimated_time_subsecond_for_resnet_scale(self, cluster):
        """The paper's headline: replication completes in ~1s."""
        existing = gpus_of(cluster)[:8]
        new = gpus_of(cluster)[8:16]
        plan = plan_replication(existing, new, GPU_BYTES, CPU_BYTES)
        assert plan.estimated_time(BandwidthProfile()) < 1.0

    def test_empty_new_set_is_empty_plan(self, cluster):
        plan = plan_replication(gpus_of(cluster)[:2], [], GPU_BYTES, CPU_BYTES)
        assert plan.transfers == ()
        assert plan.estimated_time(BandwidthProfile()) == 0.0

    def test_validation(self, cluster):
        gpus = gpus_of(cluster)
        with pytest.raises(ValueError):
            plan_replication([], gpus[:2], GPU_BYTES, CPU_BYTES)
        with pytest.raises(ValueError):
            plan_replication(gpus[:2], gpus[1:3], GPU_BYTES, CPU_BYTES)


class TestMigration:
    def test_migration_covers_all_new_workers(self, cluster):
        old = gpus_of(cluster)[:4]
        new = gpus_of(cluster)[8:12]
        plan = plan_migration(old, new, GPU_BYTES, CPU_BYTES)
        assert sorted(t.target.name for t in plan.transfers) == sorted(
            g.name for g in new
        )

    def test_cross_node_migration_uses_net(self, cluster):
        old = [gpu_by_name(cluster, "node0/gpu0")]
        new = [gpu_by_name(cluster, "node1/gpu0")]
        plan = plan_migration(old, new, GPU_BYTES, CPU_BYTES)
        assert plan.transfers[0].transport is Transport.NET
        assert plan.transfers[0].level is LinkLevel.L4


class TestFanIn:
    """The sharded-migration axis: one target pulls from several sources."""

    def test_fan_in_splits_bytes_across_distinct_sources(self, cluster):
        existing = gpus_of(cluster)[:4]
        new = [gpus_of(cluster)[5]]
        plan = plan_replication(existing, new, GPU_BYTES, CPU_BYTES, fan_in=4)
        assert len(plan.transfers) == 4
        assert len({t.source.name for t in plan.transfers}) == 4
        assert all(t.target.name == new[0].name for t in plan.transfers)
        assert sum(t.gpu_bytes for t in plan.transfers) == GPU_BYTES
        # The small CPU state rides exactly one stream.
        assert sum(1 for t in plan.transfers if t.cpu_bytes) == 1

    def test_fan_in_clamps_to_available_sources(self, cluster):
        existing = gpus_of(cluster)[:2]
        new = [gpus_of(cluster)[5]]
        plan = plan_replication(existing, new, GPU_BYTES, CPU_BYTES, fan_in=8)
        assert len(plan.transfers) == 2
        assert sum(t.gpu_bytes for t in plan.transfers) == GPU_BYTES

    def test_fan_in_groups_schedule_as_units(self, cluster):
        """Two same-round joiners must not share any owner link: each
        joiner's whole fan-in group lands in one round, and the two
        groups land in different rounds."""
        existing = gpus_of(cluster)[:2]
        new = [gpus_of(cluster)[5], gpus_of(cluster)[6]]
        plan = plan_replication(existing, new, GPU_BYTES, CPU_BYTES, fan_in=2)
        rounds_of = {}
        for round_index, round_transfers in enumerate(plan.rounds):
            for transfer in round_transfers:
                rounds_of.setdefault(transfer.target.name, set()).add(
                    round_index
                )
        for target, rounds in rounds_of.items():
            assert len(rounds) == 1, (target, rounds)
        assert rounds_of[new[0].name] != rounds_of[new[1].name]

    def test_fan_in_one_is_the_legacy_plan(self, cluster):
        existing = gpus_of(cluster)[:4]
        new = gpus_of(cluster)[5:7]
        legacy = plan_replication(existing, new, GPU_BYTES, CPU_BYTES)
        explicit = plan_replication(
            existing, new, GPU_BYTES, CPU_BYTES, fan_in=1
        )
        assert [
            (t.source.name, t.target.name, t.gpu_bytes, t.cpu_bytes)
            for t in legacy.transfers
        ] == [
            (t.source.name, t.target.name, t.gpu_bytes, t.cpu_bytes)
            for t in explicit.transfers
        ]

    def test_fan_in_cuts_estimated_transfer_time(self, cluster):
        """The point of the sharded axis: splitting one large snapshot
        across 4 source links beats one serial stream."""
        existing = gpus_of(cluster)[:4]
        new = [gpus_of(cluster)[5]]
        serial = plan_replication(existing, new, GPU_BYTES, CPU_BYTES)
        fanned = plan_replication(
            existing, new, GPU_BYTES, CPU_BYTES, fan_in=4
        )
        profile = BandwidthProfile()
        assert fanned.estimated_time(profile) < serial.estimated_time(profile)

    def test_fan_in_rejects_chaining(self, cluster):
        with pytest.raises(ValueError):
            plan_replication(
                gpus_of(cluster)[:2], [gpus_of(cluster)[5]],
                GPU_BYTES, CPU_BYTES, fan_in=2, allow_chaining=True,
            )
