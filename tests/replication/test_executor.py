"""Tests for replication execution (DES timing + live copies) and the
checkpoint baseline."""

import pytest

from repro.replication import (
    LiveReplicator,
    SharedStorage,
    SimulatedReplicationExecutor,
    checkpoint_load_cost,
    checkpoint_write_cost,
    plan_replication,
)
from repro.topology import BandwidthProfile, build_cluster, gpus_of
from repro.training import (
    MomentumSGD,
    RuntimeInfo,
    TrainingState,
    init_mlp,
)

MB = 1024**2
GPU_BYTES = 200 * MB
CPU_BYTES = 4096


def make_state():
    params = init_mlp(16, 8, 4, seed=0)
    opt = MomentumSGD(lr=0.1)
    return TrainingState(
        model=params,
        optimizer=opt.state_dict(),
        loader={"epoch": 0, "position": 128},
        comm_group=["w0", "w1"],
        runtime=RuntimeInfo(epoch=0, iteration=4, learning_rate=0.1,
                            total_batch_size=64),
    )


class TestSimulatedExecutor:
    @pytest.fixture
    def cluster(self):
        return build_cluster(2)

    def test_timeline_matches_plan_estimate(self, cluster):
        """The DES execution and the analytic estimate agree."""
        profile = BandwidthProfile()
        existing = gpus_of(cluster)[:4]
        new = gpus_of(cluster)[4:12]
        plan = plan_replication(existing, new, GPU_BYTES, CPU_BYTES)
        timeline = SimulatedReplicationExecutor(profile).execute(plan)
        assert timeline.makespan == pytest.approx(
            plan.estimated_time(profile), rel=0.01
        )

    def test_all_transfers_executed(self, cluster):
        existing = gpus_of(cluster)[:4]
        new = gpus_of(cluster)[4:10]
        plan = plan_replication(existing, new, GPU_BYTES, CPU_BYTES)
        timeline = SimulatedReplicationExecutor().execute(plan)
        assert len(timeline.records) == len(plan.transfers)

    def test_parallel_transfers_overlap_in_time(self, cluster):
        """Fig. 9's two replications overlap in the executed timeline."""
        existing = [gpus_of(cluster)[i] for i in (0, 1, 4, 8)]
        new = [gpus_of(cluster)[5], gpus_of(cluster)[12]]
        plan = plan_replication(existing, new, GPU_BYTES, CPU_BYTES)
        timeline = SimulatedReplicationExecutor().execute(plan)
        assert timeline.concurrent_pairs() >= 1

    def test_contending_transfers_do_not_overlap(self, cluster):
        """Two transfers from one source GPU must serialize."""
        existing = [gpus_of(cluster)[0]]
        new = [gpus_of(cluster)[1], gpus_of(cluster)[2]]
        plan = plan_replication(existing, new, GPU_BYTES, CPU_BYTES)
        timeline = SimulatedReplicationExecutor().execute(plan)
        assert timeline.concurrent_pairs() == 0

    def test_concurrency_shortens_makespan(self, cluster):
        """Concurrent replication beats one-source-for-all serialization."""
        profile = BandwidthProfile()
        gpus = gpus_of(cluster)
        # Existing workers spread across switches/nodes; each new worker
        # has a distinct same-switch source, so transfers can overlap.
        existing = [gpus[i] for i in (0, 4, 8, 12)]
        new = [gpus[i] for i in (1, 5, 9, 13)]
        concurrent = plan_replication(existing, new, GPU_BYTES, CPU_BYTES)
        serial = plan_replication(existing[:1], new, GPU_BYTES, CPU_BYTES)
        fast = SimulatedReplicationExecutor(profile).execute(concurrent)
        slow = SimulatedReplicationExecutor(profile).execute(serial)
        assert fast.makespan < slow.makespan

    def test_empty_plan_zero_makespan(self, cluster):
        plan = plan_replication(gpus_of(cluster)[:1], [], GPU_BYTES, CPU_BYTES)
        timeline = SimulatedReplicationExecutor().execute(plan)
        assert timeline.makespan == 0.0


class TestLiveReplicator:
    def test_replica_is_equal_and_independent(self):
        state = make_state()
        replica = LiveReplicator().replicate(state)
        assert replica.equals(state)
        replica.model["w1"][0, 0] += 1.0
        assert not replica.equals(state)

    def test_counts_replications(self):
        replicator = LiveReplicator()
        state = make_state()
        replicator.replicate(state)
        replicator.replicate(state)
        assert replicator.replications == 2


class TestCheckpointBaseline:
    def test_write_cost_components_positive(self):
        cost = checkpoint_write_cost(GPU_BYTES, CPU_BYTES)
        assert cost.device_copy > 0
        assert cost.storage_io > 0
        assert cost.total == pytest.approx(
            cost.device_copy + cost.serialize + cost.storage_io
        )

    def test_checkpoint_slower_than_iofree_replication(self):
        """§V-B motivation: checkpoint involves IO + CPU-GPU copies that
        direct replication avoids."""
        cluster = build_cluster(1)
        gpus = gpus_of(cluster)
        plan = plan_replication(gpus[:1], gpus[1:2], GPU_BYTES, CPU_BYTES)
        direct = plan.estimated_time(BandwidthProfile())
        via_storage = (
            checkpoint_write_cost(GPU_BYTES, CPU_BYTES).total
            + checkpoint_load_cost(GPU_BYTES, CPU_BYTES).total
        )
        assert via_storage > 5 * direct

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError):
            checkpoint_write_cost(-1, 0)
        with pytest.raises(ValueError):
            checkpoint_load_cost(0, -1)

    def test_shared_storage_roundtrip(self):
        storage = SharedStorage()
        state = make_state()
        size = storage.save("job/ckpt-1", state)
        assert size > 0
        assert storage.exists("job/ckpt-1")
        restored = storage.load("job/ckpt-1")
        assert restored.equals(state)
        assert storage.writes == 1
        assert storage.reads == 1

    def test_shared_storage_missing_raises(self):
        with pytest.raises(KeyError):
            SharedStorage().load("nope")

    def test_shared_storage_delete_idempotent(self):
        storage = SharedStorage()
        storage.save("x", make_state())
        storage.delete("x")
        storage.delete("x")
        assert not storage.exists("x")


class TestExecutorTracing:
    def test_transfers_traced_with_link_class(self):
        from repro.observability import Tracer

        cluster = build_cluster(2)
        existing = gpus_of(cluster)[:4]
        new = gpus_of(cluster)[4:10]
        plan = plan_replication(existing, new, GPU_BYTES, CPU_BYTES)
        tracer = Tracer(process="replication")
        timeline = SimulatedReplicationExecutor(tracer=tracer).execute(plan)
        spans = tracer.spans("replicate.transfer")
        assert len(spans) == len(timeline.records)
        recorded = {
            (r.transfer.target.name, r.start, r.end)
            for r in timeline.records
        }
        for span in spans:
            assert (span.track, span.start, span.end) in recorded
            assert span.args["link"] in ("P2P", "SHM", "NET")
            assert span.args["retries"] == 0
