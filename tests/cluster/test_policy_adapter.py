"""PolicyAdapter: the one seam between simulator and live scheduler."""

import pytest

from repro.perfmodel import RESNET50
from repro.scheduling import (
    ClusterSimulator,
    ElasticFifoPolicy,
    JobSpec,
    PolicyAdapter,
    generate_trace,
)


def job(job_id, submit=0.0, work=1e6, req=2, min_res=1, max_res=4):
    return JobSpec(
        job_id=job_id, model=RESNET50, submit_time=submit, work=work,
        req_res=req, min_res=min_res, max_res=max_res,
    )


def execution(spec, workers=0):
    return PolicyAdapter.execution(spec, workers=workers)


class FakePolicy:
    """A policy scripted to return whatever the test needs."""

    name = "fake"
    elastic = True

    def __init__(self, result):
        self.result = result

    def allocate(self, now, queue, running, total_gpus):
        return dict(self.result)


class TestValidation:
    def test_unknown_job_rejected(self):
        adapter = PolicyAdapter(FakePolicy({"ghost": 2}))
        with pytest.raises(ValueError, match="unknown job"):
            adapter.target_allocation(0.0, [execution(job("a"))], [], 8)

    def test_negative_allocation_rejected(self):
        adapter = PolicyAdapter(FakePolicy({"a": -1}))
        with pytest.raises(ValueError, match="-1"):
            adapter.target_allocation(0.0, [execution(job("a"))], [], 8)

    def test_capacity_floor(self):
        adapter = PolicyAdapter(ElasticFifoPolicy())
        with pytest.raises(ValueError):
            adapter.target_allocation(0.0, [], [], 0)

    def test_float_counts_are_cast_to_int(self):
        adapter = PolicyAdapter(FakePolicy({"a": 2.0}))
        result = adapter.target_allocation(0.0, [execution(job("a"))], [], 8)
        assert result == {"a": 2}
        assert isinstance(result["a"], int)


class TestClamp:
    def test_clamp_trims_largest_above_floor(self):
        adapter = PolicyAdapter(FakePolicy({"a": 6, "b": 2}))
        queue = [execution(job("a")), execution(job("b"))]
        result = adapter.target_allocation(0.0, queue, [], 6, clamp=True)
        assert sum(result.values()) == 6
        assert result["a"] == 4  # trimmed, b kept its smaller share
        assert result["b"] == 2

    def test_clamp_never_cuts_below_min_res(self):
        adapter = PolicyAdapter(FakePolicy({"a": 3, "b": 3}))
        queue = [
            execution(job("a", min_res=3, req=3)),
            execution(job("b", min_res=3, req=3)),
        ]
        # Minimums alone overcommit: clamp must leave them intact —
        # shrinking below min_res is the eviction path's decision.
        result = adapter.target_allocation(0.0, queue, [], 4, clamp=True)
        assert result == {"a": 3, "b": 3}

    def test_no_clamp_by_default(self):
        adapter = PolicyAdapter(FakePolicy({"a": 10}))
        result = adapter.target_allocation(0.0, [execution(job("a"))], [], 4)
        assert result == {"a": 10}


class TestSimulatorSeam:
    def test_simulator_consults_policy_through_adapter(self):
        simulator = ClusterSimulator(
            generate_trace(num_jobs=10, seed=3), ElasticFifoPolicy(),
            total_gpus=16,
        )
        assert isinstance(simulator.adapter, PolicyAdapter)
        assert simulator.adapter.policy is simulator.policy
        result = simulator.run()
        assert all(e.done for e in result.executions)

    def test_execution_view_carries_live_progress(self):
        spec = job("a")
        view = PolicyAdapter.execution(
            spec, workers=2, work_done=12.0, start_time=1.5,
        )
        assert view.workers == 2
        assert view.work_done == 12.0
        assert view.start_time == 1.5
        assert view.remaining_work == spec.work - 12.0
