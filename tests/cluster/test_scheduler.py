"""ClusterScheduler unit tests against a stub runner.

The scheduler only ever talks to runners through the runner protocol,
so a stub lets these tests script admission, preemption, backfill and
failover without spinning up a single real worker.
"""

import pytest

from repro.cluster import (
    CLUSTER_RECORD_KINDS,
    ClusterJournalState,
    ClusterScheduler,
    JobRequest,
)
from repro.coordination.messages import MessageType
from repro.net.journal import Journal, JournalError
from repro.net.transport import memory_link


class StubRunner:
    """Scriptable runner: completes when told, records every call."""

    def __init__(self, request, scheduler):
        self.request = request
        self.workers = 0
        self.iteration = 0
        self.done = False
        self.stopped = False
        self.closed = False
        self.resizes = []
        self.reject_next_resize = False

    def start(self, workers):
        self.workers = workers

    def resize(self, workers, at_iteration=None, origin="scheduler"):
        if self.reject_next_resize:
            self.reject_next_resize = False
            return False
        self.resizes.append((self.workers, workers, at_iteration))
        self.workers = workers
        return True

    def progress(self):
        return self.iteration

    def complete(self):
        return self.done

    def digests(self):
        return {f"{self.request.job_id}-w0": f"digest-{self.request.job_id}"}

    def stop(self):
        self.stopped = True

    def close(self):
        self.closed = True


def make_scheduler(policy="e-priority", gpus=4, journal=None):
    runners = {}

    def factory(request, scheduler):
        runner = StubRunner(request, scheduler)
        runners[request.job_id] = runner
        return runner

    sched = ClusterScheduler(
        policy, gpus, runner_factory=factory, journal=journal,
    )
    return sched, runners


def req(job_id, priority=0, min_res=1, req_res=1, max_res=2, iterations=24):
    return JobRequest(
        job_id=job_id, priority=priority, min_res=min_res,
        req_res=req_res, max_res=max_res, iterations=iterations,
    )


class TestSubmitAndAdmit:
    def test_burst_admission_respects_capacity_floor(self):
        sched, runners = make_scheduler(gpus=2)
        for name in ("a", "b", "c"):
            assert sched.submit(req(name))["accepted"]
        summary = sched.step()
        # §VI-C admission: a+b fill the floor (min 1 each), c waits.
        assert sorted(summary["admitted"]) == ["a", "b"]
        assert sched.queue == ["c"]
        assert sched.running["a"].workers + sched.running["b"].workers == 2

    def test_priority_order_wins_admission(self):
        sched, runners = make_scheduler(gpus=1)
        sched.submit(req("low", priority=0))
        sched.submit(req("high", priority=5))
        summary = sched.step()
        assert summary["admitted"] == ["high"]
        assert sched.queue == ["low"]

    def test_duplicate_submission_rejected(self):
        sched, _ = make_scheduler()
        assert sched.submit(req("a"))["accepted"]
        reply = sched.submit(req("a"))
        assert not reply["accepted"]
        assert reply["reason"] == "duplicate"

    def test_completion_frees_capacity_for_backfill(self):
        sched, runners = make_scheduler(gpus=1, policy="e-fifo")
        sched.submit(req("a", max_res=1))
        sched.submit(req("b", max_res=1))
        sched.step()
        assert "a" in sched.running and sched.queue == ["b"]
        runners["a"].done = True
        summary = sched.step()
        assert summary["completed"] == ["a"]
        assert summary["admitted"] == ["b"]
        assert sched.completed["a"]["digest"] == "digest-a"
        assert runners["a"].closed

    def test_burst_of_hundreds_drains_through_small_cluster(self):
        """Hundreds queued, a handful running at any moment."""
        sched, runners = make_scheduler(gpus=4, policy="e-fifo")
        for i in range(200):
            sched.submit(req(f"j{i:03d}", max_res=1))
        max_concurrent = 0
        for _round in range(300):
            for runner in runners.values():
                if not runner.closed:
                    runner.done = True
            sched.step()
            max_concurrent = max(max_concurrent, len(sched.running))
            if len(sched.completed) == 200:
                break
        assert len(sched.completed) == 200
        assert max_concurrent <= 4


class TestResizeAndChurn:
    def test_capacity_growth_grows_running_jobs(self):
        sched, runners = make_scheduler(gpus=2)
        sched.submit(req("a"))
        sched.submit(req("b"))
        sched.step()
        sched.set_capacity(4, reason="spot")
        summary = sched.step(pin_at=8)
        assert summary["resized"] == {"a": (1, 2), "b": (1, 2)}
        assert runners["a"].resizes == [(1, 2, 8)]

    def test_spot_shrink_evicts_lowest_priority_newest_first(self):
        sched, runners = make_scheduler(gpus=3)
        sched.submit(req("old-low", priority=0))
        sched.step()
        sched.submit(req("high", priority=2))
        sched.submit(req("new-low", priority=0))
        sched.step()
        assert len(sched.running) == 3
        sched.set_capacity(2, reason="spot-reclaim")
        summary = sched.step()
        # Lowest tier first, newest admission first within the tier.
        assert summary["preempted"] == ["new-low"]
        assert runners["new-low"].stopped
        assert "new-low" in sched.queue
        assert sched.jobs["new-low"].preemptions == 1
        sched.set_capacity(1, reason="spot-reclaim")
        summary = sched.step()
        assert summary["preempted"] == ["old-low"]
        assert "high" in sched.running

    def test_rejected_resize_is_retried_next_pass(self):
        sched, runners = make_scheduler(gpus=1)
        sched.submit(req("a"))
        sched.step()
        runners["a"].reject_next_resize = True
        sched.set_capacity(2)
        summary = sched.step()
        assert summary["resized"] == {}
        assert sched.running["a"].workers == 1
        summary = sched.step()
        assert summary["resized"] == {"a": (1, 2)}

    def test_release_returns_gpus(self):
        sched, runners = make_scheduler(gpus=1)
        sched.submit(req("a"))
        sched.submit(req("b"))
        sched.step()
        assert sched.release("a")["released"]
        assert runners["a"].stopped
        summary = sched.step()
        assert summary["admitted"] == ["b"]
        assert not sched.release("nope")["released"]


class TestWireProtocol:
    def test_submit_offer_status_release_round_trip(self):
        sched, runners = make_scheduler(gpus=2)
        client = memory_link(sched.core, "client")
        try:
            reply = client.request(
                MessageType.SUBMIT, {"job": req("a").to_payload()}
            )
            assert reply["accepted"]
            assert client.request(
                MessageType.OFFER, {"job_id": "a"}
            )["state"] == "queued"
            sched.step()
            runners["a"].iteration = 5
            offer = client.request(MessageType.OFFER, {"job_id": "a"})
            assert offer["state"] == "running"
            assert offer["iteration"] == 5
            tables = client.request(MessageType.JOB_STATUS)
            assert tables["capacity"] == 2
            assert tables["running"][0]["job_id"] == "a"
            assert client.request(
                MessageType.RELEASE, {"job_id": "a"}
            )["released"]
            assert client.request(
                MessageType.OFFER, {"job_id": "a"}
            )["state"] == "unknown"
        finally:
            client.close()
            sched.close()

    def test_fenced_scheduler_tells_clients_to_retry(self):
        sched, _ = make_scheduler()
        sched.abandon()
        reply = sched.handle(type("M", (), {
            "msg_type": MessageType.STATUS, "payload": {},
        })())
        assert reply == {"__retry__": "scheduler_superseded"}


class TestJournalAndFailover:
    def test_journal_rejects_am_record_kinds(self):
        journal = Journal(kinds=CLUSTER_RECORD_KINDS)
        with pytest.raises(JournalError):
            journal.append("plan", generation=1)

    def test_decisions_are_journaled(self):
        sched, runners = make_scheduler(gpus=2)
        sched.submit(req("a"))
        sched.submit(req("b", priority=1))
        sched.step()
        sched.set_capacity(1)
        sched.step()
        kinds = [r["kind"] for r in sched.journal.records()]
        assert kinds[:2] == ["open", "epoch"]
        assert kinds.count("submit") == 2
        assert kinds.count("admit") == 2
        assert "capacity" in kinds and "preempt" in kinds

    def test_replay_reconstructs_queue_and_inventory(self):
        sched, runners = make_scheduler(gpus=2)
        sched.submit(req("done", max_res=1))
        sched.step()
        runners["done"].done = True
        sched.step()
        sched.submit(req("running", min_res=2, req_res=2, max_res=2))
        sched.submit(req("waiting", max_res=1))
        sched.submit(req("gone", max_res=1))
        sched.step()
        sched.release("gone")
        sched.set_capacity(4)
        state = ClusterJournalState.replay(sched.journal.records())
        assert state.policy == "e-priority"
        assert state.capacity == 4
        assert state.completed.keys() == {"done"}
        assert state.running == {"running": 2}
        assert state.queue == ["waiting"]
        assert "gone" in state.released

    def test_failover_requeues_running_jobs_and_bumps_epoch(self, tmp_path):
        journal = Journal(
            str(tmp_path / "cluster.journal"), kinds=CLUSTER_RECORD_KINDS,
        )
        sched, runners = make_scheduler(gpus=2, journal=journal)
        sched.submit(req("a", priority=1))
        sched.submit(req("b"))
        sched.submit(req("c", max_res=1))
        sched.step()
        assert sorted(sched.running) == ["a", "b"]
        old_epoch = sched.epoch
        sched.abandon()
        # Every runner died with the incarnation.
        assert all(r.stopped for r in runners.values())

        successor, new_runners = {}, {}

        def factory(request, scheduler):
            runner = StubRunner(request, scheduler)
            new_runners[request.job_id] = runner
            return runner

        replayed = ClusterScheduler.from_journal(
            Journal(str(tmp_path / "cluster.journal"),
                    kinds=CLUSTER_RECORD_KINDS),
            runner_factory=factory,
        )
        assert replayed.epoch == old_epoch + 1
        assert replayed.capacity == 2
        # Previously running jobs are requeued in submit order.
        assert replayed.queue == ["a", "b", "c"]
        summary = replayed.step()
        assert sorted(summary["admitted"]) == ["a", "b"]
        assert sorted(new_runners) == ["a", "b"]

    def test_completed_digests_survive_failover(self):
        sched, runners = make_scheduler(gpus=1)
        sched.submit(req("a", max_res=1))
        sched.step()
        runners["a"].done = True
        sched.step()
        sched.abandon()
        replayed = ClusterScheduler.from_journal(sched.journal)
        assert replayed.completed["a"]["digest"] == "digest-a"
        assert replayed.queue == []


class TestValidation:
    def test_bad_requests_rejected(self):
        with pytest.raises(ValueError):
            JobRequest(job_id="")
        with pytest.raises(ValueError):
            JobRequest(job_id="x", min_res=3, req_res=2, max_res=2)
        with pytest.raises(ValueError):
            JobRequest(job_id="x", iterations=0)

    def test_capacity_floor(self):
        with pytest.raises(ValueError):
            ClusterScheduler("e-fifo", 0)
        sched, _ = make_scheduler()
        with pytest.raises(ValueError):
            sched.set_capacity(0)

    def test_admission_without_factory_raises(self):
        sched = ClusterScheduler("e-fifo", 2)
        sched.submit(req("a"))
        with pytest.raises(RuntimeError):
            sched.step()
