"""The deterministic churn scenario — the cluster plane's acceptance drill.

One scripted run per transport drives admit → grow → spot-shrink →
preempt → complete → re-admit against live in-process jobs, and every
assertion reads the cached runs: the full life cycle happened, the SLO
gates hold, and — the strongest check — each job's final parameter
digest is bit-identical across the in-memory transport and loopback
TCP, because every resize commit is pinned to the same iteration of
the job's logical clock.
"""

import pytest

from repro.cluster import run_churn_scenario
from repro.cluster.scenario import GROW_PIN, SHRINK_PIN
from repro.observability import validate_events

TRANSPORTS = ("memory", "tcp")

_reports = {}


def report_for(transport):
    if transport not in _reports:
        _reports[transport] = run_churn_scenario(transport)
    return _reports[transport]


@pytest.mark.parametrize("transport", TRANSPORTS)
class TestChurnScenario:
    def test_full_life_cycle(self, transport):
        report = report_for(transport)
        assert report.completion_order == ["jobA", "jobB", "jobC"]
        assert report.preemptions == 1
        # 3 grows + 2 shrinks (the victim is stopped, not shrunk).
        assert report.resizes == 5
        assert set(report.digests) == {"jobA", "jobB", "jobC"}

    def test_slo_gates_hold(self, transport):
        report = report_for(transport)
        report.assert_slo(
            makespan_ceiling=60.0, queueing_delay_ceiling=10.0,
            goodput_floor=0.02,
        )

    def test_trace_is_valid_and_carries_decisions(self, transport):
        report = report_for(transport)
        assert validate_events(report.events) == []
        names = {e.get("name") for e in report.events}
        assert {"cluster.submit", "cluster.admit", "cluster.resize",
                "cluster.preempt", "cluster.capacity",
                "cluster.complete", "cluster.reschedule"} <= names
        assert "worker.iteration" in names

    def test_metrics_account_every_decision(self, transport):
        metrics = report_for(transport).metrics
        assert metrics["cluster.submits"] == 3
        assert metrics["cluster.admits"] == 4  # 3 + jobC's re-admission
        assert metrics["cluster.preempts"] == 1
        assert metrics["cluster.resizes"] == 5
        assert metrics["cluster.completions"] == 3
        assert metrics["cluster.queueing_delay_seconds"]["count"] == 4


def test_digests_bit_identical_across_transports():
    memory = report_for("memory")
    tcp = report_for("tcp")
    assert memory.digests == tcp.digests
    assert memory.preemptions == tcp.preemptions
    assert memory.completion_order == tcp.completion_order


def test_pins_are_coordination_boundaries():
    assert GROW_PIN % 4 == 0 and SHRINK_PIN % 4 == 0
    assert GROW_PIN < SHRINK_PIN
