"""Tests for the terminal rendering helpers."""

import pytest

from repro.reporting import bar_chart, render_table, series_chart, sparkline


class TestRenderTable:
    def test_aligns_columns(self):
        lines = render_table(("a", "bb"), [("x", 1), ("yyyy", 22)])
        assert lines[0].startswith("a")
        assert "22" in lines[-1]
        # All data lines at least as wide as the widest cell arrangement.
        assert lines[2].index("1") == lines[3].index("2")

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(("a", "b"), [("only-one",)])

    def test_empty_rows_ok(self):
        lines = render_table(("a",), [])
        assert len(lines) == 2  # header + rule


class TestBarChart:
    def test_scales_to_peak(self):
        lines = bar_chart([("x", 10), ("y", 5)], width=10)
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_zero_values_no_bar(self):
        lines = bar_chart([("x", 0), ("y", 2)], width=4)
        assert "#" not in lines[0]

    def test_small_nonzero_gets_a_tick(self):
        lines = bar_chart([("tiny", 1), ("big", 1000)], width=10)
        assert lines[0].count("#") == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bar_chart([("x", -1)])

    def test_empty(self):
        assert bar_chart([]) == []

    def test_unit_suffix(self):
        lines = bar_chart([("x", 3)], width=5, unit="s")
        assert lines[0].endswith("3s")


class TestSparkline:
    def test_length_matches_series(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_flat_series_is_mid_glyph(self):
        assert set(sparkline([5, 5, 5])) == {"="}

    def test_monotone_series_uses_rising_glyphs(self):
        glyphs = " .:-=+*#"
        line = sparkline(list(range(8)))
        assert [glyphs.index(c) for c in line] == sorted(
            glyphs.index(c) for c in line
        )

    def test_empty(self):
        assert sparkline([]) == ""


class TestSeriesChart:
    def test_shape(self):
        lines = series_chart([(0, 0), (1, 1), (2, 4)], height=4, width=20)
        assert len(lines) == 6  # 4 rows + axis + labels
        assert all("|" in line for line in lines[:4])

    def test_extremes_plotted(self):
        lines = series_chart([(0, 0), (10, 100)], height=5, width=10)
        assert "*" in lines[0]  # max in the top row
        assert "*" in lines[4]  # min in the bottom row

    def test_labels_show_range(self):
        lines = series_chart([(0, 2), (5, 8)], height=3, width=12)
        assert "8" in lines[0]
        assert "2" in lines[2]

    def test_validation(self):
        with pytest.raises(ValueError):
            series_chart([(0, 0)], height=1)
        assert series_chart([]) == []
