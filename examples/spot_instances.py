"""Exploiting transient capacity (spot instances) with elasticity.

The paper (§VI-C): "In cloud, elasticity can be leveraged to utilize
transient resources such as spot instances."  This demo runs the same
workload on a cluster whose capacity swings between 96 and 48 GPUs every
six hours.  The static scheduler suffers preemption kills at every dip;
the elastic scheduler shrinks jobs in place and re-expands when capacity
returns.

Run:  python examples/spot_instances.py
"""

from repro.reporting import render_table, sparkline
from repro.scheduling import (
    ClusterSimulator,
    ElanCosts,
    ElasticFifoPolicy,
    FifoPolicy,
    generate_trace,
)


def main():
    trace = generate_trace(num_jobs=60, seed=77)
    churn = [
        (hour * 3600.0, 96 if (hour // 6) % 2 == 0 else 48)
        for hour in range(0, 72, 6)
    ]
    print(f"workload: {len(trace)} jobs; capacity swings 96 <-> 48 GPUs "
          f"every 6 h")

    results = {}
    for policy in (FifoPolicy(), ElasticFifoPolicy()):
        results[policy.name] = ClusterSimulator(
            trace, policy, total_gpus=96,
            capacity_profile=churn, costs=ElanCosts(),
        ).run()

    rows = []
    for name, result in results.items():
        rows.append((
            name,
            f"{result.average_jct:.0f}",
            f"{result.average_jpt:.0f}",
            result.evictions,
            result.adjustments,
        ))
    print()
    for line in render_table(
        ("policy", "avg JCT (s)", "avg JPT (s)", "evictions", "adjusts"),
        rows,
    ):
        print(line)

    print("\nGPU occupancy through the churn (1 h buckets):")
    for name, result in results.items():
        series = [b for _t, b in result.utilization_series(3600.0)][:72]
        print(f"  {name:7s} {sparkline(series)}")

    static, elastic = results["fifo"], results["e-fifo"]
    print(
        f"\nelasticity under churn: JCT "
        f"-{1 - elastic.average_jct / static.average_jct:.0%}, "
        f"evictions {static.evictions} -> {elastic.evictions}"
    )


if __name__ == "__main__":
    main()
