"""Straggler mitigation with elasticity (paper §VII's first use case).

Synchronous data-parallel training runs at its slowest worker's pace.
This demo injects a straggler into a live 4-worker job, watches the
iteration rate collapse, detects the slow worker by its relative lag, and
uses Elan's sub-second scale-in to kick it out — training speed recovers
immediately and no state is lost.

Run:  python examples/straggler_mitigation.py
"""

import time

from repro.coordination import ElasticRuntime
from repro.training import make_classification


def iteration_rate(runtime, span=0.5):
    """Measured job progress in iterations/second over ``span`` seconds."""
    start = runtime.snapshot()["iteration"]
    time.sleep(span)
    return (runtime.snapshot()["iteration"] - start) / span


def main():
    dataset = make_classification(train_size=2048, test_size=512, seed=13)
    runtime = ElasticRuntime(
        dataset, initial_workers=4, total_batch_size=64, base_lr=0.02, seed=13
    )
    runtime.start()
    healthy = iteration_rate(runtime)
    print(f"healthy job: {healthy:.0f} iterations/s on {runtime.am.group}")

    print("\ninjecting a straggler: w2 now takes an extra 20 ms per iteration")
    runtime.iteration_delays["w2"] = 0.02
    degraded = iteration_rate(runtime)
    print(f"degraded job: {degraded:.0f} iterations/s "
          f"(-{1 - degraded / healthy:.0%}) — lockstep pays the slowest pace")

    # Detection from real timings: the runtime's telemetry records each
    # worker's compute time (iteration start to allreduce entry), which
    # isolates the straggler that the lockstep barrier otherwise hides.
    stragglers = runtime.telemetry.detect_stragglers(factor=2.0)
    print(f"\ntelemetry per-worker compute (ms): "
          + ", ".join(f"{w}={t * 1e3:.1f}"
                      for w, t in sorted(runtime.telemetry.summary().items())))
    assert stragglers, "telemetry failed to flag the slow worker"
    straggler = stragglers[0]
    print(f"\nmitigating: scale-in of {straggler} "
          f"(sub-second, shutdown-free for the survivors)")
    runtime.scale_in(worker_ids=[straggler])
    runtime.wait_for_adjustments(1)
    recovered = iteration_rate(runtime)
    print(f"recovered job: {recovered:.0f} iterations/s on {runtime.am.group}")

    runtime.stop()
    print(f"\nfinal accuracy (training never lost a sample): "
          f"{runtime.evaluate():.3f}")


if __name__ == "__main__":
    main()
