"""Multi-tenant cluster scheduling: a burst of elastic jobs over TCP.

A live :class:`~repro.cluster.ClusterScheduler` owns a small GPU
inventory and serves the cluster protocol on loopback TCP.  A client
link bursts a queue of prioritised jobs at it (SUBMIT), the scheduler
admits what fits (§VI-C admission: running minimums plus the
candidate's minimum must fit), grows running jobs into the leftovers by
marginal gain, and backfills as completions free GPUs.  Mid-run the
spot capacity dips, forcing a shrink-in-place / eviction wave, then
returns.  Every decision is journaled and traced.

Run:  python examples/multitenant_cluster.py

Environment knobs (all optional):

    ELAN_CLUSTER_JOBS   number of jobs in the burst        (default 6)
    ELAN_CLUSTER_GPUS   GPU inventory                      (default 4)
    ELAN_ITERS          iterations per job                 (default 12)
    ELAN_SLEEP          per-iteration sleep in seconds     (default 0.02)
    ELAN_POLICY         scheduling policy                  (default e-priority)
    ELAN_TRACE          export a Chrome trace here
"""

import os
import time

from repro.cluster import ClusterScheduler, ElasticJobRunner, JobRequest
from repro.coordination.messages import MessageType
from repro.net import tcp_link
from repro.observability import MetricRegistry, Tracer


def main():
    jobs = int(os.environ.get("ELAN_CLUSTER_JOBS", "6"))
    gpus = int(os.environ.get("ELAN_CLUSTER_GPUS", "4"))
    iterations = int(os.environ.get("ELAN_ITERS", "12"))
    sleep = float(os.environ.get("ELAN_SLEEP", "0.02"))
    policy = os.environ.get("ELAN_POLICY", "e-priority")

    tracer = Tracer(process="multitenant-cluster")
    metrics = MetricRegistry()

    def factory(request, scheduler):
        return ElasticJobRunner(
            request, transport="tcp", tracer=tracer, metrics=metrics,
        )

    scheduler = ClusterScheduler(
        policy, gpus, runner_factory=factory, tracer=tracer,
        metrics=metrics,
    )
    server = scheduler.serve_tcp()
    print(f"scheduler ({policy}, {gpus} GPUs) on "
          f"{server.host}:{server.port}")

    client, _transport = tcp_link(
        server.host, server.port, "burst-client", ack_timeout=2.0
    )
    try:
        print(f"bursting {jobs} jobs (priority cycles 0..2) ...")
        for index in range(jobs):
            request = JobRequest(
                job_id=f"job{index:02d}", iterations=iterations,
                priority=index % 3, seed=7 + index,
                iteration_sleep=sleep,
            )
            reply = client.request(
                MessageType.SUBMIT, {"job": request.to_payload()}
            )
            assert reply["accepted"], reply

        dipped = restored = False
        max_concurrent = 0
        deadline = time.monotonic() + 300.0
        while len(scheduler.completed) < jobs:
            if time.monotonic() > deadline:
                raise SystemExit("burst did not drain in time")
            scheduler.step()
            max_concurrent = max(max_concurrent, len(scheduler.running))
            done = len(scheduler.completed)
            if not dipped and len(scheduler.running) >= max(1, gpus // 2):
                print(f"  {len(scheduler.running)} running; spot capacity "
                      f"dips {gpus} -> {max(1, gpus // 2)}")
                scheduler.set_capacity(max(1, gpus // 2),
                                       reason="spot-reclaim")
                dipped = True
            elif dipped and not restored and done >= jobs // 2:
                print(f"  {done}/{jobs} done; spot capacity returns")
                scheduler.set_capacity(gpus, reason="spot-return")
                restored = True
            time.sleep(0.05)

        tables = client.request(MessageType.JOB_STATUS)
    finally:
        client.close()
        scheduler.close()

    print(f"\nall {jobs} jobs completed "
          f"(max concurrent {max_concurrent}, "
          f"preemptions {tables['preemptions']})")
    for row in sorted(tables["completed"], key=lambda r: r["job_id"]):
        print(f"  {row['job_id']}: jct {row['jct']:6.2f}s  "
              f"preemptions {row['preemptions']}  "
              f"digest {row['digest'][:16]}")

    assert len(tables["completed"]) == jobs
    assert max_concurrent <= gpus
    assert all(row["digest"] for row in tables["completed"])
    if dipped:
        decisions = metrics.snapshot()
        churned = (decisions.get("cluster.preempts", 0)
                   + decisions.get("cluster.resizes", 0))
        assert churned > 0, "the capacity dip forced no decision"

    trace_path = os.environ.get("ELAN_TRACE")
    if trace_path:
        tracer.export(trace_path)
        print(f"trace: {len(tracer.to_events())} events -> {trace_path}")


if __name__ == "__main__":
    main()
