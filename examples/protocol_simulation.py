"""The Elan control plane on simulated time (paper Figs. 10 vs 12).

Runs the *real* application-master class inside the discrete-event
simulator: a ResNet-50 job iterates at its calibrated speed while 8 new
workers start and initialize with jitter; the adjustment commits at the
first coordination boundary after the last report.  Prints the resulting
timeline, the throughput step, and the cross-validation against the
closed-form adjustment model.

Run:  python examples/protocol_simulation.py
"""

from repro.baselines import ElanAdjustmentModel, ShutdownRestartModel
from repro.coordination import SimulatedElasticJob
from repro.perfmodel import RESNET50
from repro.reporting import render_table, series_chart


def main():
    job = SimulatedElasticJob(RESNET50, workers=8, total_batch_size=256, seed=1)
    job.at(10.0, lambda: job.request_scale_out(8))
    job.run(until=180.0)
    (adjustment,) = job.adjustments

    print("=== simulated scale-out 8 -> 16 (ResNet-50, batch 256) ===")
    for line in render_table(
        ("event", "t (s)"),
        [
            ("scheduler requests +8 workers", f"{adjustment.request_time:.2f}"),
            ("last new worker reports", f"{adjustment.commit_time:.2f}"),
            ("commit: replicate + adjust", f"{adjustment.commit_time:.2f}"),
            ("training resumes on 16 workers", f"{adjustment.resume_time:.2f}"),
        ],
    ):
        print(line)
    print(
        f"\niterations completed while the new workers started: "
        f"{adjustment.iterations_during_startup} "
        f"(start+init hidden off the critical path)"
    )
    print(f"training pause: {adjustment.pause:.3f} s")

    closed = ElanAdjustmentModel(seed=1).adjustment_time(
        "scale_out", RESNET50, 8, 16
    ).total
    sr = ShutdownRestartModel(seed=1).adjustment_time(
        "scale_out", RESNET50, 8, 16
    ).total
    print(f"closed-form model:  {closed:.3f} s (cross-validation)")
    print(f"S&R would pause:    {sr:.2f} s")

    print("\nthroughput over time (samples/s, 10 s buckets):")
    buckets = []
    for start in range(0, 180, 10):
        buckets.append(
            (start, job.effective_throughput(start, start + 10))
        )
    for line in series_chart(buckets, height=7, width=56):
        print(line)


if __name__ == "__main__":
    main()
