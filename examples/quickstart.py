"""Quickstart: elastic training with the Table III API.

Starts a 2-worker data-parallel job on the live threaded runtime, then —
while training keeps running — scales out to 4 workers, scales back in,
and finally migrates the whole job onto fresh workers.  Every adjustment
follows the paper's 5-step procedure: request, report, coordinate,
replicate, adjust.

Run:  python examples/quickstart.py

Set ``ELAN_TRACE=/path/to/trace.json`` to export a Chrome-format trace
of the run (open it in https://ui.perfetto.dev); see
docs/OBSERVABILITY.md.
"""

import os

from repro.coordination import params_consistent
from repro.core import ElasticJob, WeakScalingPolicy
from repro.training import make_classification


def main():
    dataset = make_classification(train_size=2048, test_size=512, seed=7)
    job = ElasticJob(
        dataset,
        workers=2,
        total_batch_size=64,
        base_lr=0.02,
        scaling_policy=WeakScalingPolicy(ramp_iterations=20),
        seed=7,
    )
    print("starting a 2-worker elastic job ...")
    with job:
        job.wait_until_iteration(30)
        print(f"  status: {job.status()}")

        print("scaling out to 4 workers (training continues meanwhile) ...")
        new_ids = job.scale_out(2)
        job.wait_for_adjustments(1)
        print(f"  new workers {new_ids} joined: {job.status()}")

        job.wait_until_iteration(job.status()["iteration"] + 30)
        print("scaling in by 1 worker ...")
        removed = job.scale_in(1)
        job.wait_for_adjustments(2)
        print(f"  removed {removed}: {job.status()}")

        print("migrating the job onto fresh workers ...")
        migrated = job.migrate()
        job.wait_for_adjustments(3)
        print(f"  now running on {migrated}: {job.status()}")
        job.wait_until_iteration(job.status()["iteration"] + 30)

    contexts = job.runtime.final_contexts()
    print(f"replicas consistent: {params_consistent(contexts)}")
    print(f"test accuracy after elastic training: {job.evaluate():.3f}")
    print("adjustments committed:")
    for plan in job.history:
        print(
            f"  {plan.kind.value:9s} at iteration {plan.commit_iteration:4d} "
            f"-> group {plan.group}, batch {plan.total_batch_size}, "
            f"strategy {plan.strategy}"
        )

    trace_path = os.environ.get("ELAN_TRACE")
    if trace_path:
        tracer = job.runtime.tracer
        tracer.export(trace_path)
        print(f"trace: {len(tracer.to_events())} events -> {trace_path}")


if __name__ == "__main__":
    main()
