"""Multi-process elastic training over loopback TCP.

Spawns a 2-worker data-parallel job where every worker is a *separate OS
process* (``python -m repro.cli join``) talking to the in-process
application master over real sockets, then scales out to 4 workers
mid-run.  Worker w0 suffers an injected connection reset on its AM link
*and* on its ring peer links, so the run demonstrates the §V-D recipe
end-to-end on both planes: lost messages are retransmitted after the
reconnect, receivers deduplicate, and the final sha256 parameter
digests prove no replica lost an update.

Steady-state gradients ride the decentralized ring allreduce
(reduce-scatter + all-gather over direct worker↔worker TCP links); the
AM only serves the pre-activation, adjustment-boundary and final-
barrier iterations, which the sync-execution assertion at the bottom
checks.  Each worker exports its own Chrome trace, validated to contain
``net.allreduce.reduce_scatter`` / ``net.allreduce.all_gather`` spans.

Run:  python examples/multiprocess_elastic.py

The scale-out snapshot travels the chunked binary data plane
(``STATE_CHUNK``/``STATE_DONE`` upload, round-gated ``STATE_FETCH``
fan-out); environment knobs size the synthetic model so CI can push a
multi-megabyte snapshot through it:

* ``ELAN_HIDDEN`` / ``ELAN_INPUT`` — model dimensions (default 16/16;
  1024/512 makes an ~8 MB snapshot),
* ``ELAN_ITERS`` — iterations (default 40),
* ``ELAN_SLEEP`` — per-iteration pacing in seconds (default 0.05),
* ``ELAN_CHUNK_KB`` — replication chunk size (default 256),
* ``ELAN_WORKER_TRACE_DIR`` — where per-worker traces land (default: a
  temporary directory).

Set ``ELAN_TRACE=/path/to/trace.json`` to export the AM-side trace
(net.send / net.recv / net.reconnect / net.state_upload spans
included); see docs/OBSERVABILITY.md and docs/PROTOCOL.md.
"""

import os
import sys
import tempfile

from repro.net import JobSpec, MultiprocessElasticJob
from repro.observability import Tracer, load_trace_events, validate_events


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


def main() -> int:
    tracer = Tracer(process="elan-net")
    spec = JobSpec(
        iterations=_env_int("ELAN_ITERS", 40),
        coordination_interval=4,
        iteration_sleep=float(os.environ.get("ELAN_SLEEP", "0.05")),
        input_dim=_env_int("ELAN_INPUT", 16),
        hidden_dim=_env_int("ELAN_HIDDEN", 16),
        chunk_bytes=_env_int("ELAN_CHUNK_KB", 256) * 1024,
    )
    trace_dir = os.environ.get(
        "ELAN_WORKER_TRACE_DIR"
    ) or tempfile.mkdtemp(prefix="elan-worker-traces-")
    os.makedirs(trace_dir, exist_ok=True)
    job = MultiprocessElasticJob(
        spec, ["w0", "w1"], tracer=tracer, worker_trace_dir=trace_dir
    )
    print(f"AM listening on {job.host}:{job.port}")
    # w0's 6th AM send dies with its connection, and so does its 5th
    # ring peer send: both transports must reconnect and retransmit
    # without any receiver executing anything twice.
    job.start(faults={"w0": {"reset_at": (6,), "peer_reset_at": (5,)}})
    try:
        job.wait_until_iteration(4, timeout=30)
        print(f"  running: {job.status()}")

        print("scaling out to 4 worker processes (training continues) ...")
        assert job.scale_out(["w2", "w3"])
        status = job.wait_for_adjustments(1, timeout=30)
        print(f"  committed in {status['commit_latencies'][0] * 1e3:.0f} ms: "
              f"group {status['group']}")

        final = job.wait_complete(timeout=90)
    finally:
        job.shutdown()

    digests = set(final["digests"].values())
    workers = sorted(final["digests"])
    print(f"final digests from {workers}: "
          f"{'consistent' if len(digests) == 1 else 'DIVERGED'}")
    assert len(final["digests"]) == 4, final["digests"]
    assert len(digests) == 1, final["digests"]
    assert final["adjustments_committed"] == 1
    # 4 workers + the driver's control link is 5 connections; w0's reset
    # forces at least one extra accept.
    print(f"connections accepted: {job.server.connections_accepted} "
          f"(>= 6 proves the reset + reconnect happened)")
    assert job.server.connections_accepted >= 6

    # The snapshot went through the chunked binary data plane: the
    # uploader streamed it once, both joiners pulled every chunk.
    snap = job.master.metrics.snapshot()
    chunks = snap.get("net.chunks.received", 0)
    print(f"data plane: {chunks} chunks "
          f"({snap.get('net.chunks.bytes_received', 0)} bytes) uploaded, "
          f"{snap.get('net.chunks.served', 0)} chunks served to joiners, "
          f"{job.server.bytes_sent} frame bytes written by the AM")
    assert snap.get("net.transfers.completed", 0) == 1
    assert chunks >= 1
    assert snap.get("net.chunks.served", 0) == 2 * chunks

    # The ring took the AM out of the gradient hot path: each original
    # worker only rendezvoused at the AM for the pre-activation,
    # adjustment-boundary, fallback and final-barrier iterations.
    executions = job.master.core.executions
    syncs = {w: executions.get((w, "sync"), 0) for w in workers}
    fallbacks = snap.get("net.sync.ring_fallbacks", 0)
    print(f"AM sync executions per worker: {syncs} over "
          f"{spec.iterations} iterations ({fallbacks} ring fallbacks)")
    for worker in ("w0", "w1"):
        assert 0 < syncs[worker] < spec.iterations // 2, syncs

    # Every worker's own trace shows both ring phases.
    for worker in workers:
        path = job.worker_trace_path(worker)
        events = load_trace_events(path)
        assert not validate_events(events)
        names = {event.get("name") for event in events}
        assert "net.allreduce.reduce_scatter" in names, (worker, path)
        assert "net.allreduce.all_gather" in names, (worker, path)
    print(f"worker traces in {trace_dir}: all contain "
          f"net.allreduce.reduce_scatter / all_gather spans")

    events = tracer.to_events()
    problems = validate_events(events)
    print(f"trace: {len(events)} events, "
          f"{'valid' if not problems else problems}")
    assert not problems

    trace_path = os.environ.get("ELAN_TRACE")
    if trace_path:
        tracer.export(trace_path)
        print(f"trace exported -> {trace_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
