"""Multi-process elastic training over loopback TCP.

Spawns a 2-worker data-parallel job where every worker is a *separate OS
process* (``python -m repro.cli join``) talking to the in-process
application master over real sockets, then scales out to 4 workers
mid-run.  Worker w0 suffers an injected connection reset on its AM link
*and* on its ring peer links, so the run demonstrates the §V-D recipe
end-to-end on both planes: lost messages are retransmitted after the
reconnect, receivers deduplicate, and the final sha256 parameter
digests prove no replica lost an update.

Steady-state gradients ride the decentralized ring allreduce
(reduce-scatter + all-gather over direct worker↔worker TCP links); the
AM only serves the pre-activation, adjustment-boundary and final-
barrier iterations, which the sync-execution assertion at the bottom
checks.  Each worker exports its own Chrome trace, validated to contain
``net.allreduce.reduce_scatter`` / ``net.allreduce.all_gather`` spans.

Run:  python examples/multiprocess_elastic.py

The scale-out snapshot travels the chunked binary data plane
(``STATE_CHUNK``/``STATE_DONE`` upload, round-gated ``STATE_FETCH``
fan-out); environment knobs size the synthetic model so CI can push a
multi-megabyte snapshot through it:

* ``ELAN_HIDDEN`` / ``ELAN_INPUT`` — model dimensions (default 16/16;
  1024/512 makes an ~8 MB snapshot),
* ``ELAN_ITERS`` — iterations (default 40),
* ``ELAN_SLEEP`` — per-iteration pacing in seconds (default 0.05),
* ``ELAN_CHUNK_KB`` — replication chunk size (default 256),
* ``ELAN_PEER_TRANSPORT`` — ring peer transport (``tcp`` default;
  ``shm`` rides shared-memory ring buffers between the co-located
  worker processes, bootstrap + doorbell over a Unix socket),
* ``ELAN_WORKER_TRACE_DIR`` — where per-worker traces land (default: a
  temporary directory).

Crash-tolerance chaos knobs (either one turns the run into a failover
drill: the AM journals to disk and worker leases are enabled):

* ``ELAN_WORKER_KILL_ITER`` — SIGKILL one worker process at this
  iteration (``ELAN_WORKER_KILL`` names it, default ``w3``); the AM
  must lease-evict it and commit the shrink on its own,
* ``ELAN_AM_KILL_ITER`` — kill the AM at this iteration and promote a
  successor replayed from the on-disk journal onto the same port; the
  run then asserts the fencing epoch bumped and an ``am.failover``
  instant landed in the trace.

Sharded-migration knobs (docs/PROTOCOL.md "Sharded replication"):

* ``ELAN_SHARDS`` — number of shard owners for the scale-out snapshot
  (0, the default, keeps the monolithic AM fan-out; 2 makes w0 and w1
  each freeze the snapshot and serve disjoint shard halves directly to
  the joiners over the peer mesh),
* ``ELAN_ZERO`` — nonzero enables the ZeRO-style sharded optimizer
  axis (each worker persists only its optimizer shard),
* ``ELAN_SHARD_OWNER_KILL`` — hard-kill shard owner w0 after it served
  this many shard chunks (mid-fetch); the joiners must re-plan the
  dead owner's shards onto the surviving owner (or the AM), the lease
  supervisor must evict w0, and the final digests must still agree.

Observability knobs:

* ``ELAN_TRACE=/path/to/trace.json`` — export the AM-side trace
  (net.send / net.recv / net.reconnect / net.state_upload spans),
* ``ELAN_TELEMETRY`` — worker→AM telemetry shipping interval in seconds
  (default 0.5; 0 disables).  With shipping on, every worker pushes
  metric/trace deltas to the AM's fleet collector and the run prints a
  live per-job goodput report at the end,
* ``ELAN_FLEET_TRACE=/path`` — export the merged, clock-aligned fleet
  trace (AM + every worker as named process rows; feed it to
  ``python -m repro.cli tracing validate`` / ``summarize``),
* ``ELAN_METRICS=/path`` — dump the AM metric registry as lossless JSON
  (readable back via ``python -m repro.cli tracing metrics``).

See docs/OBSERVABILITY.md and docs/PROTOCOL.md.
"""

import json
import os
import sys
import tempfile

from repro.net import JobSpec, MultiprocessElasticJob
from repro.observability import Tracer, load_trace_events, validate_events


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


def _env_opt_int(name: str) -> "int | None":
    value = os.environ.get(name)
    return int(value) if value else None


def main() -> int:
    tracer = Tracer(process="elan-net")
    worker_kill_iter = _env_opt_int("ELAN_WORKER_KILL_ITER")
    am_kill_iter = _env_opt_int("ELAN_AM_KILL_ITER")
    shards = _env_int("ELAN_SHARDS", 0)
    shard_owner_kill = _env_opt_int("ELAN_SHARD_OWNER_KILL")
    chaos = (
        worker_kill_iter is not None
        or am_kill_iter is not None
        or shard_owner_kill is not None
    )
    spec = JobSpec(
        iterations=_env_int("ELAN_ITERS", 40),
        coordination_interval=4,
        iteration_sleep=float(os.environ.get("ELAN_SLEEP", "0.05")),
        input_dim=_env_int("ELAN_INPUT", 16),
        hidden_dim=_env_int("ELAN_HIDDEN", 16),
        chunk_bytes=_env_int("ELAN_CHUNK_KB", 256) * 1024,
        # Chaos drills need the lease supervisor: a SIGKILLed worker
        # sends no goodbye, so only its expiring heartbeat lease tells
        # the AM to mint the shrink plan.
        worker_lease_ttl=2.0 if chaos else 0.0,
        lease_check_interval=0.25,
        # Live telemetry: the knob rides the join reply, so setting it
        # here is all it takes for every worker process to ship.
        telemetry_interval=float(os.environ.get("ELAN_TELEMETRY", "0.5")),
        # Sharded migration: the scale-out snapshot fans in from this
        # many owner peers instead of trickling out of the AM alone.
        replication_shards=shards,
        zero_optimizer=_env_int("ELAN_ZERO", 0) > 0,
    )
    trace_dir = os.environ.get(
        "ELAN_WORKER_TRACE_DIR"
    ) or tempfile.mkdtemp(prefix="elan-worker-traces-")
    os.makedirs(trace_dir, exist_ok=True)
    job = MultiprocessElasticJob(
        spec, ["w0", "w1"], tracer=tracer, worker_trace_dir=trace_dir,
        # shm moves co-located ring traffic through shared-memory ring
        # buffers; every worker process is on this host, so SHM always
        # applies (remote tcp:// peers would fall back transparently).
        peer_transport=os.environ.get("ELAN_PEER_TRANSPORT"),
        # Journal to disk so AM failover replays from the file, exactly
        # like an out-of-process standby would.
        journal_path=(
            os.path.join(trace_dir, "am-journal.jsonl") if chaos else None
        ),
    )
    print(f"AM listening on {job.host}:{job.port}")
    # w0's 6th AM send dies with its connection, and so does its 5th
    # ring peer send: both transports must reconnect and retransmit
    # without any receiver executing anything twice.
    w0_faults = {"reset_at": (6,), "peer_reset_at": (5,)}
    if shard_owner_kill is not None:
        # ... and, as a shard owner, w0 hard-exits after serving this
        # many shard chunks: a mid-fetch owner death.
        w0_faults["shard_die_after"] = shard_owner_kill
    job.start(faults={"w0": w0_faults})
    killed_worker = None
    try:
        job.wait_until_iteration(4, timeout=30)
        print(f"  running: {job.status()}")

        print("scaling out to 4 worker processes (training continues) ...")
        assert job.scale_out(["w2", "w3"])
        status = job.wait_for_adjustments(1, timeout=30)
        print(f"  committed in {status['commit_latencies'][0] * 1e3:.0f} ms: "
              f"group {status['group']}")

        if shard_owner_kill is not None:
            # w0 died mid-fetch while serving shard chunks; the joiners
            # re-planned its shards onto w1/the AM and the lease
            # supervisor must now evict the corpse.
            status = job.wait_for_adjustments(2, timeout=60)
            print("chaos: shard owner w0 died mid-fetch; lease eviction "
                  f"committed: group {status['group']}")
            assert "w0" not in status["group"], status

        if worker_kill_iter is not None:
            killed_worker = os.environ.get("ELAN_WORKER_KILL", "w3")
            job.wait_until_iteration(worker_kill_iter, timeout=60)
            print(f"chaos: SIGKILL {killed_worker} "
                  f"at iteration >= {worker_kill_iter} ...")
            job.kill_worker(killed_worker)
            status = job.wait_for_adjustments(2, timeout=60)
            print(f"  lease eviction committed: group {status['group']}")
            assert killed_worker not in status["group"], status

        if am_kill_iter is not None:
            job.wait_until_iteration(am_kill_iter, timeout=60)
            print(f"chaos: killing the AM at iteration >= {am_kill_iter}, "
                  "promoting a journal-replayed successor ...")
            job.fail_over()
            status = job.status()
            print(f"  successor serving (epoch {status['epoch']})")
            assert status["epoch"] >= 2, status

        final = job.wait_complete(timeout=90)
    finally:
        job.shutdown()

    dead = {killed_worker} if killed_worker else set()
    if shard_owner_kill is not None:
        dead.add("w0")
    survivors = 4 - len(dead)
    digests = set(final["digests"].values())
    workers = sorted(final["digests"])
    print(f"final digests from {workers}: "
          f"{'consistent' if len(digests) == 1 else 'DIVERGED'}")
    assert len(final["digests"]) == survivors, final["digests"]
    assert len(digests) == 1, final["digests"]
    expected_commits = 1 + (1 if killed_worker else 0) + (
        1 if shard_owner_kill is not None else 0
    )
    assert final["adjustments_committed"] == expected_commits, final
    if chaos:
        # The successor's listener only sees the post-failover
        # reconnects: every surviving worker plus the control link.
        floor = survivors + 1 if am_kill_iter is not None else 6
    else:
        # 4 workers + the driver's control link is 5 connections; w0's
        # reset forces at least one extra accept.
        floor = 6
    print(f"connections accepted: {job.server.connections_accepted} "
          f"(>= {floor})")
    assert job.server.connections_accepted >= floor

    # The snapshot went through the chunked binary data plane: the
    # uploader streamed it once, both joiners pulled every chunk.
    snap = job.master.metrics.snapshot()
    chunks = snap.get("net.chunks.received", 0)
    print(f"data plane: {chunks} chunks "
          f"({snap.get('net.chunks.bytes_received', 0)} bytes) uploaded, "
          f"{snap.get('net.chunks.served', 0)} chunks served to joiners, "
          f"{job.server.bytes_sent} frame bytes written by the AM")
    if chaos:
        assert snap.get("net.transfers.completed", 0) >= 1
    elif shards:
        # Sharded fan-in: the owners served the chunks peer-side, so
        # the AM streamed nothing beyond the upload it ingested.
        assert snap.get("net.transfers.completed", 0) == 1
    else:
        assert snap.get("net.transfers.completed", 0) == 1
        assert snap.get("net.chunks.served", 0) == 2 * chunks
    assert chunks >= 1

    if shards:
        planned = int(snap.get("net.shards.planned", 0))
        joins = snap.get("net.shards.joins_completed", 0)
        print(f"sharded migration: {planned} shards planned, "
              f"{joins} sharded joins completed")
        # The plan is chunk-aligned, so a snapshot smaller than the
        # owner count clamps to one shard per chunk.
        assert planned >= min(shards, int(chunks)), snap
        assert joins == 2, snap
        # Both joiners fanned in shard-by-shard: their own traces carry
        # one replicate.shard_fetch span per shard they pulled.
        joiner_events = []
        for worker in ("w2", "w3"):
            joiner_events += load_trace_events(job.worker_trace_path(worker))
        shard_spans = [
            e for e in joiner_events
            if e.get("name") == "replicate.shard_fetch"
        ]
        assert len(shard_spans) >= 2 * planned, len(shard_spans)
        if shard_owner_kill is not None:
            # w0 owned shard 0 and died mid-fetch: at least one joiner
            # must have re-planned that shard onto the surviving owner
            # (or fallen back to the AM).
            replanned = [
                e for e in shard_spans
                if e.get("args", {}).get("shard") == 0
                and e.get("args", {}).get("source") in ("w1", "am")
            ]
            assert replanned, [e.get("args") for e in shard_spans]
            sources = sorted({
                e.get("args", {}).get("source") for e in replanned
            })
            print(f"  shard 0 re-planned off dead owner w0 onto {sources}")

    # The ring took the AM out of the gradient hot path: each original
    # worker only rendezvoused at the AM for the pre-activation,
    # adjustment-boundary, fallback and final-barrier iterations.
    executions = job.master.core.executions
    syncs = {w: executions.get((w, "sync"), 0) for w in workers}
    fallbacks = snap.get("net.sync.ring_fallbacks", 0)
    print(f"AM sync executions per worker: {syncs} over "
          f"{spec.iterations} iterations ({fallbacks} ring fallbacks)")
    for worker in ("w0", "w1"):
        if worker in dead:
            continue
        if shard_owner_kill is not None:
            # The dead owner breaks the ring until its lease eviction
            # commits, so the survivors fall back to AM syncs freely.
            assert syncs[worker] > 0, syncs
            continue
        if am_kill_iter is not None:
            # The successor's dedup table starts empty, so executions
            # only count post-failover syncs — the final barrier at
            # minimum.
            assert syncs[worker] > 0, syncs
        else:
            assert 0 < syncs[worker] < spec.iterations // 2, syncs

    # Every worker's own trace shows both ring phases.
    for worker in workers:
        path = job.worker_trace_path(worker)
        events = load_trace_events(path)
        assert not validate_events(events)
        names = {event.get("name") for event in events}
        assert "net.allreduce.reduce_scatter" in names, (worker, path)
        assert "net.allreduce.all_gather" in names, (worker, path)
    print(f"worker traces in {trace_dir}: all contain "
          f"net.allreduce.reduce_scatter / all_gather spans")

    events = tracer.to_events()
    problems = validate_events(events)
    print(f"trace: {len(events)} events, "
          f"{'valid' if not problems else problems}")
    assert not problems

    if chaos:
        names = {event.get("name") for event in events}
        if am_kill_iter is not None:
            assert job.failovers == 1
            assert "am.failover" in names, sorted(names)
            print("failover: am.failover instant present in trace, "
                  f"journal at {job.journal_path}")
        if killed_worker:
            detect = snap.get("failure.detection_latency_seconds")
            mttr = snap.get("failure.mttr_seconds")
            assert detect and detect["count"] >= 1, detect
            assert mttr and mttr["count"] >= 1, mttr
            print(f"recovery: detected {killed_worker} in "
                  f"{detect['mean']:.3f}s, repaired in {mttr['mean']:.3f}s")
        if shard_owner_kill is not None:
            detect = snap.get("failure.detection_latency_seconds")
            assert detect and detect["count"] >= 1, detect
            print(f"recovery: dead shard owner w0 lease-detected in "
                  f"{detect['mean']:.3f}s")

    if spec.telemetry_interval > 0:
        # Every surviving worker shipped its registry and trace buffer
        # live; the fleet collector must hold them all — including after
        # an AM failover, where the successor's collector started empty
        # and was rebuilt from the workers' full re-ships.
        fleet = job.master.fleet
        shipped = fleet.workers()
        print(f"telemetry: collector holds {shipped} "
              f"({'successor rebuilt from re-ships' if am_kill_iter else 'live'})")
        for worker in workers:
            if worker != killed_worker:
                assert worker in shipped, (worker, shipped)
                assert fleet.worker_events(worker), worker
                assert fleet.worker_metrics(worker), worker
        reports = job.fleet_report()
        assert "fleet" in reports
        fleet_rep = reports["fleet"]
        assert fleet_rep.goodput > 0, fleet_rep.format()
        assert fleet_rep.iterations > 0, fleet_rep.format()
        print("fleet goodput report (live, from shipped telemetry):")
        print("  " + fleet_rep.format().replace("\n", "\n  "))

        fleet_trace = os.environ.get("ELAN_FLEET_TRACE")
        if fleet_trace:
            count = job.export_fleet_trace(fleet_trace)
            merged = load_trace_events(fleet_trace)
            assert not validate_events(merged), fleet_trace
            processes = {
                e["args"]["name"] for e in merged
                if e.get("ph") == "M" and e.get("name") == "process_name"
            }
            for worker in workers:
                if worker != killed_worker:
                    assert worker in processes, (worker, processes)
            if shards:
                merged_names = {e.get("name") for e in merged}
                assert "replicate.shard_fetch" in merged_names, fleet_trace
            print(f"merged fleet trace ({count} events, processes "
                  f"{sorted(processes)}) -> {fleet_trace}")

    metrics_path = os.environ.get("ELAN_METRICS")
    if metrics_path:
        with open(metrics_path, "w") as f:
            json.dump(job.master.metrics.to_json(), f,
                      indent=2, sort_keys=True)
        print(f"AM metric registry -> {metrics_path}")

    trace_path = os.environ.get("ELAN_TRACE")
    if trace_path:
        tracer.export(trace_path)
        print(f"trace exported -> {trace_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
