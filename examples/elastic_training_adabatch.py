"""The §VI-B scenario: AdaBatch (dynamic batch sizes) powered by Elan.

Part 1 runs the real thing at laptop scale: a live elastic job whose
batch size doubles twice; at each doubling Elan scales the worker pool
out so the hardware keeps up, and the progressive linear scaling rule
ramps the learning rate.  A static twin trains with the small batch
throughout for the accuracy comparison.

Part 2 replays the paper's ImageNet-scale experiment on the calibrated
models and prints Fig. 18 / Fig. 19 / Table IV.

Run:  python examples/elastic_training_adabatch.py
"""

from repro.core import ElasticTrainingExperiment, ElasticJob, WeakScalingPolicy
from repro.training import make_classification, train_single


def live_adabatch_run():
    print("=== Part 1: live AdaBatch at laptop scale ===")
    dataset = make_classification(train_size=4096, test_size=1024, seed=3)

    # Static twin: batch 64 on 2 workers for the whole budget.
    static = train_single(dataset, 64, epochs=12, base_lr=0.01,
                          lr_scaling="fixed", seed=3)
    print(f"static  (batch 64 throughout): accuracy {static.test_accuracy:.3f}")

    # Elastic: double the batch at two points; Elan doubles the workers
    # (weak scaling) and ramps the LR progressively.
    job = ElasticJob(
        dataset, workers=2, total_batch_size=64, base_lr=0.01,
        scaling_policy=WeakScalingPolicy(ramp_iterations=15), seed=3,
    )
    iterations_per_phase = 4 * (dataset.train_size // 64)
    with job:
        job.wait_until_iteration(iterations_per_phase)
        job.scale_out(2)  # batch 64 -> 128 on 4 workers
        job.wait_for_adjustments(1)
        job.wait_until_iteration(job.status()["iteration"] + iterations_per_phase // 2)
        job.scale_out(4)  # batch 128 -> 256 on 8 workers
        job.wait_for_adjustments(2)
        job.wait_until_iteration(job.status()["iteration"] + iterations_per_phase // 4)
    print(f"elastic (batch 64->128->256):  accuracy {job.evaluate():.3f}")
    for plan in job.history:
        print(
            f"  scaled to {len(plan.group)} workers at iteration "
            f"{plan.commit_iteration}: batch {plan.total_batch_size}, "
            f"lr ramps to {plan.lr_ramp.target_lr:.3f}"
            if plan.lr_ramp else ""
        )


def paper_scale_replay():
    print("\n=== Part 2: the paper's ResNet-50/ImageNet experiment ===")
    experiment = ElasticTrainingExperiment(seed=0)
    static, fixed, elastic = experiment.all_configurations()
    print(f"{'config':24s} {'total time':>12s} {'final top-1':>12s}  workers")
    for run in (static, fixed, elastic):
        print(
            f"{run.label:24s} {run.total_time:10.0f} s "
            f"{run.final_accuracy:11.2%}  "
            f"{[p.workers for p in run.phases]}"
        )
    print("\nTable IV — time to solution:")
    print(f"{'target':>8s} {'512 (16)':>10s} {'512-2048 (64)':>14s} "
          f"{'Elastic':>10s} {'speedup':>9s}")
    for target in (0.745, 0.75, 0.755):
        ts = static.time_to_accuracy(target)
        tf = fixed.time_to_accuracy(target)
        te = elastic.time_to_accuracy(target)
        print(f"{target:8.1%} {ts:10.0f} {tf:14.0f} {te:10.0f} {ts / te:8.3f}x")
    print("(paper: ~1.25x at every target, growing with the target)")


if __name__ == "__main__":
    live_adabatch_run()
    paper_scale_replay()
