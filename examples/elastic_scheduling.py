"""Elastic cluster scheduling (paper §VI-C) on a synthetic two-day trace.

Replays the same trace under the static policies (FIFO, Backfill) and
their elastic variants (E-FIFO, E-BF), then re-runs the elastic policy
under the three elasticity systems (Ideal / Elan / S&R) — reproducing the
shapes of Figs. 20, 21 and 22.

Run:  python examples/elastic_scheduling.py
"""

from repro.scheduling import (
    BackfillPolicy,
    ClusterSimulator,
    ElanCosts,
    ElasticBackfillPolicy,
    ElasticFifoPolicy,
    FifoPolicy,
    IdealCosts,
    ShutdownRestartCosts,
    generate_trace,
)

GPUS = 128


def main():
    trace = generate_trace(seed=42)
    print(f"trace: {len(trace)} jobs over two days on {GPUS} GPUs\n")

    print("=== Fig. 20: static vs elastic policies ===")
    print(f"{'policy':8s} {'JPT (s)':>10s} {'JCT (s)':>10s} "
          f"{'makespan (s)':>13s} {'util':>6s} {'adjusts':>8s}")
    results = {}
    for policy in (FifoPolicy(), BackfillPolicy(), ElasticFifoPolicy(),
                   ElasticBackfillPolicy()):
        result = ClusterSimulator(
            trace, policy, total_gpus=GPUS, costs=ElanCosts()
        ).run()
        results[policy.name] = result
        print(
            f"{policy.name:8s} {result.average_jpt:10.0f} "
            f"{result.average_jct:10.0f} {result.makespan:13.0f} "
            f"{result.average_utilization():6.0%} {result.adjustments:8d}"
        )
    for static, elastic in (("fifo", "e-fifo"), ("bf", "e-bf")):
        s, e = results[static], results[elastic]
        print(
            f"  {elastic} vs {static}: "
            f"JPT -{1 - e.average_jpt / s.average_jpt:.0%}, "
            f"JCT -{1 - e.average_jct / s.average_jct:.0%}, "
            f"makespan -{1 - e.makespan / s.makespan:.0%}"
        )

    print("\n=== Fig. 21: utilization through the busiest day ===")
    static_series = dict(results["fifo"].utilization_series(4 * 3600))
    elastic_series = dict(results["e-fifo"].utilization_series(4 * 3600))
    print(f"{'hour':>5s} {'static':>8s} {'elastic':>8s}")
    for t in sorted(static_series)[:12]:
        print(f"{t / 3600:5.0f} {static_series[t]:8.0%} "
              f"{elastic_series.get(t, 0.0):8.0%}")

    print("\n=== Fig. 22: the same elastic policy under three systems ===")
    print(f"{'system':8s} {'avg JCT (s)':>12s} {'vs ideal':>9s}")
    baseline = None
    for costs in (IdealCosts(), ElanCosts(), ShutdownRestartCosts()):
        result = ClusterSimulator(
            trace, ElasticFifoPolicy(), total_gpus=GPUS, costs=costs
        ).run()
        if baseline is None:
            baseline = result.average_jct
        print(f"{costs.name:8s} {result.average_jct:12.0f} "
              f"{result.average_jct / baseline - 1:+9.1%}")
    print("(paper: Elan ~ ideal; S&R ~ +6% JCT)")


if __name__ == "__main__":
    main()
