"""Fault tolerance (paper §V-D): AM fail-over and a lossy control plane.

Part 1 crashes the application master mid-adjustment and recovers it from
the persisted state machine (the etcd stand-in), then finishes the
adjustment with the recovered AM.

Part 2 pushes worker reports through a channel that drops and duplicates
messages; unique message IDs + timeout-resend deliver each report exactly
once.

Run:  python examples/fault_tolerance.py
"""

from repro.coordination import (
    AdjustmentKind,
    AdjustmentRequest,
    ApplicationMaster,
    DeduplicatingInbox,
    DirectiveKind,
    FaultyChannel,
    KeyValueStore,
    MessageFactory,
    MessageType,
    ReliableSender,
)


def am_failover():
    print("=== Part 1: AM crash and recovery mid-adjustment ===")
    store = KeyValueStore()
    am = ApplicationMaster("job0", ["w0", "w1", "w2", "w3"], store=store)
    am.request_adjustment(
        AdjustmentRequest(AdjustmentKind.SCALE_OUT, add_workers=("w4", "w5"))
    )
    am.worker_report("w4")
    print(f"AM state before crash: {am.state.value}, reported={sorted(am.reported)}")

    print("... AM process dies; a replacement recovers from the store ...")
    recovered = ApplicationMaster.recover("job0", store)
    print(f"recovered state: {recovered.state.value}, "
          f"reported={sorted(recovered.reported)}")

    recovered.worker_report("w5")  # the missing report arrives
    directive = recovered.coordinate("w0", recovered.commit_iteration)
    assert directive.kind is DirectiveKind.ADJUST
    recovered.finish_adjustment()
    print(f"adjustment committed by the recovered AM; group is now "
          f"{recovered.group}")


def lossy_control_plane():
    print("\n=== Part 2: exactly-once reports over a lossy channel ===")
    inbox = DeduplicatingInbox()
    received = []

    def deliver(message):
        if inbox.accept(message):
            received.append(message)

    channel = FaultyChannel(deliver, drop_every=3, duplicate_every=4)
    sender = ReliableSender(channel, max_attempts=6)
    factory = MessageFactory()
    for i in range(20):
        message = factory.make(
            MessageType.WORKER_REPORT, f"w{i}", {"ready": True}
        )
        ok = sender.send(
            message,
            acknowledged=lambda m=message: any(
                r.msg_id == m.msg_id for r in received
            ),
        )
        assert ok
    print(f"sends attempted: {channel.sent} "
          f"(dropped {channel.dropped}, duplicated {channel.duplicated})")
    print(f"reports delivered exactly once: {len(received)}/20, "
          f"duplicates discarded: {inbox.duplicates_dropped}")


if __name__ == "__main__":
    am_failover()
    lossy_control_plane()
