"""Topology-aware concurrent IO-free replication (paper §IV, Fig. 9).

Walks the paper's Fig. 9 example — adding workers E and F to a job on
{A, B, C, D} spread across two servers — and shows how the planner picks
the nearest source for each new worker, runs the two transfers in
parallel, and how the whole thing compares against going through a
checkpoint on the shared filesystem.

Run:  python examples/topology_replication.py
"""

from repro.perfmodel import RESNET50, VGG19
from repro.replication import (
    SimulatedReplicationExecutor,
    checkpoint_load_cost,
    checkpoint_write_cost,
    plan_replication,
)
from repro.topology import (
    BandwidthProfile,
    build_cluster,
    gpu_by_name,
    gpus_of,
    link_level,
)


def fig9_walkthrough():
    print("=== Fig. 9: adding E, F to {A, B, C, D} ===")
    cluster = build_cluster(2)
    names = {
        "A": "node0/gpu0", "B": "node0/gpu1",  # same PCIe switch
        "C": "node0/gpu4",                     # other socket, same node
        "D": "node1/gpu0",                     # second node
        "E": "node0/gpu5",                     # joins next to C
        "F": "node1/gpu4",                     # joins on D's node
    }
    gpus = {k: gpu_by_name(cluster, v) for k, v in names.items()}
    print("link levels between the existing workers:")
    for a, b in (("A", "B"), ("A", "C"), ("A", "D")):
        print(f"  {a}-{b}: {link_level(gpus[a], gpus[b]).name}")

    plan = plan_replication(
        [gpus[k] for k in "ABCD"],
        [gpus[k] for k in "EF"],
        RESNET50.gpu_state_bytes,
        RESNET50.cpu_state_bytes,
    )
    timeline = SimulatedReplicationExecutor().execute(plan)
    print("\nreplication plan (ResNet-50 state, 208 MB):")
    for record in timeline.records:
        print(f"  {record.transfer.describe()}  "
              f"{record.start * 1e3:.1f} -> {record.end * 1e3:.1f} ms")
    print(f"rounds: {len(plan.rounds)}, makespan: {timeline.makespan:.3f} s")


def concurrency_and_chaining():
    print("\n=== Scaling 8 -> 16 workers: concurrency and chaining ===")
    cluster = build_cluster(2)
    gpus = gpus_of(cluster)
    existing, new = gpus[:8], gpus[8:16]
    profile = BandwidthProfile()
    for chaining in (False, True):
        plan = plan_replication(
            existing, new, VGG19.gpu_state_bytes, VGG19.cpu_state_bytes,
            allow_chaining=chaining,
        )
        print(
            f"  chaining={str(chaining):5s}: {len(plan.rounds)} rounds, "
            f"max concurrency {plan.max_concurrency}, "
            f"estimated {plan.estimated_time(profile):.3f} s"
        )


def versus_checkpoint():
    print("\n=== IO-free replication vs checkpointing (VGG-19, 1.1 GB) ===")
    cluster = build_cluster(2)
    gpus = gpus_of(cluster)
    plan = plan_replication(
        gpus[:8], gpus[8:16], VGG19.gpu_state_bytes, VGG19.cpu_state_bytes,
        allow_chaining=True,
    )
    direct = plan.estimated_time(BandwidthProfile())
    write = checkpoint_write_cost(VGG19.gpu_state_bytes, VGG19.cpu_state_bytes)
    load = checkpoint_load_cost(VGG19.gpu_state_bytes, VGG19.cpu_state_bytes)
    via_fs = write.total + load.total
    print(f"  direct (topology-aware, IO-free): {direct:.2f} s")
    print(f"  via shared filesystem checkpoint: {via_fs:.2f} s "
          f"(write {write.total:.2f} + load {load.total:.2f})")
    print(f"  -> {via_fs / direct:.1f}x slower through storage")


if __name__ == "__main__":
    fig9_walkthrough()
    concurrency_and_chaining()
    versus_checkpoint()
