"""The live multi-tenant cluster scheduler service (§VI-C, live).

One :class:`ClusterScheduler` owns a GPU inventory and many elastic
jobs.  Clients submit :class:`JobRequest`\\ s over the §V-D reliable
links (``SUBMIT``); the scheduler admits them with the paper's
admission rule, sizes them with a pluggable
:class:`~repro.scheduling.SchedulingPolicy` through the shared
:class:`~repro.scheduling.PolicyAdapter` seam, and delivers grow /
shrink directives to each job's
:class:`~repro.net.NetworkedApplicationMaster` (``RESIZE``) — so the
exactly-once / dedup / reconnection guarantees of the existing
transport stack carry the whole scheduling plane.

Key semantics, mirrored from the trace simulator so the two planes
agree:

* **admission** — a queued job starts only when the policy grants it
  workers *and* the inventory can still hold every running job's
  minimum plus this job's grant (the §VI-C floor check lives in the
  elastic policies; the scheduler enforces the physical capacity).
* **spot churn** — :meth:`ClusterScheduler.set_capacity` models the
  inventory shrinking under the jobs; when the running jobs' *minimums*
  no longer fit, victims are condemned back to the queue in priority
  order (lowest priority first, then newest admission), losing their
  progress — live preemption restarts from scratch, unlike the
  simulator's checkpoint-on-preempt, and the journal records it.
* **decision journal** — every externally visible decision (submit,
  admit, resize, preempt, capacity change, release, completion) is
  appended to a checksummed :class:`~repro.net.journal.Journal` with
  cluster-specific record kinds *before* the reply that makes it
  observable, so a successor scheduler can replay its inventory and
  queue (:meth:`ClusterScheduler.from_journal`).

The scheduler never names workers or touches training state: runners
(:mod:`repro.cluster.runners`) own the per-job data plane, and the
scheduler only deals in worker *counts* — which is also what makes it
trivially testable against a stub runner.
"""

from __future__ import annotations

import dataclasses
import threading
import time
import typing

from ..coordination.messages import Message, MessageType
from ..net.journal import Journal
from ..net.transport import ServerCore
from ..scheduling import (
    BackfillPolicy,
    ElasticBackfillPolicy,
    ElasticFifoPolicy,
    ElasticSrtfPolicy,
    FifoPolicy,
    PolicyAdapter,
    PriorityElasticPolicy,
    SchedulingPolicy,
)
from ..scheduling.job import JobSpec as ScheduleSpec

#: Policy registry shared by the CLI and :meth:`from_journal` (the
#: journal records the policy by name, not by pickle).
POLICIES: "dict[str, typing.Callable[[], SchedulingPolicy]]" = {
    "fifo": FifoPolicy,
    "bf": BackfillPolicy,
    "e-fifo": ElasticFifoPolicy,
    "e-bf": ElasticBackfillPolicy,
    "e-srtf": ElasticSrtfPolicy,
    "e-priority": PriorityElasticPolicy,
}

#: Record kinds of the scheduler's decision journal (disjoint from the
#: AM journal's :data:`~repro.net.journal.RECORD_KINDS` — a scheduler
#: journal can never be mistaken for a job journal at replay time).
CLUSTER_RECORD_KINDS = frozenset({
    "open",      # scheduler boot: policy name, nominal capacity
    "epoch",     # fencing epoch of one scheduler incarnation
    "submit",    # one job request queued (full request payload)
    "admit",     # a queued job started with an initial allocation
    "resize",    # a running job's target allocation changed
    "preempt",   # a running job condemned back to the queue
    "capacity",  # the GPU inventory changed (spot churn)
    "release",   # a job returned its GPUs (client cancel)
    "complete",  # a job finished (digest, timings)
})


@dataclasses.dataclass(frozen=True)
class JobRequest:
    """One client-submitted elastic job (the ``SUBMIT`` payload).

    Carries both the *scheduling* face (min/req/max workers, priority,
    a Table I model name for the policy's throughput arithmetic) and
    the *training* face (iterations, seed, pacing) the runner needs to
    start the live job.
    """

    job_id: str
    iterations: int = 24
    priority: int = 0
    min_res: int = 1
    req_res: int = 1
    max_res: int = 2
    model: str = "ResNet-50"
    seed: int = 7
    coordination_interval: int = 4
    iteration_sleep: float = 0.0

    def __post_init__(self):
        if not self.job_id:
            raise ValueError("job_id must be non-empty")
        if self.iterations < 1:
            raise ValueError(f"{self.job_id}: iterations must be >= 1")
        if not 1 <= self.min_res <= self.req_res <= self.max_res:
            raise ValueError(
                f"{self.job_id}: need 1 <= min {self.min_res} <= req "
                f"{self.req_res} <= max {self.max_res}"
            )

    def to_payload(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_payload(cls, payload: dict) -> "JobRequest":
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in fields})

    def to_schedule_spec(self, submit_time: float) -> ScheduleSpec:
        """The policy-visible :class:`~repro.scheduling.JobSpec`.

        ``work`` is measured in iterations, so a runner's iteration
        watermark *is* the job's ``work_done`` — no unit conversion
        between the live plane and the policy arithmetic.
        """
        from ..perfmodel.models import get_model

        return ScheduleSpec(
            job_id=self.job_id, model=get_model(self.model),
            submit_time=submit_time, work=float(self.iterations),
            req_res=self.req_res, min_res=self.min_res,
            max_res=self.max_res, priority=self.priority,
        )


class _JobRecord:
    """The scheduler's bookkeeping for one submitted job."""

    __slots__ = (
        "request", "submit_seq", "submitted_at", "enqueued_at",
        "admitted_at", "admit_seq", "workers", "runner", "preemptions",
    )

    def __init__(self, request: JobRequest, submit_seq: int, now: float):
        self.request = request
        self.submit_seq = submit_seq
        self.submitted_at = now
        self.enqueued_at = now  # reset on preemption requeue
        self.admitted_at: "float | None" = None  # first admission
        self.admit_seq = -1  # monotonically increasing per admission
        self.workers = 0
        self.runner: "typing.Any | None" = None
        self.preemptions = 0


class ClusterScheduler:
    """Admit, allocate, and resize many concurrent elastic jobs.

    ``runner_factory(request, scheduler)`` builds the per-job data
    plane; it must return an object with the runner protocol —
    ``start(workers)``, ``resize(workers, at_iteration=None) -> bool``,
    ``progress() -> int``, ``complete() -> bool``,
    ``digests() -> dict``, ``stop()``, ``close()`` (see
    :class:`~repro.cluster.runners.ElasticJobRunner`).  Tests drive the
    scheduler with a stub.

    The scheduler is passive between :meth:`step` calls: handlers only
    mutate the queue, and every decision (admission, resize, eviction)
    happens inside ``step`` — which is what makes a scripted scenario
    deterministic and a live deployment a trivial loop
    (:meth:`serve_forever`).
    """

    def __init__(
        self,
        policy: "SchedulingPolicy | str",
        total_gpus: int,
        runner_factory: "typing.Callable[..., typing.Any] | None" = None,
        journal: "Journal | None" = None,
        tracer: "typing.Any | None" = None,
        metrics: "typing.Any | None" = None,
        clock: "typing.Callable[[], float] | None" = None,
        _replay: "ClusterJournalState | None" = None,
    ):
        if total_gpus < 1:
            raise ValueError("total_gpus must be >= 1")
        if isinstance(policy, str):
            policy = POLICIES[policy]()
        self.adapter = PolicyAdapter(policy)
        self.capacity = total_gpus
        self.runner_factory = runner_factory
        self.tracer = tracer
        self.metrics = metrics
        self.clock = clock if clock is not None else time.monotonic
        self.journal = journal if journal is not None else Journal(
            kinds=CLUSTER_RECORD_KINDS
        )
        self._lock = threading.RLock()
        self._t0 = self.clock()
        self._fenced = False
        self._server = None
        self._stop = threading.Event()
        #: submit order: the queue list stays sorted by ``submit_seq``.
        self.jobs: "dict[str, _JobRecord]" = {}
        self.queue: "list[str]" = []
        self.running: "dict[str, _JobRecord]" = {}
        self.completed: "dict[str, dict]" = {}
        self.preemptions = 0
        self._submit_seq = 0
        self._admit_seq = 0
        self.core = ServerCore(
            handler=self.handle, node_id="cluster", tracer=tracer,
            metrics=metrics,
        )
        if _replay is None:
            self.epoch = 1
            self.journal.append(
                "open", policy=self.adapter.name, capacity=total_gpus,
            )
            self.journal.append("epoch", epoch=self.epoch)
        else:
            self._restore(_replay)
        self.core.epoch = self.epoch

    # -- time ------------------------------------------------------------------

    def _now(self) -> float:
        """Seconds since this incarnation started (journal-safe)."""
        return self.clock() - self._t0

    # -- client API (also reachable over the wire) -----------------------------

    def submit(self, request: JobRequest) -> dict:
        """Queue one job request; the next :meth:`step` may admit it."""
        with self._lock:
            if request.job_id in self.jobs:
                return {"accepted": False, "reason": "duplicate",
                        "job_id": request.job_id}
            now = self._now()
            self.journal.append(
                "submit", job=request.to_payload(), at=now,
                seq=self._submit_seq,
            )
            record = _JobRecord(request, self._submit_seq, now)
            self._submit_seq += 1
            self.jobs[request.job_id] = record
            self.queue.append(request.job_id)
            self._instant("cluster.submit", job=request.job_id,
                          priority=request.priority)
            self._count("cluster.submits")
            self._gauges()
            return {"accepted": True, "job_id": request.job_id,
                    "position": len(self.queue)}

    def set_capacity(self, gpus: int, reason: str = "operator") -> dict:
        """Grow or shrink the GPU inventory (spot churn lives here).

        Only records the new capacity; the next :meth:`step` shrinks or
        evicts jobs to fit — so a scripted scenario can pin the commit
        boundary of the resulting resizes.
        """
        if gpus < 1:
            raise ValueError("capacity must stay >= 1")
        with self._lock:
            old, self.capacity = self.capacity, gpus
            self.journal.append("capacity", gpus=gpus, old=old,
                                reason=reason, at=self._now())
            self._instant("cluster.capacity", old=old, new=gpus,
                          reason=reason)
            self._count("cluster.capacity_changes")
            self._gauges()
            return {"capacity": gpus, "old": old}

    def release(self, job_id: str) -> dict:
        """Return a job's GPUs (client cancel); queued or running."""
        with self._lock:
            record = self.jobs.get(job_id)
            if record is None or job_id in self.completed:
                return {"released": False, "job_id": job_id}
            state = "running" if job_id in self.running else "queued"
            if job_id in self.running:
                self._stop_runner(record)
                del self.running[job_id]
            if job_id in self.queue:
                self.queue.remove(job_id)
            del self.jobs[job_id]
            self.journal.append("release", job_id=job_id, state=state,
                                at=self._now())
            self._instant("cluster.release", job=job_id, state=state)
            self._count("cluster.releases")
            self._gauges()
            return {"released": True, "job_id": job_id, "state": state}

    def offer(self, job_id: str) -> dict:
        """One job's current placement (the ``OFFER`` reply)."""
        with self._lock:
            if job_id in self.completed:
                done = self.completed[job_id]
                return {"job_id": job_id, "state": "completed",
                        "digest": done.get("digest"),
                        "jct": done.get("jct")}
            record = self.jobs.get(job_id)
            if record is None:
                return {"job_id": job_id, "state": "unknown"}
            if job_id in self.running:
                progress = None
                if record.runner is not None:
                    progress = record.runner.progress()
                return {"job_id": job_id, "state": "running",
                        "workers": record.workers, "iteration": progress,
                        "preemptions": record.preemptions}
            return {"job_id": job_id, "state": "queued",
                    "position": self.queue.index(job_id) + 1,
                    "preemptions": record.preemptions}

    def tables(self) -> dict:
        """Queue / allocation / completion tables (``JOB_STATUS``)."""
        with self._lock:
            queue_rows = [
                {"job_id": jid, "priority": self.jobs[jid].request.priority,
                 "min": self.jobs[jid].request.min_res,
                 "max": self.jobs[jid].request.max_res,
                 "preemptions": self.jobs[jid].preemptions,
                 "queued_for": round(
                     self._now() - self.jobs[jid].enqueued_at, 3)}
                for jid in self.queue
            ]
            running_rows = [
                {"job_id": jid, "workers": rec.workers,
                 "priority": rec.request.priority,
                 "iteration": rec.runner.progress()
                 if rec.runner is not None else None}
                for jid, rec in self.running.items()
            ]
            completed_rows = [
                {"job_id": jid, "digest": data.get("digest"),
                 "jct": data.get("jct"),
                 "preemptions": data.get("preemptions")}
                for jid, data in self.completed.items()
            ]
            return {
                "policy": self.adapter.name, "epoch": self.epoch,
                "capacity": self.capacity, "busy": self._busy(),
                "queue": queue_rows, "running": running_rows,
                "completed": completed_rows,
                "preemptions": self.preemptions,
            }

    # -- the scheduling pass ---------------------------------------------------

    def step(self, pin_at: "int | None" = None) -> dict:
        """One scheduling pass: reap, evict-to-fit, allocate, apply.

        ``pin_at`` pins every resize issued by this pass to commit at
        that training iteration (rounded up to the job's coordination
        boundary) — the lever a deterministic scenario uses to make
        resize commits land at identical iterations on every transport.
        """
        span = None
        if self.tracer is not None:
            span = self.tracer.begin("cluster.reschedule", track="cluster",
                                     cat="cluster")
        try:
            with self._lock:
                summary = self._step_locked(pin_at)
        finally:
            if self.tracer is not None:
                self.tracer.end(span)
        return summary

    def _step_locked(self, pin_at: "int | None") -> dict:
        now = self._now()
        completed = self._reap(now)
        preempted = self._evict_to_fit(now)
        allocation = self._allocation(now)
        resized = self._apply_resizes(allocation, pin_at, now)
        admitted = self._admit(allocation, now)
        self._gauges()
        return {"admitted": admitted, "resized": resized,
                "preempted": preempted, "completed": completed,
                "allocation": allocation}

    def _reap(self, now: float) -> "list[str]":
        reaped = []
        for job_id, record in list(self.running.items()):
            if record.runner is None or not record.runner.complete():
                continue
            digests = record.runner.digests()
            unique = sorted(set(digests.values()))
            jct = now - record.submitted_at
            queueing = (record.admitted_at or now) - record.submitted_at
            data = {
                "job_id": job_id, "digest": unique[0] if unique else None,
                "digests": dict(digests), "workers": record.workers,
                "jct": jct, "queueing_delay": queueing,
                "preemptions": record.preemptions, "at": now,
            }
            self.journal.append("complete", **data)
            self.completed[job_id] = data
            record.runner.close()
            record.workers = 0
            del self.running[job_id]
            reaped.append(job_id)
            self._instant("cluster.complete", job=job_id,
                          jct=round(jct, 3))
            self._count("cluster.completions")
            if self.metrics is not None:
                self.metrics.histogram("cluster.jct_seconds").observe(jct)
        return reaped

    def _evict_to_fit(self, now: float) -> "list[str]":
        """Condemn victims until running minimums fit the inventory.

        Victim order is the spot-churn rule: lowest priority tier
        first, newest admission first within a tier — the jobs with
        the least seniority pay for the capacity loss.
        """
        preempted = []
        while self.running:
            floor = sum(
                rec.request.min_res for rec in self.running.values()
            )
            if floor <= self.capacity:
                break
            victim = min(
                self.running.values(),
                key=lambda r: (r.request.priority, -r.admit_seq),
            )
            job_id = victim.request.job_id
            progress = (victim.runner.progress()
                        if victim.runner is not None else 0)
            self._stop_runner(victim)
            del self.running[job_id]
            victim.workers = 0
            victim.preemptions += 1
            victim.enqueued_at = now
            self.preemptions += 1
            # Requeue in submit order: FIFO-family policies read the
            # queue front-to-back.
            self.queue.append(job_id)
            self.queue.sort(key=lambda jid: self.jobs[jid].submit_seq)
            self.journal.append(
                "preempt", job_id=job_id, progress_lost=progress,
                capacity=self.capacity, at=now,
            )
            preempted.append(job_id)
            self._instant("cluster.preempt", job=job_id,
                          progress_lost=progress)
            self._count("cluster.preempts")
        return preempted

    def _allocation(self, now: float) -> "dict[str, int]":
        queue_execs = [
            self.adapter.execution(
                self.jobs[jid].request.to_schedule_spec(
                    self.jobs[jid].submitted_at
                )
            )
            for jid in self.queue
        ]
        running_execs = [
            self.adapter.execution(
                rec.request.to_schedule_spec(rec.submitted_at),
                workers=rec.workers,
                work_done=float(rec.runner.progress())
                if rec.runner is not None else 0.0,
                start_time=rec.admitted_at,
            )
            for rec in self.running.values()
        ]
        return self.adapter.target_allocation(
            now, queue_execs, running_execs, self.capacity, clamp=True,
        )

    def _apply_resizes(
        self, allocation: "dict[str, int]", pin_at: "int | None",
        now: float,
    ) -> "dict[str, tuple[int, int]]":
        resized = {}
        for job_id, record in self.running.items():
            target = allocation.get(job_id, record.workers)
            if target < record.request.min_res:
                # Elastic policies keep running jobs at >= min_res; a
                # policy that drops below the floor is ignored here —
                # shrinking under the minimum is the eviction path's
                # decision, not a resize.
                continue
            if target == record.workers or record.runner is None:
                continue
            accepted = record.runner.resize(target, at_iteration=pin_at)
            if not accepted:
                # An adjustment is already in flight on this job's AM;
                # the next pass re-requests (one in flight per job).
                self._count("cluster.resize_deferrals")
                continue
            old, record.workers = record.workers, target
            self.journal.append(
                "resize", job_id=job_id, old=old, new=target,
                at_iteration=pin_at, at=now,
            )
            resized[job_id] = (old, target)
            self._instant("cluster.resize", job=job_id, old=old,
                          new=target, at_iteration=pin_at)
            self._count("cluster.resizes")
        return resized

    def _admit(
        self, allocation: "dict[str, int]", now: float,
    ) -> "list[str]":
        admitted = []
        for job_id in list(self.queue):
            target = allocation.get(job_id, 0)
            if target <= 0:
                continue
            record = self.jobs[job_id]
            free = self.capacity - self._busy()
            workers = min(target, free)
            if workers < record.request.min_res:
                # The policy admitted it, but resize deferrals can keep
                # GPUs physically occupied for another pass.
                continue
            if self.runner_factory is None:
                raise RuntimeError(
                    "cannot admit jobs without a runner_factory"
                )
            runner = self.runner_factory(record.request, self)
            queueing = now - record.enqueued_at
            self.journal.append(
                "admit", job_id=job_id, workers=workers,
                queueing_delay=queueing, at=now,
            )
            record.runner = runner
            record.workers = workers
            record.admit_seq = self._admit_seq
            self._admit_seq += 1
            if record.admitted_at is None:
                record.admitted_at = now
            self.queue.remove(job_id)
            self.running[job_id] = record
            runner.start(workers)
            admitted.append(job_id)
            self._instant("cluster.admit", job=job_id, workers=workers,
                          queueing_delay=round(queueing, 3))
            self._count("cluster.admits")
            if self.metrics is not None:
                self.metrics.histogram(
                    "cluster.queueing_delay_seconds"
                ).observe(queueing)
        return admitted

    def _busy(self) -> int:
        return sum(rec.workers for rec in self.running.values())

    def _stop_runner(self, record: _JobRecord) -> None:
        if record.runner is None:
            return
        try:
            record.runner.stop()
        finally:
            record.runner.close()
            record.runner = None

    # -- wire ------------------------------------------------------------------

    def handle(self, message: Message) -> dict:
        """The :class:`~repro.net.transport.ServerCore` handler."""
        if self._fenced:
            return {"__retry__": "scheduler_superseded"}
        payload = message.payload or {}
        if message.msg_type is MessageType.SUBMIT:
            return self.submit(JobRequest.from_payload(payload["job"]))
        if message.msg_type is MessageType.OFFER:
            return self.offer(str(payload["job_id"]))
        if message.msg_type is MessageType.JOB_STATUS:
            return self.tables()
        if message.msg_type is MessageType.RELEASE:
            return self.release(str(payload["job_id"]))
        if message.msg_type is MessageType.STATUS:
            with self._lock:
                return {
                    "policy": self.adapter.name, "epoch": self.epoch,
                    "capacity": self.capacity, "busy": self._busy(),
                    "queued": len(self.queue),
                    "running": len(self.running),
                    "completed": len(self.completed),
                    "preemptions": self.preemptions,
                }
        raise ValueError(
            f"cluster scheduler cannot handle {message.msg_type.value!r}"
        )

    def serve_tcp(self, host: str = "127.0.0.1", port: int = 0):
        """Listen for clients; returns the :class:`~repro.net.tcp.TcpServer`."""
        from ..net.tcp import TcpServer

        self._server = TcpServer(
            self.core, host=host, port=port, tracer=self.tracer,
            metrics=self.metrics,
        ).start()
        return self._server

    def serve_forever(
        self, interval: float = 0.1,
        deadline: "float | None" = None,
    ) -> None:
        """Run :meth:`step` on a cadence until :meth:`close` (or deadline)."""
        end = None if deadline is None else self.clock() + deadline
        while not self._stop.is_set():
            self.step()
            if end is not None and self.clock() >= end:
                return
            self._stop.wait(interval)

    # -- lifecycle / failover --------------------------------------------------

    def close(self) -> None:
        """Stop serving, stop every running job, close the journal."""
        self._stop.set()
        if self._server is not None:
            self._server.close()
        with self._lock:
            for record in self.running.values():
                self._stop_runner(record)
            self.running.clear()
        self.journal.close()

    def abandon(self) -> None:
        """Fence this incarnation out so a successor can take over.

        Running jobs' runners die with the incarnation (their GPUs are
        gone); the journal stays open for hand-off.
        """
        self._stop.set()
        with self._lock:
            self._fenced = True
            for record in self.running.values():
                self._stop_runner(record)
            if self.tracer is not None:
                self.tracer.instant(
                    "cluster.abandoned", track="cluster", cat="cluster",
                    epoch=self.epoch,
                )
        if self._server is not None:
            self._server.close()

    @classmethod
    def from_journal(
        cls,
        journal: Journal,
        runner_factory: "typing.Callable[..., typing.Any] | None" = None,
        tracer: "typing.Any | None" = None,
        metrics: "typing.Any | None" = None,
        clock: "typing.Callable[[], float] | None" = None,
    ) -> "ClusterScheduler":
        """Rebuild a crashed scheduler from its decision journal.

        The successor replays every decision, journals a strictly
        higher fencing epoch, and requeues the predecessor's running
        jobs at their original submit positions (their runners died
        with the predecessor; re-admission restarts them) — queued and
        completed jobs come back verbatim.
        """
        state = ClusterJournalState.replay(journal.records())
        if state.policy is None:
            raise ValueError("journal holds no open record to recover from")
        return cls(
            state.policy, state.capacity,
            runner_factory=runner_factory, journal=journal,
            tracer=tracer, metrics=metrics, clock=clock, _replay=state,
        )

    def _restore(self, state: "ClusterJournalState") -> None:
        self.epoch = state.epoch + 1
        self.journal.append("epoch", epoch=self.epoch)
        self.capacity = state.capacity
        self.preemptions = state.preemptions
        self._submit_seq = state.submit_seq
        now = self._now()
        for job_id, payload in state.submitted.items():
            if job_id in state.completed or job_id in state.released:
                continue
            request = JobRequest.from_payload(payload)
            record = _JobRecord(
                request, state.submit_seq_of.get(job_id, 0), now,
            )
            record.preemptions = state.preemption_counts.get(job_id, 0)
            self.jobs[job_id] = record
            # Previously *running* jobs lost their runners with the old
            # incarnation: requeue them for re-admission.
            self.queue.append(job_id)
        self.queue.sort(key=lambda jid: self.jobs[jid].submit_seq)
        self.completed = {
            jid: dict(data) for jid, data in state.completed.items()
        }
        if self.tracer is not None:
            self.tracer.instant(
                "cluster.failover", track="cluster", cat="cluster",
                epoch=self.epoch, requeued=len(self.queue),
                completed=len(self.completed),
            )
        if self.metrics is not None:
            self.metrics.counter("cluster.failovers").inc()

    # -- observability helpers -------------------------------------------------

    def _instant(self, name: str, **args) -> None:
        if self.tracer is not None:
            self.tracer.instant(name, track="cluster", cat="cluster",
                                **args)

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    def _gauges(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("cluster.capacity_gpus").set(self.capacity)
            self.metrics.gauge("cluster.busy_gpus").set(self._busy())
            self.metrics.gauge("cluster.queue_depth").set(len(self.queue))


class ClusterJournalState:
    """The scheduler state a decision journal replays to (pure data)."""

    def __init__(self):
        self.policy: "str | None" = None
        self.capacity = 0
        self.epoch = 0
        self.submitted: "dict[str, dict]" = {}
        self.submit_seq_of: "dict[str, int]" = {}
        self.queue: "list[str]" = []
        self.running: "dict[str, int]" = {}
        self.completed: "dict[str, dict]" = {}
        self.released: "set[str]" = set()
        self.preemptions = 0
        self.preemption_counts: "dict[str, int]" = {}
        self.capacity_changes = 0
        self.submit_seq = 0
        self.replayed = 0

    @classmethod
    def replay(
        cls, records: "typing.Iterable[dict]",
    ) -> "ClusterJournalState":
        state = cls()
        for record in records:
            state._apply(record["kind"], record["data"])
            state.replayed += 1
        return state

    def _apply(self, kind: str, data: dict) -> None:
        if kind == "open":
            self.policy = data["policy"]
            self.capacity = int(data["capacity"])
        elif kind == "epoch":
            self.epoch = max(self.epoch, int(data["epoch"]))
        elif kind == "submit":
            job_id = data["job"]["job_id"]
            seq = int(data.get("seq", len(self.submitted)))
            self.submitted[job_id] = dict(data["job"])
            self.submit_seq_of[job_id] = seq
            self.submit_seq = max(self.submit_seq, seq + 1)
            self.queue.append(job_id)
        elif kind == "admit":
            job_id = data["job_id"]
            if job_id in self.queue:
                self.queue.remove(job_id)
            self.running[job_id] = int(data["workers"])
        elif kind == "resize":
            self.running[data["job_id"]] = int(data["new"])
        elif kind == "preempt":
            job_id = data["job_id"]
            self.running.pop(job_id, None)
            self.preemptions += 1
            self.preemption_counts[job_id] = (
                self.preemption_counts.get(job_id, 0) + 1
            )
            if job_id not in self.queue:
                self.queue.append(job_id)
        elif kind == "capacity":
            self.capacity = int(data["gpus"])
            self.capacity_changes += 1
        elif kind == "release":
            job_id = data["job_id"]
            self.released.add(job_id)
            self.running.pop(job_id, None)
            if job_id in self.queue:
                self.queue.remove(job_id)
        elif kind == "complete":
            job_id = data["job_id"]
            self.running.pop(job_id, None)
            self.completed[job_id] = dict(data)
