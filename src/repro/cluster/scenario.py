"""Deterministic multi-tenant churn scenario (+ its SLO gate).

One scripted run drives the full scheduler life cycle — admit → grow →
spot-shrink → preempt → complete → re-admit — over either transport,
with every submission and poll travelling as real ``SUBMIT`` /
``OFFER`` / ``JOB_STATUS`` messages:

1. capacity ``3``: three jobs (priorities 2 / 1 / 0) are submitted in
   a burst and all admitted at their one-worker minimum;
2. capacity grows to ``6`` (spot capacity arrives): every job grows to
   its two-worker maximum, pinned to commit at iteration ``GROW_PIN``;
3. capacity collapses to ``2`` (spot reclaim): the lowest-priority job
   is preempted back to the queue — live preemption restarts from
   scratch — and the survivors shrink to one worker, pinned at
   iteration ``SHRINK_PIN``;
4. the survivors complete; the freed GPUs re-admit the preempted job
   at two workers, and it runs to completion untouched.

Because every resize is pinned to a coordination boundary of the job's
*logical* clock (``AdjustmentRequest.at_iteration``), each job sees the
identical worker-count trajectory on the in-memory transport and on
loopback TCP — which is what makes the per-job final digests
**bit-identical across transports**, the scenario's strongest check.

:class:`ScenarioReport` carries makespan / queueing-delay / goodput
and :meth:`ScenarioReport.assert_slo` turns them into a hard pass/fail
(the CI gate behind ``python -m repro.cli cluster scenario``).
"""

from __future__ import annotations

import time
import typing

from ..coordination.messages import MessageType
from ..observability import MetricRegistry, Tracer
from ..observability.fleet import (
    GoodputReport,
    SLOViolation,
    derive_report,
)
from ..net.transport import memory_link
from .runners import ElasticJobRunner
from .scheduler import ClusterScheduler, JobRequest

#: Scripted commit boundaries (multiples of the coordination interval).
GROW_PIN = 8
SHRINK_PIN = 16

#: The scripted capacity phases: start, spot arrival, spot reclaim.
CAPACITY_START = 3
CAPACITY_GROWN = 6
CAPACITY_RECLAIMED = 2


class ScenarioReport:
    """What one churn run measured, plus the SLO verdict machinery."""

    def __init__(
        self,
        transport: str,
        policy: str,
        makespan: float,
        queueing_delays: "dict[str, float]",
        digests: "dict[str, str]",
        completion_order: "list[str]",
        preemptions: int,
        resizes: int,
        goodput: GoodputReport,
        events: "list[dict]",
        metrics: dict,
    ):
        self.transport = transport
        self.policy = policy
        self.makespan = makespan
        self.queueing_delays = dict(queueing_delays)
        self.digests = dict(digests)
        self.completion_order = list(completion_order)
        self.preemptions = preemptions
        self.resizes = resizes
        self.goodput = goodput
        self.events = events
        self.metrics = metrics

    @property
    def max_queueing_delay(self) -> float:
        return max(self.queueing_delays.values(), default=0.0)

    def assert_slo(
        self,
        makespan_ceiling: float = 60.0,
        queueing_delay_ceiling: float = 10.0,
        goodput_floor: float = 0.05,
    ) -> "ScenarioReport":
        """Raise :class:`SLOViolation` unless the gates hold; else self."""
        problems = []
        if self.makespan > makespan_ceiling:
            problems.append(
                f"makespan {self.makespan:.2f}s above ceiling "
                f"{makespan_ceiling:.2f}s"
            )
        if self.max_queueing_delay > queueing_delay_ceiling:
            problems.append(
                f"max queueing delay {self.max_queueing_delay:.2f}s "
                f"above ceiling {queueing_delay_ceiling:.2f}s"
            )
        if self.goodput.goodput < goodput_floor:
            problems.append(
                f"goodput {self.goodput.goodput:.3f} below floor "
                f"{goodput_floor:.3f}"
            )
        if problems:
            raise SLOViolation("; ".join(problems))
        return self

    def format(self) -> str:
        lines = [
            f"[cluster scenario: {self.transport}]",
            f"policy            {self.policy}",
            f"makespan          {self.makespan:.2f} s",
            f"max queueing      {self.max_queueing_delay:.2f} s",
            f"goodput           {self.goodput.goodput:.3f}",
            f"preemptions       {self.preemptions}",
            f"resizes           {self.resizes}",
            f"completion order  {' '.join(self.completion_order)}",
        ]
        for job_id in sorted(self.digests):
            lines.append(f"digest {job_id:<10} {self.digests[job_id]}")
        return "\n".join(lines)


class ChurnScenario:
    """The scripted burst/churn run against a live scheduler."""

    def __init__(
        self,
        transport: str,
        iterations: int = 24,
        iteration_sleep: float = 0.05,
        seed: int = 7,
        policy: str = "e-priority",
        timeout: float = 120.0,
    ):
        if transport not in ("memory", "tcp"):
            raise ValueError(f"unknown transport {transport!r}")
        if iterations < SHRINK_PIN + 4:
            raise ValueError(
                f"iterations must reach past the shrink pin "
                f"({SHRINK_PIN + 4})"
            )
        self.transport = transport
        self.iterations = iterations
        self.iteration_sleep = iteration_sleep
        self.seed = seed
        self.policy = policy
        self.timeout = timeout
        self.tracer = Tracer(process=f"cluster-{transport}")
        self.metrics = MetricRegistry()
        self.scheduler: "ClusterScheduler | None" = None
        self.report: "ScenarioReport | None" = None
        self._deadline = 0.0

    # -- the three tenants -----------------------------------------------------

    def requests(self) -> "list[JobRequest]":
        """Priorities 2 / 1 / 0: ``jobC`` is the preemption victim."""
        return [
            JobRequest(
                job_id=name, iterations=self.iterations, priority=prio,
                min_res=1, req_res=1, max_res=2,
                seed=self.seed + index,
                iteration_sleep=self.iteration_sleep,
            )
            for index, (name, prio) in enumerate(
                [("jobA", 2), ("jobB", 1), ("jobC", 0)]
            )
        ]

    # -- driving ---------------------------------------------------------------

    def _check_deadline(self, what: str) -> None:
        if time.monotonic() >= self._deadline:
            raise TimeoutError(f"churn scenario stuck waiting for {what}")

    def _wait(self, predicate, what: str, pin_at=None) -> None:
        """Step the scheduler until ``predicate()`` holds."""
        while not predicate():
            self._check_deadline(what)
            self.scheduler.step(pin_at=pin_at)
            time.sleep(0.02)

    def _offer(self, client, job_id: str) -> dict:
        return client.request(MessageType.OFFER, {"job_id": job_id})

    def run(self) -> ScenarioReport:
        self._deadline = time.monotonic() + self.timeout
        factory = lambda request, _sched: ElasticJobRunner(  # noqa: E731
            request, transport=self.transport, tracer=self.tracer,
            metrics=self.metrics,
        )
        sched = ClusterScheduler(
            self.policy, CAPACITY_START, runner_factory=factory,
            tracer=self.tracer, metrics=self.metrics,
        )
        self.scheduler = sched
        server = None
        if self.transport == "tcp":
            from ..net.tcp import tcp_link

            server = sched.serve_tcp()
            client, _ = tcp_link(
                server.host, server.port, "scenario-client",
                ack_timeout=1.0, tracer=self.tracer,
                metrics=self.metrics,
            )
        else:
            client = memory_link(
                sched.core, "scenario-client", ack_timeout=1.0,
                tracer=self.tracer, metrics=self.metrics,
            )
        t_start = time.monotonic()
        try:
            return self._drive(sched, client, t_start)
        finally:
            client.close()
            if server is not None:
                server.close()
            sched.close()

    def _drive(self, sched, client, t_start) -> ScenarioReport:
        # Phase 1: burst-submit over the wire, admit everyone at min.
        for request in self.requests():
            reply = client.request(
                MessageType.SUBMIT, {"job": request.to_payload()}
            )
            if not reply.get("accepted"):
                raise RuntimeError(f"submission rejected: {reply}")
        summary = sched.step()
        if sorted(summary["admitted"]) != ["jobA", "jobB", "jobC"]:
            raise RuntimeError(
                f"expected a full admission burst, got {summary}"
            )
        running = lambda jid: sched.running.get(jid)  # noqa: E731
        self._wait(
            lambda: all(
                running(j) is not None
                and running(j).runner.progress() >= 2
                for j in ("jobA", "jobB", "jobC")
            ),
            "all jobs past iteration 2",
        )

        # Phase 2: spot capacity arrives; everyone grows, pinned.
        sched.set_capacity(CAPACITY_GROWN, reason="spot-arrival")
        self._wait(
            lambda: all(
                running(j) is not None and running(j).workers == 2
                for j in ("jobA", "jobB", "jobC")
            ),
            "grow to 2 workers accepted", pin_at=GROW_PIN,
        )
        self._wait(
            lambda: all(
                running(j) is not None
                and running(j).runner.committed() >= 1
                and running(j).runner.progress() >= GROW_PIN + 2
                for j in ("jobA", "jobB")
            ),
            "grow committed on the survivors",
        )

        # Phase 3: spot reclaim; jobC is preempted, survivors shrink.
        sched.set_capacity(CAPACITY_RECLAIMED, reason="spot-reclaim")
        self._wait(
            lambda: all(
                running(j) is not None and running(j).workers == 1
                for j in ("jobA", "jobB")
            ) and self._offer(client, "jobC").get("state") == "queued",
            "shrink accepted and jobC preempted", pin_at=SHRINK_PIN,
        )

        # Phase 4: survivors finish; jobC is re-admitted and finishes.
        self._wait(
            lambda: self._offer(client, "jobA").get("state") == "completed"
            and self._offer(client, "jobB").get("state") == "completed",
            "survivors completing",
        )
        self._wait(
            lambda: self._offer(client, "jobC").get("state") == "completed",
            "jobC re-running to completion",
        )
        makespan = time.monotonic() - t_start

        tables = client.request(MessageType.JOB_STATUS)
        if tables["queue"] or tables["running"]:
            raise RuntimeError(f"cluster not drained: {tables}")
        digests = {}
        queueing = {}
        for job_id, data in sched.completed.items():
            unique = sorted(set(data["digests"].values()))
            if len(unique) != 1:
                raise RuntimeError(
                    f"{job_id}: workers disagree on the final digest: "
                    f"{data['digests']}"
                )
            digests[job_id] = unique[0]
            queueing[job_id] = float(data["queueing_delay"])
        order = sorted(
            sched.completed, key=lambda j: sched.completed[j]["at"]
        )
        events = self.tracer.to_events()
        metrics = self.metrics.snapshot()
        goodput = derive_report(events, metrics)
        self.report = ScenarioReport(
            transport=self.transport, policy=self.policy,
            makespan=makespan, queueing_delays=queueing,
            digests=digests, completion_order=order,
            preemptions=sched.preemptions,
            resizes=int(
                self.metrics.counter("cluster.resizes").value
            ),
            goodput=goodput, events=events, metrics=metrics,
        )
        return self.report


def run_churn_scenario(
    transport: str,
    iterations: int = 24,
    iteration_sleep: float = 0.05,
    seed: int = 7,
    policy: str = "e-priority",
    timeout: float = 120.0,
    trace_path: "str | None" = None,
) -> ScenarioReport:
    """Run one deterministic churn scenario; optionally export its trace."""
    scenario = ChurnScenario(
        transport, iterations=iterations,
        iteration_sleep=iteration_sleep, seed=seed, policy=policy,
        timeout=timeout,
    )
    report = scenario.run()
    if trace_path is not None:
        from ..observability import write_trace_events

        write_trace_events(trace_path, report.events)
    return report
