"""Per-job data planes the cluster scheduler starts and resizes.

The scheduler (:mod:`repro.cluster.scheduler`) deals only in worker
*counts*; a runner turns those counts into a live elastic job — one
:class:`~repro.net.NetworkedApplicationMaster` plus its workers — and
names, starts, and retires the actual worker identities.  Every grow /
shrink travels as a ``RESIZE`` message over the job's own reliable
link, so a scheduler decision reaches the AM through exactly the wire
path an external operator would use (and is journaled by the AM with
``origin="scheduler"`` and its pinned commit boundary).

Two implementations of the runner protocol:

* :class:`ElasticJobRunner` — workers as in-process threads
  (:class:`~repro.net.agent.WorkerAgent`) over the in-memory transport
  or loopback TCP; what the churn scenario, tests, and CI use.
* :class:`MultiprocessJobRunner` — workers as real OS processes via
  :class:`~repro.net.job.MultiprocessElasticJob`; what a demo closest
  to a real deployment uses.
"""

from __future__ import annotations

import threading
import typing

from ..coordination.messages import MessageType
from ..net.agent import WorkerAgent
from ..net.master_service import JobSpec as NetJobSpec
from ..net.master_service import NetworkedApplicationMaster
from ..net.transport import (
    RemoteError,
    RequestTimeout,
    RetryableError,
    TransportClosed,
    memory_link,
)

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .scheduler import JobRequest


def _net_spec(request: "JobRequest", ring_enabled: bool) -> NetJobSpec:
    return NetJobSpec(
        seed=request.seed,
        iterations=request.iterations,
        coordination_interval=request.coordination_interval,
        iteration_sleep=request.iteration_sleep,
        ring_enabled=ring_enabled,
    )


class ElasticJobRunner:
    """One scheduled elastic job with thread workers (memory or TCP).

    Implements the scheduler's runner protocol: ``start(workers)``,
    ``resize(workers, at_iteration=None) -> bool``, ``progress()``,
    ``complete()``, ``digests()``, ``stop()``, ``close()``.  Worker ids
    are ``<job_id>-w<n>`` with ``n`` never reused, so a grow after a
    shrink introduces genuinely new members.
    """

    def __init__(
        self,
        request: "JobRequest",
        transport: str = "memory",
        tracer: "typing.Any | None" = None,
        metrics: "typing.Any | None" = None,
        host: str = "127.0.0.1",
        ring_enabled: bool = False,
        join_timeout: float = 30.0,
    ):
        if transport not in ("memory", "tcp"):
            raise ValueError(f"unknown transport {transport!r}")
        self.request = request
        self.transport = transport
        self.tracer = tracer
        self.metrics = metrics
        self.host = host
        self.spec = _net_spec(request, ring_enabled)
        self.join_timeout = join_timeout
        self.master: "NetworkedApplicationMaster | None" = None
        self.results: "dict[str, dict]" = {}
        self.errors: "dict[str, BaseException]" = {}
        self._threads: "dict[str, threading.Thread]" = {}
        self._links: "dict[str, typing.Any]" = {}
        self._workers: "list[str]" = []
        self._next_worker = 0
        self._driver = None
        self._server = None
        self._stopped = False
        self._closed = False
        self._lock = threading.Lock()

    # -- wiring ----------------------------------------------------------------

    def _make_link(self, node_id: str, ack_timeout: float = 0.5):
        if self.transport == "tcp":
            from ..net.tcp import tcp_link

            link, _transport = tcp_link(
                self._server.host, self._server.port, node_id,
                ack_timeout=ack_timeout, tracer=self.tracer,
                metrics=self.metrics, connect_attempts=10,
            )
        else:
            link = memory_link(
                self.master.core, node_id, ack_timeout=ack_timeout,
                tracer=self.tracer, metrics=self.metrics,
            )
        with self._lock:
            self._links[node_id] = link
        return link

    def _start_worker(self, worker_id: str) -> None:
        def run():
            link = self._make_link(worker_id)
            agent = WorkerAgent(
                worker_id, link, poll_interval=0.02,
                join_timeout=self.join_timeout, tracer=self.tracer,
                metrics=self.metrics,
            )
            try:
                self.results[worker_id] = agent.run()
            except BaseException as exc:
                # A preempted job's workers die from their closed links;
                # that is the mechanism, not a failure.
                if not self._stopped:
                    self.errors[worker_id] = exc
            finally:
                link.close()

        thread = threading.Thread(
            target=run, name=f"job-{worker_id}", daemon=True
        )
        self._threads[worker_id] = thread
        thread.start()

    def _new_workers(self, count: int) -> "list[str]":
        names = [
            f"{self.request.job_id}-w{self._next_worker + i}"
            for i in range(count)
        ]
        self._next_worker += count
        return names

    # -- the runner protocol ---------------------------------------------------

    def start(self, workers: int) -> None:
        """Bring up the AM and the initial worker group."""
        if self.master is not None:
            raise RuntimeError(f"{self.request.job_id}: already started")
        self._workers = self._new_workers(workers)
        self.master = NetworkedApplicationMaster(
            self.spec, self._workers, job_id=self.request.job_id,
            tracer=self.tracer, metrics=self.metrics,
        )
        if self.transport == "tcp":
            self._server = self.master.serve_tcp(host=self.host)
        for worker_id in self._workers:
            self._start_worker(worker_id)
        self._driver = self._make_link(
            f"{self.request.job_id}-driver", ack_timeout=1.0
        )

    def resize(
        self, workers: int, at_iteration: "int | None" = None,
        origin: str = "scheduler",
    ) -> bool:
        """Grow/shrink to ``workers`` via one ``RESIZE`` message.

        Returns False when the AM already has an adjustment in flight
        (or the request could not be delivered); the scheduler retries
        on its next pass.
        """
        current = len(self._workers)
        if workers == current:
            return True
        if workers < 1:
            raise ValueError("resize target must be >= 1")
        if workers > current:
            added = self._new_workers(workers - current)
            payload = {
                "kind": "scale_out", "add": added, "origin": origin,
                "at_iteration": at_iteration,
            }
        else:
            added = []
            payload = {
                "kind": "scale_in",
                "remove": self._workers[workers:], "origin": origin,
                "at_iteration": at_iteration,
            }
        try:
            reply = self._driver.request(MessageType.RESIZE, payload)
        except (RequestTimeout, TransportClosed, RetryableError,
                RemoteError):
            return False
        if not reply.get("accepted"):
            return False
        if added:
            self._workers = list(self._workers) + added
            for worker_id in added:
                self._start_worker(worker_id)
        else:
            self._workers = self._workers[:workers]
        return True

    def progress(self) -> int:
        """The job's iteration watermark (its logical clock)."""
        if self.master is None:
            return 0
        return int(self.master.status()["iteration"])

    def committed(self) -> int:
        """Adjustments committed so far (scenario phase barrier)."""
        if self.master is None:
            return 0
        return int(self.master.status()["adjustments_committed"])

    def complete(self) -> bool:
        return self.master is not None and self.master.complete

    def digests(self) -> "dict[str, str]":
        return {} if self.master is None else self.master.final_digests()

    def stop(self) -> None:
        """Hard preemption: tear the job down, progress is lost."""
        self._stopped = True
        with self._lock:
            links, self._links = dict(self._links), {}
        for link in links.values():
            link.close()
        if self.master is not None:
            self.master.close()
        if self._server is not None:
            self._server.close()
        for thread in self._threads.values():
            thread.join(timeout=5.0)

    def close(self) -> None:
        """Release everything after completion (or after ``stop``)."""
        if self._closed:
            return
        self._closed = True
        if not self._stopped:
            for thread in self._threads.values():
                thread.join(timeout=self.join_timeout)
            with self._lock:
                links, self._links = dict(self._links), {}
            for link in links.values():
                link.close()
            if self.master is not None:
                self.master.close()
            if self._server is not None:
                self._server.close()


class MultiprocessJobRunner:
    """The runner protocol over real OS-process workers.

    Wraps :class:`~repro.net.job.MultiprocessElasticJob`: the AM lives
    in this process, each worker is ``python -m repro.cli join`` over
    loopback TCP, and resizes travel as ``RESIZE`` on the job's
    control link.
    """

    def __init__(
        self,
        request: "JobRequest",
        tracer: "typing.Any | None" = None,
        worker_trace_dir: "str | None" = None,
    ):
        self.request = request
        self.tracer = tracer
        self.worker_trace_dir = worker_trace_dir
        self.job = None
        self._workers: "list[str]" = []
        self._next_worker = 0
        self._closed = False

    def _new_workers(self, count: int) -> "list[str]":
        names = [
            f"{self.request.job_id}-w{self._next_worker + i}"
            for i in range(count)
        ]
        self._next_worker += count
        return names

    def start(self, workers: int) -> None:
        from ..net.job import MultiprocessElasticJob

        if self.job is not None:
            raise RuntimeError(f"{self.request.job_id}: already started")
        self._workers = self._new_workers(workers)
        self.job = MultiprocessElasticJob(
            _net_spec(self.request, ring_enabled=False), self._workers,
            tracer=self.tracer, worker_trace_dir=self.worker_trace_dir,
        ).start()

    def resize(
        self, workers: int, at_iteration: "int | None" = None,
        origin: str = "scheduler",
    ) -> bool:
        current = len(self._workers)
        if workers == current:
            return True
        if workers < 1:
            raise ValueError("resize target must be >= 1")
        if workers > current:
            added = self._new_workers(workers - current)
            payload = {
                "kind": "scale_out", "add": added, "origin": origin,
                "at_iteration": at_iteration,
            }
        else:
            added = []
            payload = {
                "kind": "scale_in",
                "remove": self._workers[workers:], "origin": origin,
                "at_iteration": at_iteration,
            }
        try:
            reply = self.job.control.request(MessageType.RESIZE, payload)
        except (RequestTimeout, TransportClosed, RetryableError,
                RemoteError):
            return False
        if not reply.get("accepted"):
            return False
        if added:
            self._workers = list(self._workers) + added
            for worker_id in added:
                self.job.spawn(worker_id)
        else:
            self._workers = self._workers[:workers]
        return True

    def progress(self) -> int:
        if self.job is None:
            return 0
        return int(self.job.master.status()["iteration"])

    def committed(self) -> int:
        if self.job is None:
            return 0
        return int(self.job.master.status()["adjustments_committed"])

    def complete(self) -> bool:
        return self.job is not None and self.job.master.complete

    def digests(self) -> "dict[str, str]":
        return {} if self.job is None else self.job.master.final_digests()

    def stop(self) -> None:
        if self.job is not None and not self._closed:
            self._closed = True
            self.job.shutdown()

    def close(self) -> None:
        if self.job is not None and not self._closed:
            self._closed = True
            self.job.shutdown()
