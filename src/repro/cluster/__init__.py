"""Live multi-tenant cluster scheduling (ROADMAP: beyond one job).

The paper evaluates its admission rule and marginal-gain allocation
(§VI-C) in an offline trace simulator; this package runs the *same*
policies — through the same :class:`~repro.scheduling.PolicyAdapter`
seam — against real networked elastic jobs: a
:class:`ClusterScheduler` service owns a GPU inventory, admits queued
submissions, and continuously resizes the per-job
:class:`~repro.net.NetworkedApplicationMaster`s over the existing
in-memory/TCP transports (SUBMIT / OFFER / RESIZE / RELEASE /
JOB_STATUS on the §V-D reliable links).
"""

from .runners import ElasticJobRunner, MultiprocessJobRunner
from .scenario import ChurnScenario, ScenarioReport, run_churn_scenario
from .scheduler import (
    CLUSTER_RECORD_KINDS,
    POLICIES,
    ClusterJournalState,
    ClusterScheduler,
    JobRequest,
)

__all__ = [
    "CLUSTER_RECORD_KINDS",
    "ChurnScenario",
    "ClusterJournalState",
    "ClusterScheduler",
    "ElasticJobRunner",
    "JobRequest",
    "MultiprocessJobRunner",
    "POLICIES",
    "ScenarioReport",
    "run_churn_scenario",
]
