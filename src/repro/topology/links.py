"""Link levels, transports and the bandwidth model (paper §IV-2, Fig. 8, 9).

The paper distinguishes four *link levels* between two GPUs:

* **L1** — the path traverses only PCIe switches;
* **L2** — the path traverses a PCIe host bridge;
* **L3** — the path traverses a socket-level link (e.g. QPI);
* **L4** — the path traverses the network.

and three *transports*:

* **P2P** — GPU peer-to-peer DMA, only possible on L1;
* **SHM** — staging through CPU shared memory, used on L2 and L3;
* **NET** — the 56 Gbps InfiniBand network (RDMA), the only option on L4.

The paper's Figure 8 shows P2P > SHM > NET at every message size.  We model
effective bandwidth with the standard latency/bandwidth (alpha-beta) form

    effective(size) = peak * size / (size + peak * latency)

which saturates to ``peak`` for large messages and is latency-bound for
small ones — the same shape as Figure 8.
"""

from __future__ import annotations

import dataclasses
import enum


class LinkLevel(enum.IntEnum):
    """Topological distance class between two GPUs (paper Fig. 9)."""

    L1 = 1  # same PCIe switch
    L2 = 2  # same socket, traverses the PCIe host bridge
    L3 = 3  # same node, traverses QPI
    L4 = 4  # different nodes, traverses the network


class Transport(enum.Enum):
    """Physical mechanism used to move bytes between two GPUs."""

    P2P = "p2p"
    SHM = "shm"
    NET = "net"


#: The best (highest-bandwidth) transport available at each link level.
#: P2P is only enabled on L1; L2 and L3 must stage through shared memory;
#: L4 can only use the network (paper §IV-2).
BEST_TRANSPORT = {
    LinkLevel.L1: Transport.P2P,
    LinkLevel.L2: Transport.SHM,
    LinkLevel.L3: Transport.SHM,
    LinkLevel.L4: Transport.NET,
}


@dataclasses.dataclass(frozen=True)
class LinkSpec:
    """Peak bandwidth and base latency of one transport."""

    peak_bandwidth: float  # bytes / second
    latency: float  # seconds per message

    def effective_bandwidth(self, size: float) -> float:
        """Effective bandwidth (bytes/s) for a message of ``size`` bytes."""
        if size <= 0:
            return 0.0
        return self.peak_bandwidth * size / (size + self.peak_bandwidth * self.latency)

    def transfer_time(self, size: float) -> float:
        """Seconds needed to move ``size`` bytes over this link."""
        if size < 0:
            raise ValueError(f"negative transfer size {size}")
        return self.latency + size / self.peak_bandwidth


@dataclasses.dataclass(frozen=True)
class BandwidthProfile:
    """The full transport bandwidth table of a cluster.

    Defaults are calibrated to the paper's testbed: PCIe 3.0 x16 peer-to-peer
    through a switch (~12.5 GB/s raw, ~10 GB/s effective), host-staged shared
    memory copies (~6 GB/s), and 56 Gbps FDR InfiniBand (~7 GB/s raw, ~5 GB/s
    effective with RDMA).  The ordering P2P > SHM > NET matches Figure 8.
    """

    p2p: LinkSpec = LinkSpec(peak_bandwidth=10.0e9, latency=10e-6)
    shm: LinkSpec = LinkSpec(peak_bandwidth=6.0e9, latency=25e-6)
    net: LinkSpec = LinkSpec(peak_bandwidth=5.0e9, latency=65e-6)

    @classmethod
    def measured_loopback(cls) -> "BandwidthProfile":
        """A profile calibrated to this repo's own transports on one host.

        Numbers come from ``benchmarks/results/data_plane_sweep.txt``
        (64 MB binary frames for peak bandwidth, 1 KB frames for
        latency): in-process links pass references and are bounded by
        host memcpy (~1.5 GB/s here), the ``shm://`` ring moves one copy
        through shared memory (~1.35 GB/s, ~140 us per frame), and
        loopback TCP pays two socket copies (~1.05 GB/s, ~360 us).  The
        paper's P2P > SHM > NET ordering holds for the software
        transports too.
        """
        return cls(
            p2p=LinkSpec(peak_bandwidth=1.5e9, latency=5e-6),
            shm=LinkSpec(peak_bandwidth=1.35e9, latency=140e-6),
            net=LinkSpec(peak_bandwidth=1.05e9, latency=360e-6),
        )

    def spec(self, transport: Transport) -> LinkSpec:
        """The :class:`LinkSpec` of ``transport``."""
        return {
            Transport.P2P: self.p2p,
            Transport.SHM: self.shm,
            Transport.NET: self.net,
        }[transport]

    def for_level(self, level: LinkLevel) -> LinkSpec:
        """The spec of the best transport available at ``level``."""
        return self.spec(BEST_TRANSPORT[level])

    def transfer_time(self, level: LinkLevel, size: float) -> float:
        """Seconds to move ``size`` bytes between GPUs at ``level``."""
        return self.for_level(level).transfer_time(size)
