"""Hardware topology model: devices, link levels, bandwidths, builders.

Implements the device model of paper §IV: the four link levels L1-L4, the
three transports (P2P/SHM/NET) with their Fig. 8 bandwidth ordering, the
topology tree used for nearest-neighbor selection, and path-resource sets
used for contention detection during concurrent replication.
"""

from .builder import (
    PAPER_SERVER,
    ServerSpec,
    build_cluster,
    build_node,
    cluster_for_gpu_count,
    gpu_by_name,
    gpus_of,
)
from .links import BEST_TRANSPORT, BandwidthProfile, LinkLevel, LinkSpec, Transport
from .tree import (
    DeviceKind,
    TopologyNode,
    link_level,
    lowest_common_ancestor,
    nearest_neighbor,
    path_resources,
)

__all__ = [
    "BEST_TRANSPORT",
    "BandwidthProfile",
    "DeviceKind",
    "LinkLevel",
    "LinkSpec",
    "PAPER_SERVER",
    "ServerSpec",
    "TopologyNode",
    "Transport",
    "build_cluster",
    "build_node",
    "cluster_for_gpu_count",
    "gpu_by_name",
    "gpus_of",
    "link_level",
    "lowest_common_ancestor",
    "nearest_neighbor",
    "path_resources",
]
