"""The device topology tree (paper §IV, Fig. 9).

A cluster is modelled as a tree::

    CLUSTER -> NODE -> SOCKET -> PCIE_SWITCH -> GPU

The *link level* between two GPUs is determined by the kind of their lowest
common ancestor:

* same PCIe switch            -> L1  (P2P)
* same socket, other switch   -> L2  (traverses the host bridge; SHM)
* same node, other socket     -> L3  (traverses QPI; SHM)
* different node              -> L4  (network; NET/RDMA)

Besides link-level queries, the tree answers two questions the replication
planner needs: which *physical shared resources* a GPU-to-GPU path occupies
(for contention detection, §IV-3) and which existing GPU is *nearest* to a
new one (neighbor selection).
"""

from __future__ import annotations

import enum
import typing

from .links import LinkLevel


class DeviceKind(enum.Enum):
    """Kinds of vertices in the topology tree."""

    CLUSTER = "cluster"
    NODE = "node"
    SOCKET = "socket"
    PCIE_SWITCH = "pcie_switch"
    GPU = "gpu"


#: Link level implied by each lowest-common-ancestor kind.
_LCA_LEVEL = {
    DeviceKind.PCIE_SWITCH: LinkLevel.L1,
    DeviceKind.SOCKET: LinkLevel.L2,
    DeviceKind.NODE: LinkLevel.L3,
    DeviceKind.CLUSTER: LinkLevel.L4,
}


class TopologyNode:
    """One vertex of the topology tree."""

    def __init__(
        self,
        kind: DeviceKind,
        name: str,
        parent: "TopologyNode | None" = None,
    ):
        self.kind = kind
        self.name = name
        self.parent = parent
        self.children: list[TopologyNode] = []
        if parent is not None:
            parent.children.append(self)

    @property
    def depth(self) -> int:
        """Number of edges to the root."""
        node, hops = self, 0
        while node.parent is not None:
            node, hops = node.parent, hops + 1
        return hops

    def ancestors(self) -> "list[TopologyNode]":
        """Path from this node up to (and including) the root."""
        path, node = [], self
        while node is not None:
            path.append(node)
            node = node.parent
        return path

    def iter_gpus(self) -> "typing.Iterator[TopologyNode]":
        """Yield every GPU vertex in this subtree, in tree order."""
        if self.kind is DeviceKind.GPU:
            yield self
            return
        for child in self.children:
            yield from child.iter_gpus()

    def find(self, name: str) -> "TopologyNode":
        """Find the unique descendant (or self) named ``name``."""
        if self.name == name:
            return self
        for child in self.children:
            try:
                return child.find(name)
            except KeyError:
                continue
        raise KeyError(f"no topology node named {name!r} under {self.name!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.kind.value} {self.name}>"


def lowest_common_ancestor(a: TopologyNode, b: TopologyNode) -> TopologyNode:
    """The deepest vertex that is an ancestor of both ``a`` and ``b``."""
    ancestors_a = a.ancestors()
    ids_a = {id(node): node for node in ancestors_a}
    for node in b.ancestors():
        if id(node) in ids_a:
            return node
    raise ValueError(
        f"{a.name!r} and {b.name!r} are not in the same topology tree"
    )


def link_level(a: TopologyNode, b: TopologyNode) -> LinkLevel:
    """Link level between two distinct GPUs (paper Fig. 9 classification)."""
    if a.kind is not DeviceKind.GPU or b.kind is not DeviceKind.GPU:
        raise ValueError("link_level is defined between GPU vertices")
    if a is b:
        raise ValueError(f"link_level of {a.name!r} with itself is undefined")
    lca = lowest_common_ancestor(a, b)
    return _LCA_LEVEL[lca.kind]


def path_resources(a: TopologyNode, b: TopologyNode) -> frozenset:
    """Names of the shared physical links a transfer ``a`` -> ``b`` occupies.

    Used for contention detection: two concurrent replications whose
    resource sets intersect must run in turn (paper §IV-3, "typically when
    replications traverse L3").  The sets are:

    * L1 — the shared PCIe switch;
    * L2 — both switch uplinks and the socket's host bridge;
    * L3 — the above plus the node's QPI link;
    * L4 — each endpoint's socket-to-NIC path and node NIC.
    """
    level = link_level(a, b)
    by_kind_a = {node.kind: node for node in a.ancestors()}
    by_kind_b = {node.kind: node for node in b.ancestors()}
    resources: set = set()
    if level is LinkLevel.L1:
        resources.add(f"switch:{by_kind_a[DeviceKind.PCIE_SWITCH].name}")
    elif level is LinkLevel.L2:
        resources.add(f"switch:{by_kind_a[DeviceKind.PCIE_SWITCH].name}")
        resources.add(f"switch:{by_kind_b[DeviceKind.PCIE_SWITCH].name}")
        resources.add(f"hostbridge:{by_kind_a[DeviceKind.SOCKET].name}")
    elif level is LinkLevel.L3:
        resources.add(f"switch:{by_kind_a[DeviceKind.PCIE_SWITCH].name}")
        resources.add(f"switch:{by_kind_b[DeviceKind.PCIE_SWITCH].name}")
        resources.add(f"hostbridge:{by_kind_a[DeviceKind.SOCKET].name}")
        resources.add(f"hostbridge:{by_kind_b[DeviceKind.SOCKET].name}")
        resources.add(f"qpi:{by_kind_a[DeviceKind.NODE].name}")
    else:  # L4
        resources.add(f"nic:{by_kind_a[DeviceKind.NODE].name}")
        resources.add(f"nic:{by_kind_b[DeviceKind.NODE].name}")
    return frozenset(resources)


def nearest_neighbor(
    target: TopologyNode, candidates: typing.Sequence[TopologyNode]
) -> TopologyNode:
    """The candidate GPU closest to ``target`` (lowest link level).

    Ties are broken by name so the choice is deterministic — the planner
    relies on this to build reproducible replication plans.
    """
    if not candidates:
        raise ValueError("no candidate GPUs to choose a neighbor from")
    return min(
        candidates,
        key=lambda gpu: (int(link_level(target, gpu)), gpu.name),
    )
