"""Builders for standard cluster topologies.

The paper's testbed (§VI-A) is a production cluster of up to 8 servers, each
with 2 × 20-core Intel Silver 4114 CPUs and 8 GeForce 1080Ti GPUs, connected
by 56 Gbps InfiniBand and sharing a Lustre filesystem.  Each socket hosts two
PCIe switches with two GPUs each, the common balanced layout for an 8-GPU
PCIe box (and the one that makes the paper's Fig. 9 example expressible:
same-switch pairs at L1, cross-switch pairs at L2, cross-socket at L3).
"""

from __future__ import annotations

import dataclasses
import typing

from .tree import DeviceKind, TopologyNode


@dataclasses.dataclass(frozen=True)
class ServerSpec:
    """Shape of one server in the cluster."""

    sockets: int = 2
    switches_per_socket: int = 2
    gpus_per_switch: int = 2

    @property
    def gpus_per_node(self) -> int:
        """Total GPUs in one server of this shape."""
        return self.sockets * self.switches_per_socket * self.gpus_per_switch


#: The paper's 8-GPU server: 2 sockets x 2 switches x 2 GPUs.
PAPER_SERVER = ServerSpec()


def build_node(
    name: str,
    spec: ServerSpec = PAPER_SERVER,
    parent: "TopologyNode | None" = None,
) -> TopologyNode:
    """Build one server's topology subtree.

    GPU names are ``<node>/gpu<k>`` with ``k`` counted across the whole
    node, so ``node0/gpu0`` and ``node0/gpu1`` share a switch.
    """
    node = TopologyNode(DeviceKind.NODE, name, parent=parent)
    gpu_index = 0
    for socket_i in range(spec.sockets):
        socket = TopologyNode(
            DeviceKind.SOCKET, f"{name}/socket{socket_i}", parent=node
        )
        for switch_i in range(spec.switches_per_socket):
            switch = TopologyNode(
                DeviceKind.PCIE_SWITCH,
                f"{name}/socket{socket_i}/switch{switch_i}",
                parent=socket,
            )
            for _ in range(spec.gpus_per_switch):
                TopologyNode(
                    DeviceKind.GPU, f"{name}/gpu{gpu_index}", parent=switch
                )
                gpu_index += 1
    return node


def build_cluster(
    num_nodes: int,
    spec: ServerSpec = PAPER_SERVER,
    name: str = "cluster",
) -> TopologyNode:
    """Build a cluster of ``num_nodes`` identical servers."""
    if num_nodes < 1:
        raise ValueError(f"a cluster needs at least one node, got {num_nodes}")
    cluster = TopologyNode(DeviceKind.CLUSTER, name)
    for node_i in range(num_nodes):
        build_node(f"node{node_i}", spec=spec, parent=cluster)
    return cluster


def gpus_of(cluster: TopologyNode) -> "list[TopologyNode]":
    """All GPU vertices of ``cluster`` in deterministic tree order."""
    return list(cluster.iter_gpus())


def gpu_by_name(cluster: TopologyNode, name: str) -> TopologyNode:
    """Look up a GPU vertex by its full name (e.g. ``node0/gpu3``)."""
    found = cluster.find(name)
    if found.kind is not DeviceKind.GPU:
        raise KeyError(f"{name!r} names a {found.kind.value}, not a GPU")
    return found


def cluster_for_gpu_count(
    num_gpus: int, spec: ServerSpec = PAPER_SERVER
) -> typing.Tuple[TopologyNode, "list[TopologyNode]"]:
    """Smallest cluster of ``spec`` servers holding ``num_gpus`` GPUs.

    Returns the cluster root and the first ``num_gpus`` GPUs in tree order
    (the natural packing a scheduler would use).
    """
    if num_gpus < 1:
        raise ValueError(f"need at least one GPU, got {num_gpus}")
    per_node = spec.gpus_per_node
    num_nodes = -(-num_gpus // per_node)  # ceil division
    cluster = build_cluster(num_nodes, spec=spec)
    return cluster, gpus_of(cluster)[:num_gpus]
