"""Terminal rendering helpers for experiment output.

Pure-text charts and tables used by the examples, the CLI and the
benchmark result files — no plotting dependency, diff-friendly output.
"""

from __future__ import annotations

import typing

Number = typing.Union[int, float]


def render_table(
    headers: typing.Sequence[str],
    rows: typing.Sequence[typing.Sequence[object]],
) -> "list[str]":
    """Fixed-width table with a header rule; column widths auto-fit."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {columns}"
            )
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [
        max(len(line[i]) for line in cells) for i in range(columns)
    ]
    def fmt(line):
        return "  ".join(c.ljust(w) for c, w in zip(line, widths)).rstrip()

    out = [fmt(cells[0]), "-" * (sum(widths) + 2 * (columns - 1))]
    out.extend(fmt(line) for line in cells[1:])
    return out


def bar_chart(
    items: typing.Sequence[typing.Tuple[str, Number]],
    width: int = 40,
    unit: str = "",
) -> "list[str]":
    """Horizontal bars scaled to the largest value."""
    if width < 1:
        raise ValueError("width must be >= 1")
    if not items:
        return []
    peak = max(value for _label, value in items)
    label_width = max(len(label) for label, _v in items)
    lines = []
    for label, value in items:
        if value < 0:
            raise ValueError(f"bar values must be >= 0, got {value}")
        bar = "#" * (0 if peak == 0 else max(
            1 if value > 0 else 0, round(value / peak * width)
        ))
        lines.append(
            f"{label.ljust(label_width)}  {bar} {value:g}{unit}"
        )
    return lines


def sparkline(values: typing.Sequence[Number]) -> str:
    """One-line trend of a series (8 levels)."""
    if not values:
        return ""
    glyphs = " .:-=+*#"
    low, high = min(values), max(values)
    if high == low:
        return glyphs[4] * len(values)
    span = high - low
    return "".join(
        glyphs[min(7, int((v - low) / span * 7.999))] for v in values
    )


def series_chart(
    points: typing.Sequence[typing.Tuple[Number, Number]],
    height: int = 8,
    width: int = 60,
) -> "list[str]":
    """A step-plot of (x, y) points on a character grid.

    The x-range is resampled to ``width`` columns (last-value-carried-
    forward); the y-range maps to ``height`` rows with axis labels.
    """
    if height < 2 or width < 2:
        raise ValueError("height and width must be >= 2")
    if not points:
        return []
    xs = [x for x, _y in points]
    ys = [y for _x, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    y_span = (y_high - y_low) or 1.0
    x_span = (x_high - x_low) or 1.0
    ordered = sorted(points)
    resampled = []
    index = 0
    for column in range(width):
        x = x_low + column / (width - 1) * x_span
        while index + 1 < len(ordered) and ordered[index + 1][0] <= x:
            index += 1
        resampled.append(ordered[index][1])
    grid = [[" "] * width for _ in range(height)]
    for column, y in enumerate(resampled):
        row = int((y - y_low) / y_span * (height - 1))
        grid[height - 1 - row][column] = "*"
    label_width = max(len(f"{y_high:g}"), len(f"{y_low:g}"))
    lines = []
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_high:g}".rjust(label_width)
        elif row_index == height - 1:
            label = f"{y_low:g}".rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(
        " " * label_width + " +" + "-" * width
    )
    lines.append(
        " " * label_width + f"  {x_low:g}".ljust(width // 2)
        + f"{x_high:g}".rjust(width // 2)
    )
    return lines
