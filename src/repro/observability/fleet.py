"""Fleet-level observability: clock alignment, trace merging, goodput.

Per-process tracers and registries (PR 2/PR 6) only ever see one
process's timeline.  This module is the fleet half:

* :class:`ClockSync` — NTP-style midpoint offset estimation from
  matched request/reply timestamp quadruples, fed by the wire-level
  trace context every protocol reply now carries;
* :class:`TraceMerger` — merges N per-process Chrome traces into one
  fleet trace with named process rows, applying per-process clock
  offsets so send/recv pairs line up, always emitting a
  ``validate_events``-clean result;
* :class:`GoodputReport` / :func:`derive_report` — goodput/MTTR and
  overhead accounting (moved here from ``repro.net.soak`` and
  generalized with per-category overhead and upload series);
* :class:`FleetCollector` — the AM-side fold of live ``TELEMETRY``
  deltas into per-worker, per-job and fleet-rollup views, including a
  Prometheus-style text exposition.

Nothing here imports ``repro.net`` — the net layer imports *us* — so
the collector can also be driven offline from exported trace files.
"""

from __future__ import annotations

import threading
import typing

from .metrics import MetricRegistry
from .tracing import load_trace_events, track_names

#: trace instants counted by :func:`derive_report` (all emitted by the
#: failover paths; see docs/OBSERVABILITY.md).
_INSTANT_COUNTS = {
    "am.failover": "failovers",
    "worker.condemned": "condemned",
    "am.eviction_minted": "evictions_minted",
    "worker.enrolled": "enrollments",
    "worker.stale_repair": "stale_repairs",
    "net.transfer_restart": "transfer_restarts",
    "worker.evicted": "workers_evicted",
    "am.plan_aborted": "plans_aborted",
}

#: duration-span name prefixes attributed to each overhead category by
#: :func:`derive_report`.  Replication is state movement, rescheduling
#: is adjustment-protocol time, degradation is repair/reconnect time.
_OVERHEAD_PREFIXES = {
    "replication": ("net.state_upload", "net.state_fetch", "replicate."),
    "rescheduling": ("adjust.", "am.plan", "sync.barrier"),
    "degradation": ("net.reconnect", "net.allreduce.degraded",
                    "worker.stale_repair", "net.transfer_restart"),
}


class SLOViolation(AssertionError):
    """A goodput/MTTR service level was missed."""


class ClockSync:
    """Streaming NTP-style offset estimate between two process clocks.

    Each sample is one request/reply quadruple ``(t0, t1, t2, t3)``:
    client send, server receive, server reply-send, client receive —
    t0/t3 on the client clock, t1/t2 on the server clock.  The midpoint
    estimate ``offset = ((t1 - t0) + (t2 - t3)) / 2`` approximates
    ``server_clock - client_clock`` with error bounded by rtt/2, so the
    estimator keeps the sample with the *smallest* rtt over a sliding
    window — the classic minimum-delay filter.
    """

    def __init__(self, window: int = 64):
        self.window = int(window)
        self._lock = threading.Lock()
        self._samples: "list[tuple[float, float]]" = []  # (rtt, offset)
        self.count = 0

    def add(self, t0: float, t1: float, t2: float, t3: float) -> "tuple[float, float]":
        """Fold one quadruple; returns ``(offset, rtt)`` for this sample."""
        offset = ((t1 - t0) + (t2 - t3)) / 2.0
        rtt = max(0.0, (t3 - t0) - (t2 - t1))
        with self._lock:
            self.count += 1
            self._samples.append((rtt, offset))
            if len(self._samples) > self.window:
                self._samples.pop(0)
        return offset, rtt

    @property
    def offset(self) -> "float | None":
        """Best current estimate of ``server_clock - client_clock``."""
        with self._lock:
            if not self._samples:
                return None
            return min(self._samples)[1]

    @property
    def rtt(self) -> "float | None":
        """Round-trip time of the best (minimum-delay) sample."""
        with self._lock:
            if not self._samples:
                return None
            return min(self._samples)[0]


def _clock_offset_from_events(
    events: "typing.Sequence[dict]",
) -> "float | None":
    """The min-rtt ``net.clock_sample`` offset recorded in a trace."""
    best: "tuple[float, float] | None" = None
    for event in events:
        if event.get("ph") != "i" or event.get("name") != "net.clock_sample":
            continue
        args = event.get("args") or {}
        offset = args.get("offset")
        if not isinstance(offset, (int, float)):
            continue
        rtt = args.get("rtt")
        rtt = float(rtt) if isinstance(rtt, (int, float)) else float("inf")
        if best is None or rtt < best[0]:
            best = (rtt, float(offset))
    return best[1] if best is not None else None


def _process_name(events: "typing.Sequence[dict]") -> "str | None":
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "process_name":
            name = (event.get("args") or {}).get("name")
            if name:
                return str(name)
    return None


class TraceMerger:
    """Merge per-process Chrome traces into one aligned fleet trace.

    Each :meth:`add` contributes one process's events.  The merged
    output gives every process its own ``pid`` row (named via
    ``process_name`` metadata) and every logical track its own ``tid``;
    per-process clock offsets — explicit, or recovered from the
    process's own ``net.clock_sample`` instants — shift timestamps onto
    the reference process's clock so request/reply pairs line up.

    The merge is *deterministic regardless of add order* (processes are
    sorted by name, tracks by name) and always yields a
    ``validate_events``-clean trace: malformed events are dropped, and
    an empty merge still emits one synthetic ``fleet.merge`` instant.
    """

    def __init__(self, reference: str = "am"):
        self.reference = reference
        self._processes: "dict[str, dict]" = {}

    def add(
        self,
        events: "typing.Sequence[dict] | str",
        process: "str | None" = None,
        offset: "float | None" = None,
    ) -> str:
        """Contribute one process's events (a list or a trace-file path).

        ``offset`` is seconds to *add* to this process's timestamps to
        land on the reference clock; when omitted it is recovered from
        the process's ``net.clock_sample`` instants (0.0 for the
        reference process or when no samples exist).  Re-adding the
        same process name replaces its events (last add wins), which is
        what makes re-shipped full snapshots idempotent.
        """
        if isinstance(events, str):
            events = load_trace_events(events)
        events = list(events)
        name = process or _process_name(events) or f"proc{len(self._processes)}"
        if offset is None:
            if name == self.reference:
                offset = 0.0
            else:
                offset = _clock_offset_from_events(events) or 0.0
        self._processes[name] = {"events": events, "offset": float(offset)}
        return name

    def offsets(self) -> "dict[str, float]":
        """Per-process offsets (seconds) that :meth:`merge` will apply."""
        return {
            name: entry["offset"]
            for name, entry in sorted(self._processes.items())
        }

    @staticmethod
    def _usable(event: dict) -> bool:
        if not isinstance(event, dict) or not event.get("name"):
            return False
        phase = event.get("ph")
        if phase not in ("X", "i", "C"):
            return False
        if not isinstance(event.get("ts"), (int, float)):
            return False
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                return False
        return True

    def merge(self) -> "list[dict]":
        """One fleet trace: metadata rows first, then aligned events."""
        metas: "list[dict]" = []
        data: "list[dict]" = []
        for pid, (name, entry) in enumerate(
            sorted(self._processes.items()), start=1
        ):
            events = entry["events"]
            offset_us = entry["offset"] * 1e6
            local_tracks = track_names(events)
            # Deterministic tid assignment: every track name this
            # process references, sorted.  Shipped records carry their
            # track name inline; file events resolve via metadata.
            referenced: "set[str]" = set()
            usable = []
            for event in events:
                if not self._usable(event):
                    continue
                track = event.get("track")
                if track is None:
                    key = (event.get("pid", 1), event.get("tid", 0))
                    track = local_tracks.get(key, f"tid{key[1]}")
                referenced.add(str(track))
                usable.append((str(track), event))
            tids = {t: i for i, t in enumerate(sorted(referenced), start=1)}
            metas.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": name},
            })
            for track, tid in sorted(tids.items(), key=lambda kv: kv[1]):
                metas.append({
                    "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                    "args": {"name": track},
                })
            for track, event in usable:
                record = {
                    k: v for k, v in event.items()
                    if k not in ("idx", "track", "pid", "tid", "ts")
                }
                record["pid"] = pid
                record["tid"] = tids[track]
                record["ts"] = float(event["ts"]) + offset_us
                data.append(record)
        data.sort(key=lambda e: (e["ts"], e["pid"], e["tid"],
                                 str(e.get("name"))))
        if not data:
            data = [{
                "name": "fleet.merge", "cat": "fleet", "ph": "i", "s": "t",
                "ts": 0.0, "pid": 1, "tid": 0,
                "args": {"processes": len(self._processes)},
            }]
        return metas + data


class GoodputReport:
    """What a run measured, plus the SLO verdict machinery."""

    def __init__(self, **fields):
        self.job: "str | None" = fields.pop("job", None)
        self.goodput: float = fields.pop("goodput", 0.0)
        self.busy_seconds: float = fields.pop("busy_seconds", 0.0)
        self.wall_seconds: float = fields.pop("wall_seconds", 0.0)
        self.iterations: int = fields.pop("iterations", 0)
        self.workers: int = fields.pop("workers", 0)
        self.recoveries: int = fields.pop("recoveries", 0)
        self.mean_mttr: "float | None" = fields.pop("mean_mttr", None)
        self.max_mttr: "float | None" = fields.pop("max_mttr", None)
        self.mean_detection: "float | None" = fields.pop(
            "mean_detection", None
        )
        self.counts: "dict[str, int]" = fields.pop("counts", {})
        #: seconds of overhead per category (see _OVERHEAD_PREFIXES).
        self.overhead: "dict[str, float]" = fields.pop("overhead", {})
        #: (start_s, duration_s) of every checkpoint/state upload.
        self.upload_series: "list[tuple[float, float]]" = fields.pop(
            "upload_series", []
        )
        self.extra = fields

    def assert_slo(
        self, goodput_floor: float = 0.3, mttr_ceiling: float = 10.0
    ) -> "GoodputReport":
        """Raise :class:`SLOViolation` unless the floors hold; else self."""
        problems = []
        if self.goodput < goodput_floor:
            problems.append(
                f"goodput {self.goodput:.3f} below floor {goodput_floor:.3f}"
            )
        if self.max_mttr is not None and self.max_mttr > mttr_ceiling:
            problems.append(
                f"max MTTR {self.max_mttr:.2f}s above ceiling "
                f"{mttr_ceiling:.2f}s"
            )
        if problems:
            raise SLOViolation("; ".join(problems))
        return self

    def rows(self) -> "list[tuple[str, str]]":
        def fmt(value, unit=""):
            if value is None:
                return "-"
            if isinstance(value, float):
                return f"{value:.3f}{unit}"
            return f"{value}{unit}"

        rows = [
            ("goodput", fmt(self.goodput)),
            ("busy", fmt(self.busy_seconds, "s")),
            ("wall", fmt(self.wall_seconds, "s")),
            ("iterations", fmt(self.iterations)),
            ("workers", fmt(self.workers)),
            ("recoveries", fmt(self.recoveries)),
            ("mean MTTR", fmt(self.mean_mttr, "s")),
            ("max MTTR", fmt(self.max_mttr, "s")),
            ("mean detection", fmt(self.mean_detection, "s")),
        ]
        for category in sorted(self.overhead):
            rows.append(
                (f"overhead.{category}", fmt(self.overhead[category], "s"))
            )
        if self.upload_series:
            total = sum(d for _, d in self.upload_series)
            rows.append(("uploads", fmt(len(self.upload_series))))
            rows.append(("upload time", fmt(total, "s")))
        for name in sorted(self.counts):
            rows.append((name, fmt(self.counts[name])))
        return rows

    def format(self) -> str:
        rows = self.rows()
        width = max(len(name) for name, _ in rows)
        lines = [f"{name:<{width}}  {value}" for name, value in rows]
        if self.job:
            lines.insert(0, f"[job {self.job}]")
        return "\n".join(lines)


def _overhead_category(name: str) -> "str | None":
    for category, prefixes in _OVERHEAD_PREFIXES.items():
        if any(name == p or name.startswith(p) for p in prefixes):
            return category
    return None


def derive_report(
    events: "typing.Sequence[dict]",
    metrics: "dict | None" = None,
    job: "str | None" = None,
) -> GoodputReport:
    """Compute goodput/MTTR from Chrome-trace events (+ a metrics snapshot).

    Goodput is the fraction of the job's wall-clock each participating
    worker spent inside ``worker.iteration`` spans, averaged over the
    workers that emitted any — time lost to barriers, failover backoff,
    re-enrollment, and repair shows up directly as the gap to 1.0.
    Overhead spans (replication / rescheduling / degradation) are
    accounted per category, and every state upload lands in
    ``upload_series``.  Works on a live tracer's ``to_events()``, a
    :class:`TraceMerger` output, or a reloaded trace file.
    """
    # Keyed by (pid, tid): in a merged fleet trace every process has its
    # own tid 1, so tid alone would collapse all workers into one lane.
    names_by_lane = {
        (e.get("pid", 1), e["tid"]): e["args"]["name"]
        for e in events
        if e.get("ph") == "M" and e.get("name") == "thread_name"
    }
    busy_us: "dict[str, float]" = {}
    counts = {label: 0 for label in _INSTANT_COUNTS.values()}
    overhead = {category: 0.0 for category in _OVERHEAD_PREFIXES}
    upload_series: "list[tuple[float, float]]" = []
    iterations = 0
    t_lo: "float | None" = None
    t_hi: "float | None" = None
    for event in events:
        phase = event.get("ph")
        if phase not in ("X", "i"):
            continue
        ts = float(event.get("ts", 0.0))
        end = ts + float(event.get("dur", 0.0))
        t_lo = ts if t_lo is None else min(t_lo, ts)
        t_hi = end if t_hi is None else max(t_hi, end)
        name = event.get("name")
        if phase == "X" and name == "worker.iteration":
            # A worker is one (pid, tid) lane in a merged fleet trace,
            # one tid in a single-process trace.
            track = event.get("track")
            if track is None:
                track = names_by_lane.get(
                    (event.get("pid", 1), event.get("tid"))
                )
            if track is None:
                track = f"{event.get('pid', 1)}/{event.get('tid')}"
            # Prefix with the pid so two processes that both call their
            # main lane by the same name stay distinct workers.
            lane = f"{event.get('pid', 1)}:{track}"
            busy_us[lane] = busy_us.get(lane, 0.0) + float(
                event.get("dur", 0.0)
            )
            iterations += 1
        elif phase == "X":
            category = _overhead_category(str(name))
            if category is not None:
                overhead[category] += float(event.get("dur", 0.0)) / 1e6
            if name == "net.state_upload":
                upload_series.append(
                    (ts / 1e6, float(event.get("dur", 0.0)) / 1e6)
                )
        elif phase == "i" and name in _INSTANT_COUNTS:
            counts[_INSTANT_COUNTS[name]] += 1
    wall = (t_hi - t_lo) / 1e6 if t_lo is not None else 0.0
    busy = sum(busy_us.values()) / 1e6
    workers = len(busy_us)
    goodput = busy / (wall * workers) if wall > 0 and workers else 0.0

    recoveries = counts.get("condemned", 0)
    mean_mttr = max_mttr = mean_detection = None
    if metrics:
        mttr = metrics.get("failure.mttr_seconds") or {}
        detection = metrics.get("failure.detection_latency_seconds") or {}
        if mttr.get("count"):
            recoveries = int(mttr["count"])
            mean_mttr = mttr.get("mean")
            max_mttr = mttr.get("max")
        if detection.get("count"):
            mean_detection = detection.get("mean")
    return GoodputReport(
        job=job,
        goodput=goodput,
        busy_seconds=busy,
        wall_seconds=wall,
        iterations=iterations,
        workers=workers,
        recoveries=recoveries,
        mean_mttr=mean_mttr,
        max_mttr=max_mttr,
        mean_detection=mean_detection,
        counts=counts,
        overhead=overhead,
        upload_series=upload_series,
    )


def merge_metric_snapshots(snapshots: "typing.Sequence[dict]") -> dict:
    """Fold N ``MetricRegistry.snapshot()``-shaped dicts into one rollup.

    Counters and gauges sum; histogram stats combine exactly for
    count/sum/min/max/mean, while quantiles are count-weighted means of
    the per-source estimates — approximate, clearly better than
    dropping them, and documented as such in OBSERVABILITY.md.
    """
    rollup: "dict[str, typing.Any]" = {}
    weights: "dict[str, float]" = {}
    for snapshot in snapshots:
        for name, value in (snapshot or {}).items():
            if isinstance(value, dict):
                entry = rollup.setdefault(name, {})
                count = float(value.get("count") or 0)
                entry["count"] = entry.get("count", 0) + int(count)
                entry["sum"] = entry.get("sum", 0.0) + float(
                    value.get("sum") or 0.0
                )
                for extreme, pick in (("min", min), ("max", max)):
                    v = value.get(extreme)
                    if v is not None:
                        held = entry.get(extreme)
                        entry[extreme] = v if held is None else pick(held, v)
                for key, v in value.items():
                    if not key.startswith("p") or v is None or not count:
                        continue
                    prior_weight = weights.get(f"{name}.{key}", 0.0)
                    prior = entry.get(key)
                    total = prior_weight + count
                    entry[key] = (
                        v if prior is None
                        else (prior * prior_weight + v * count) / total
                    )
                    weights[f"{name}.{key}"] = total
            else:
                rollup[name] = rollup.get(name, 0.0) + float(value or 0.0)
    for entry in rollup.values():
        if isinstance(entry, dict):
            entry["mean"] = (
                entry["sum"] / entry["count"] if entry.get("count") else None
            )
    return dict(sorted(rollup.items()))


def prometheus_text(rollup: dict, prefix: str = "elan") -> str:
    """Prometheus text-format exposition of a metric rollup dict."""

    def sanitize(name: str) -> str:
        return "".join(
            c if c.isalnum() or c == "_" else "_" for c in name
        )

    lines = []
    for name, value in sorted(rollup.items()):
        metric = f"{prefix}_{sanitize(name)}"
        if isinstance(value, dict):
            lines.append(f"# TYPE {metric} summary")
            for key, v in value.items():
                if key in ("count", "sum"):
                    lines.append(f"{metric}_{key} {v}")
                elif key.startswith("p") and v is not None:
                    try:
                        quantile = float(key[1:]) / 100.0
                    except ValueError:
                        continue
                    lines.append(
                        f'{metric}{{quantile="{quantile:g}"}} {v}'
                    )
        else:
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {value}")
    return "\n".join(lines) + "\n"


class FleetCollector:
    """AM-side fold of live TELEMETRY deltas into a fleet view.

    Holds, per worker: the shipped trace events (keyed by the worker's
    own buffer index, so re-shipped full snapshots overwrite
    idempotently), the lossless metric-registry JSON, the worker's
    link-clock offset, and drop accounting.  Per-job and fleet rollups
    are derived on demand.  The collector is deliberately *not*
    journaled: a successor AM starts empty and workers re-ship full
    snapshots on re-enrollment (see docs/PROTOCOL.md).
    """

    def __init__(self, job_id: "str | None" = None):
        self.job_id = job_id
        self._lock = threading.Lock()
        self._workers: "dict[str, dict]" = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._workers)

    def workers(self) -> "list[str]":
        with self._lock:
            return sorted(self._workers)

    def ingest(self, payload: dict, sender: "str | None" = None) -> dict:
        """Fold one TELEMETRY delta; returns the reply payload.

        A delta whose ``start`` index is beyond what we hold means this
        collector never saw the worker's earlier events (successor AM
        after a failover): the reply carries ``resync`` and the shipper
        answers with a full snapshot.
        """
        worker = str(payload.get("worker") or sender or "?")
        full = bool(payload.get("full"))
        events = payload.get("events") or ()
        with self._lock:
            entry = self._workers.setdefault(worker, {
                "job": None, "events": {}, "metrics": {},
                "offset": None, "dropped": 0, "deltas": 0,
            })
            if full:
                entry["events"] = {}
            entry["deltas"] += 1
            entry["job"] = payload.get("job") or entry["job"]
            if payload.get("metrics") is not None:
                entry["metrics"] = payload["metrics"]
            if payload.get("offset") is not None:
                entry["offset"] = float(payload["offset"])
            entry["dropped"] = max(
                entry["dropped"], int(payload.get("dropped") or 0)
            )
            held_next = max(entry["events"], default=-1) + 1
            for record in events:
                index = int(record.get("idx", held_next))
                entry["events"][index] = dict(record)
            start = payload.get("start")
            resync = (
                not full
                and start is not None
                and int(start) > held_next
            )
        return {"ok": True, "resync": bool(resync), "worker": worker}

    # -- views ------------------------------------------------------------------

    def worker_events(self, worker: str) -> "list[dict]":
        with self._lock:
            entry = self._workers.get(worker) or {"events": {}}
            return [
                entry["events"][i] for i in sorted(entry["events"])
            ]

    def worker_metrics(self, worker: str) -> dict:
        with self._lock:
            entry = self._workers.get(worker) or {}
            return dict(entry.get("metrics") or {})

    def jobs(self) -> "dict[str, list[str]]":
        """job id -> sorted worker ids shipped under it."""
        with self._lock:
            out: "dict[str, list[str]]" = {}
            for worker, entry in self._workers.items():
                job = str(entry.get("job") or self.job_id or "?")
                out.setdefault(job, []).append(worker)
        return {job: sorted(ws) for job, ws in sorted(out.items())}

    def merger(
        self,
        am_events: "typing.Sequence[dict] | None" = None,
        workers: "typing.Sequence[str] | None" = None,
        am_process: str = "am",
    ) -> TraceMerger:
        """A :class:`TraceMerger` loaded with the collected fleet view."""
        merger = TraceMerger(reference=am_process)
        if am_events is not None:
            merger.add(list(am_events), process=am_process, offset=0.0)
        for worker in workers if workers is not None else self.workers():
            with self._lock:
                entry = self._workers.get(worker)
                if entry is None:
                    continue
                events = [entry["events"][i] for i in sorted(entry["events"])]
                offset = entry.get("offset")
            merger.add(events, process=worker, offset=offset)
        return merger

    def merged_events(
        self, am_events: "typing.Sequence[dict] | None" = None
    ) -> "list[dict]":
        """One clock-aligned fleet trace from everything collected."""
        return self.merger(am_events=am_events).merge()

    def rollup(
        self, extra_snapshots: "typing.Sequence[dict] | None" = None
    ) -> dict:
        """Fleet-wide metric rollup across every worker (+ extras)."""
        snapshots = [
            MetricRegistry.from_json(self.worker_metrics(w)).snapshot()
            for w in self.workers()
        ]
        snapshots.extend(extra_snapshots or ())
        return merge_metric_snapshots(snapshots)

    def report(
        self,
        am_events: "typing.Sequence[dict] | None" = None,
        am_metrics: "dict | None" = None,
    ) -> "dict[str, GoodputReport]":
        """Per-job reports plus the ``"fleet"`` rollup report.

        MTTR/detection histograms live in the AM's own registry (the
        lease evictor feeds them), so ``am_metrics`` should be the AM's
        ``metrics.snapshot()`` when available.
        """
        reports: "dict[str, GoodputReport]" = {}
        jobs = self.jobs()
        for job, workers in jobs.items():
            events = self.merger(am_events=am_events, workers=workers).merge()
            snapshots = [
                MetricRegistry.from_json(self.worker_metrics(w)).snapshot()
                for w in workers
            ]
            if am_metrics:
                snapshots.append(am_metrics)
            reports[job] = derive_report(
                events, merge_metric_snapshots(snapshots), job=job
            )
        fleet_events = self.merged_events(am_events=am_events)
        reports["fleet"] = derive_report(
            fleet_events, self.rollup([am_metrics] if am_metrics else None),
            job="fleet",
        )
        return reports

    # -- (de)serialization -------------------------------------------------------

    def to_payload(self) -> dict:
        """JSON-safe dump of the whole fleet view (CLI export, tests)."""
        with self._lock:
            return {
                "job_id": self.job_id,
                "workers": {
                    worker: {
                        "job": entry["job"],
                        "metrics": entry["metrics"],
                        "offset": entry["offset"],
                        "dropped": entry["dropped"],
                        "deltas": entry["deltas"],
                        "events": [
                            entry["events"][i] for i in sorted(entry["events"])
                        ],
                    }
                    for worker, entry in sorted(self._workers.items())
                },
            }

    @classmethod
    def from_payload(cls, payload: dict) -> "FleetCollector":
        collector = cls(job_id=payload.get("job_id"))
        for worker, entry in (payload.get("workers") or {}).items():
            events = entry.get("events") or ()
            collector._workers[str(worker)] = {
                "job": entry.get("job"),
                "metrics": dict(entry.get("metrics") or {}),
                "offset": entry.get("offset"),
                "dropped": int(entry.get("dropped") or 0),
                "deltas": int(entry.get("deltas") or 0),
                "events": {
                    int(r.get("idx", i)): dict(r)
                    for i, r in enumerate(events)
                },
            }
        return collector
