"""Nested spans on an injectable clock, exported as Chrome trace events.

The tracer is the shared timeline instrument of the reproduction: the
live threaded runtime drives it with a wall clock
(:func:`time.perf_counter`), the discrete-event harnesses drive it with
their simulated ``now``, and both produce the *same span taxonomy* (see
``docs/OBSERVABILITY.md``) so an adjustment's phase breakdown can be
compared across harnesses event by event.

Output is the Chrome trace-event format (the JSON array flavor), one
event per line, so an exported file opens directly in ``chrome://tracing``
or https://ui.perfetto.dev.  Tracks (the viewer's horizontal lanes) are
logical — worker ids, ``am``, ``supervisor`` — not OS threads; the
exporter assigns each track a stable ``tid`` plus a ``thread_name``
metadata event so the viewer labels lanes by their logical name.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
import typing


@dataclasses.dataclass
class Span:
    """One traced interval (or point, when ``end == start``) on a track."""

    name: str
    cat: str
    track: str
    start: float
    end: "float | None"
    args: dict
    #: Chrome trace phase: "X" complete span, "i" instant, "C" counter.
    phase: str = "X"

    @property
    def duration(self) -> float:
        """Seconds covered (0.0 while the span is still open)."""
        return 0.0 if self.end is None else self.end - self.start


class Tracer:
    """Thread-safe span recorder with an injectable clock.

    Two recording styles coexist:

    * *clocked* — :meth:`span` (a context manager), :meth:`begin` /
      :meth:`end`, :meth:`instant`, :meth:`counter` read ``self.clock``;
    * *retrospective* — :meth:`add_span`, :meth:`add_instant`,
      :meth:`add_counter` take explicit timestamps, for harnesses whose
      clock is a local variable (the scheduling simulator) or created
      after the tracer (the replication executor's inner DES kernel).
    """

    def __init__(
        self,
        clock: "typing.Callable[[], float] | None" = None,
        process: str = "elan",
        enabled: bool = True,
    ):
        self.clock = clock or time.perf_counter
        self.process = process
        self.enabled = enabled
        self._lock = threading.Lock()
        self._events: typing.List[Span] = []
        self._track_ids: typing.Dict[str, int] = {}

    # -- recording (clocked) ---------------------------------------------------

    def begin(self, name: str, track: "str | None" = None,
              cat: str = "", **args) -> "Span | None":
        """Open a span now; close it later with :meth:`end`."""
        if not self.enabled:
            return None
        span = Span(
            name=name, cat=cat, track=self._resolve_track(track),
            start=self.clock(), end=None, args=dict(args),
        )
        with self._lock:
            self._events.append(span)
        return span

    def end(self, span: "Span | None", **extra_args) -> None:
        """Close a span opened by :meth:`begin` (None-safe)."""
        if span is None or not self.enabled:
            return
        span.end = self.clock()
        if extra_args:
            span.args.update(extra_args)

    def span(self, name: str, track: "str | None" = None,
             cat: str = "", **args):
        """Context manager: a span covering the ``with`` block."""
        return _SpanContext(self, name, track, cat, args)

    def instant(self, name: str, track: "str | None" = None,
                cat: str = "", **args) -> None:
        """Record a point event at the current clock time."""
        if self.enabled:
            self.add_instant(name, self.clock(), track=track, cat=cat, **args)

    def counter(self, name: str, value: float,
                track: "str | None" = None) -> None:
        """Record a counter sample at the current clock time."""
        if self.enabled:
            self.add_counter(name, self.clock(), value, track=track)

    # -- recording (retrospective) ---------------------------------------------

    def add_span(self, name: str, start: float, end: float,
                 track: "str | None" = None, cat: str = "", **args) -> None:
        """Record an already-measured interval."""
        if not self.enabled:
            return
        span = Span(name=name, cat=cat, track=self._resolve_track(track),
                    start=start, end=end, args=dict(args))
        with self._lock:
            self._events.append(span)

    def add_instant(self, name: str, when: float,
                    track: "str | None" = None, cat: str = "", **args) -> None:
        """Record a point event at an explicit timestamp."""
        if not self.enabled:
            return
        span = Span(name=name, cat=cat, track=self._resolve_track(track),
                    start=when, end=when, args=dict(args), phase="i")
        with self._lock:
            self._events.append(span)

    def add_counter(self, name: str, when: float, value: float,
                    track: "str | None" = None) -> None:
        """Record a counter sample at an explicit timestamp."""
        if not self.enabled:
            return
        span = Span(name=name, cat="counter",
                    track=self._resolve_track(track), start=when, end=when,
                    args={"value": value}, phase="C")
        with self._lock:
            self._events.append(span)

    def _resolve_track(self, track: "str | None") -> str:
        if track is None:
            track = threading.current_thread().name
        with self._lock:
            if track not in self._track_ids:
                self._track_ids[track] = len(self._track_ids) + 1
        return track

    # -- queries ---------------------------------------------------------------

    def spans(self, name: "str | None" = None) -> "list[Span]":
        """Finished duration spans, optionally filtered by name."""
        with self._lock:
            return [
                e for e in self._events
                if e.phase == "X" and e.end is not None
                and (name is None or e.name == name)
            ]

    def instants(self, name: "str | None" = None) -> "list[Span]":
        """Instant events, optionally filtered by name."""
        with self._lock:
            return [
                e for e in self._events
                if e.phase == "i" and (name is None or e.name == name)
            ]

    def span_names(self) -> "set[str]":
        """The taxonomy: names of all duration spans recorded so far."""
        return {s.name for s in self.spans()}

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    # -- export ----------------------------------------------------------------

    def to_events(self) -> "list[dict]":
        """Chrome trace-event dicts (metadata first, then events).

        Timestamps are converted to microseconds; still-open spans are
        skipped (they have no duration to report).
        """
        with self._lock:
            events = list(self._events)
            track_ids = dict(self._track_ids)
        out: typing.List[dict] = [{
            "name": "process_name", "ph": "M", "pid": 1, "tid": 0,
            "args": {"name": self.process},
        }]
        for track, tid in sorted(track_ids.items(), key=lambda kv: kv[1]):
            out.append({
                "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                "args": {"name": track},
            })
        for event in events:
            if event.phase == "X" and event.end is None:
                continue
            record = {
                "name": event.name,
                "cat": event.cat or "default",
                "ph": event.phase,
                "ts": event.start * 1e6,
                "pid": 1,
                "tid": track_ids.get(event.track, 0),
                "args": event.args,
            }
            if event.phase == "X":
                record["dur"] = (event.end - event.start) * 1e6
            elif event.phase == "i":
                record["s"] = "t"  # thread-scoped instant
            out.append(record)
        return out

    def collect_events(
        self,
        start: int = 0,
        pending: "typing.Sequence[int]" = (),
        limit: "int | None" = None,
    ) -> "tuple[list[dict], int, list[int]]":
        """Incremental export: closed events at index >= ``start``.

        The telemetry shipper calls this with a cursor (``start``) plus
        the indices it had to skip last time because their spans were
        still open (``pending``).  Returns ``(records, next_start,
        still_pending)``: each record is a Chrome-trace event dict
        carrying its buffer index (``"idx"``) — so a receiver can fold
        re-shipped snapshots idempotently — and its logical ``"track"``
        name (tids are process-local and meaningless across the wire).
        ``limit`` bounds the number of indices examined per call.
        """
        with self._lock:
            events = list(self._events)
            track_ids = dict(self._track_ids)
        indices = sorted(set(int(i) for i in pending if 0 <= i < len(events))
                         | set(range(start, len(events))))
        if limit is not None:
            indices = indices[:limit]
        records: typing.List[dict] = []
        still_pending: typing.List[int] = []
        next_start = start
        for index in indices:
            event = events[index]
            if index >= next_start:
                next_start = index + 1
            if event.phase == "X" and event.end is None:
                still_pending.append(index)
                continue
            record = {
                "idx": index,
                "name": event.name,
                "cat": event.cat or "default",
                "ph": event.phase,
                "ts": event.start * 1e6,
                "pid": 1,
                "tid": track_ids.get(event.track, 0),
                "track": event.track,
                "args": event.args,
            }
            if event.phase == "X":
                record["dur"] = (event.end - event.start) * 1e6
            elif event.phase == "i":
                record["s"] = "t"
            records.append(record)
        return records, next_start, still_pending

    def export(self, path: str) -> int:
        """Write the trace as Chrome-trace JSONL; returns the event count.

        The file is a JSON array with one event object per line — valid
        JSON for Perfetto/``chrome://tracing`` *and* line-parseable.
        """
        return write_trace_events(path, self.to_events())


def write_trace_events(
    path: str, events: "typing.Sequence[dict]"
) -> int:
    """Write Chrome trace events in :meth:`Tracer.export`'s file format.

    Shared by the tracer, the ``fleet export`` CLI and the multiprocess
    job driver so every trace file on disk is byte-compatible.
    """
    lines = [json.dumps(e, separators=(",", ":"), sort_keys=True)
             for e in events]
    with open(path, "w") as f:
        f.write("[\n" + ",\n".join(lines) + "\n]\n")
    return len(events)


class _SpanContext:
    """Context manager backing :meth:`Tracer.span`."""

    def __init__(self, tracer: Tracer, name: str, track: "str | None",
                 cat: str, args: dict):
        self.tracer = tracer
        self.name = name
        self.track = track
        self.cat = cat
        self.args = args
        self.span: "Span | None" = None

    def __enter__(self) -> "Span | None":
        self.span = self.tracer.begin(
            self.name, track=self.track, cat=self.cat, **self.args
        )
        return self.span

    def __exit__(self, *exc_info) -> None:
        self.tracer.end(self.span)


# -- reading traces back -------------------------------------------------------


def load_trace_events(path: str) -> "list[dict]":
    """Parse an exported trace file back into event dicts.

    Accepts the exporter's JSON-array-one-per-line layout, a plain JSON
    array, the ``{"traceEvents": [...]}`` object form, and unterminated
    arrays (the Chrome format explicitly allows a missing ``]``).
    """
    with open(path) as f:
        text = f.read().strip()
    if not text:
        return []
    try:
        parsed = json.loads(text)
        if isinstance(parsed, dict):
            return list(parsed.get("traceEvents", []))
        return list(parsed)
    except json.JSONDecodeError:
        pass
    # Tolerant line-by-line fallback (unterminated array / pure JSONL).
    events = []
    for line in text.splitlines():
        line = line.strip().rstrip(",")
        if line in ("", "[", "]"):
            continue
        events.append(json.loads(line))
    return events


def validate_events(events: "typing.Sequence[dict]") -> "list[str]":
    """Schema-check trace events; returns a list of problems (empty = ok).

    Guards the export format against drift: every event needs ``name``,
    ``ph`` and a numeric ``ts``; complete spans additionally need a
    non-negative numeric ``dur``.
    """
    problems = []
    data = [e for e in events if e.get("ph") != "M"]
    if not data:
        problems.append("trace contains no events (metadata only)")
    for index, event in enumerate(events):
        where = f"event {index}"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        if not event.get("name"):
            problems.append(f"{where}: missing name")
        phase = event.get("ph")
        if phase not in ("X", "i", "C", "M", "B", "E"):
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        if phase == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"{where}: missing/non-numeric ts")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: complete span needs dur >= 0")
    return problems


def summarize_events(events: "typing.Sequence[dict]") -> "list[tuple]":
    """Aggregate complete spans by name.

    Returns ``(name, count, total_s, mean_s, max_s)`` rows sorted by
    total time descending — the per-phase breakdown the CLI prints.
    """
    totals: typing.Dict[str, typing.List[float]] = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        durations = totals.setdefault(event["name"], [])
        durations.append(float(event.get("dur", 0.0)) / 1e6)
    rows = [
        (name, len(ds), sum(ds), sum(ds) / len(ds), max(ds))
        for name, ds in totals.items()
    ]
    rows.sort(key=lambda r: r[2], reverse=True)
    return rows


def track_names(events: "typing.Sequence[dict]") -> "dict[tuple, str]":
    """``(pid, tid) -> logical track name`` from thread_name metadata."""
    names: typing.Dict[tuple, str] = {}
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            key = (event.get("pid", 1), event.get("tid", 0))
            names[key] = str((event.get("args") or {}).get("name", key))
    return names


def summarize_point_events(
    events: "typing.Sequence[dict]",
) -> "tuple[list[tuple], list[tuple]]":
    """Aggregate instant and counter events by name.

    Complements :func:`summarize_events` (duration spans only).
    Returns ``(instant_rows, counter_rows)``: instant rows are
    ``(name, count, {track: count})`` sorted by count descending;
    counter rows are ``(name, samples, last_value, {track: samples})``.
    Tracks resolve through thread_name metadata, falling back to
    ``pid/tid``.
    """
    tracks = track_names(events)

    def _track(event: dict) -> str:
        key = (event.get("pid", 1), event.get("tid", 0))
        return tracks.get(key, f"{key[0]}/{key[1]}")

    instants: typing.Dict[str, typing.Dict[str, int]] = {}
    counters: typing.Dict[str, dict] = {}
    for event in events:
        phase = event.get("ph")
        name = event.get("name", "?")
        if phase == "i":
            per_track = instants.setdefault(name, {})
            track = _track(event)
            per_track[track] = per_track.get(track, 0) + 1
        elif phase == "C":
            entry = counters.setdefault(name, {"samples": 0, "last": None,
                                               "tracks": {}})
            entry["samples"] += 1
            entry["last"] = (event.get("args") or {}).get("value")
            track = _track(event)
            entry["tracks"][track] = entry["tracks"].get(track, 0) + 1
    instant_rows = [
        (name, sum(per_track.values()), per_track)
        for name, per_track in instants.items()
    ]
    instant_rows.sort(key=lambda r: (-r[1], r[0]))
    counter_rows = [
        (name, entry["samples"], entry["last"], entry["tracks"])
        for name, entry in counters.items()
    ]
    counter_rows.sort(key=lambda r: (-r[1], r[0]))
    return instant_rows, counter_rows
