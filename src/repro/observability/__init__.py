"""Tracing + metrics shared by the live runtime and the simulators.

One :class:`Tracer` (nested spans on an injectable clock, Chrome-trace
export) and one :class:`MetricRegistry` (counters, gauges, streaming
histograms) instrument every harness — ``ElasticRuntime`` on wall time,
``SimulatedElasticJob`` and the replication/scheduling simulators on
simulated time — with a single span taxonomy (``docs/OBSERVABILITY.md``).

The fleet half (:mod:`.fleet`) aligns per-process clocks from wire
trace contexts, merges N per-process traces into one fleet trace, and
folds live TELEMETRY deltas into per-job and fleet-wide goodput
reports.
"""

from .fleet import (
    ClockSync,
    FleetCollector,
    GoodputReport,
    SLOViolation,
    TraceMerger,
    derive_report,
    merge_metric_snapshots,
    prometheus_text,
)
from .metrics import Counter, Gauge, Histogram, MetricRegistry, P2Quantile
from .tracing import (
    Span,
    Tracer,
    load_trace_events,
    summarize_events,
    summarize_point_events,
    track_names,
    validate_events,
    write_trace_events,
)

__all__ = [
    "ClockSync",
    "Counter",
    "FleetCollector",
    "Gauge",
    "GoodputReport",
    "Histogram",
    "MetricRegistry",
    "P2Quantile",
    "SLOViolation",
    "Span",
    "TraceMerger",
    "Tracer",
    "derive_report",
    "load_trace_events",
    "merge_metric_snapshots",
    "prometheus_text",
    "summarize_events",
    "summarize_point_events",
    "track_names",
    "validate_events",
    "write_trace_events",
]
