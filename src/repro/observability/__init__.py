"""Tracing + metrics shared by the live runtime and the simulators.

One :class:`Tracer` (nested spans on an injectable clock, Chrome-trace
export) and one :class:`MetricRegistry` (counters, gauges, streaming
histograms) instrument every harness — ``ElasticRuntime`` on wall time,
``SimulatedElasticJob`` and the replication/scheduling simulators on
simulated time — with a single span taxonomy (``docs/OBSERVABILITY.md``).
"""

from .metrics import Counter, Gauge, Histogram, MetricRegistry, P2Quantile
from .tracing import (
    Span,
    Tracer,
    load_trace_events,
    summarize_events,
    validate_events,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "P2Quantile",
    "Span",
    "Tracer",
    "load_trace_events",
    "summarize_events",
    "validate_events",
]
