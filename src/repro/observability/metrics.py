"""Counters, gauges and streaming histograms behind a metric registry.

The registry is the numeric half of the observability layer (spans are
the temporal half): hot paths record one observation per event and the
registry keeps O(1) state per metric.  Quantiles use the P² algorithm
(Jain & Chlamtac, 1985) — five markers per tracked quantile updated by
parabolic interpolation — so p50/p95/p99 of thousands of iteration
timings cost a few floats, no sample buffers, no dependencies.
"""

from __future__ import annotations

import bisect
import threading
import typing


class Counter:
    """A monotonically increasing count."""

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (e.g. current worker count)."""

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class P2Quantile:
    """Streaming estimate of one quantile via the P² algorithm.

    Holds five markers whose heights converge to
    ``(min, p/2, p, (1+p)/2, max)`` quantiles; each observation moves at
    most three markers by parabolic (falling back to linear)
    interpolation.  Exact for the first five observations (sorted
    buffer), approximate afterwards.
    """

    def __init__(self, p: float):
        if not 0.0 < p < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        self.p = p
        self.count = 0
        self._heights: typing.List[float] = []  # marker heights q[0..4]
        self._positions: typing.List[float] = []  # marker positions n[0..4]

    def observe(self, x: float) -> None:
        self.count += 1
        if self.count <= 5:
            bisect.insort(self._heights, x)
            if self.count == 5:
                self._positions = [0.0, 1.0, 2.0, 3.0, 4.0]
            return
        q, n = self._heights, self._positions
        if x < q[0]:
            q[0] = x
            cell = 0
        elif x >= q[4]:
            q[4] = x
            cell = 3
        else:
            cell = next(i for i in range(4) if q[i] <= x < q[i + 1])
        for i in range(cell + 1, 5):
            n[i] += 1.0
        # Nudge the three middle markers toward their desired positions.
        total = float(self.count - 1)
        desired = (0.0, self.p / 2, self.p, (1 + self.p) / 2, 1.0)
        for i in (1, 2, 3):
            drift = desired[i] * total - n[i]
            if (drift >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                drift <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                step = 1.0 if drift >= 0 else -1.0
                candidate = self._parabolic(i, step)
                if not q[i - 1] < candidate < q[i + 1]:
                    candidate = self._linear(i, step)
                q[i] = candidate
                n[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        q, n = self._heights, self._positions
        return q[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        q, n = self._heights, self._positions
        j = i + int(step)
        return q[i] + step * (q[j] - q[i]) / (n[j] - n[i])

    def state(self) -> dict:
        """The full marker state, JSON-safe (see :meth:`restore`)."""
        return {
            "p": self.p,
            "count": self.count,
            "heights": list(self._heights),
            "positions": list(self._positions),
        }

    @classmethod
    def restore(cls, state: dict) -> "P2Quantile":
        """Rebuild an estimator from :meth:`state` output.

        The restored estimator continues exactly where the original
        left off — the five markers *are* the whole algorithm state —
        so telemetry deltas can ship quantiles without sample buffers.
        """
        estimator = cls(float(state["p"]))
        estimator.count = int(state["count"])
        estimator._heights = [float(h) for h in state.get("heights", ())]
        estimator._positions = [float(n) for n in state.get("positions", ())]
        return estimator

    def value(self) -> "float | None":
        """Current estimate (None before any observation)."""
        if self.count == 0:
            return None
        if self.count < 5:
            # Exact: linear interpolation over the sorted buffer.
            rank = self.p * (len(self._heights) - 1)
            low = int(rank)
            high = min(low + 1, len(self._heights) - 1)
            fraction = rank - low
            return (
                self._heights[low] * (1 - fraction)
                + self._heights[high] * fraction
            )
        return self._heights[2]


class Histogram:
    """Streaming distribution summary: count/sum/min/max + P² quantiles."""

    def __init__(self, name: str,
                 quantiles: typing.Sequence[float] = (0.5, 0.95, 0.99)):
        self.name = name
        self._lock = threading.Lock()
        self._estimators = {q: P2Quantile(q) for q in quantiles}
        self.count = 0
        self.sum = 0.0
        self.min: "float | None" = None
        self.max: "float | None" = None

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.sum += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            for estimator in self._estimators.values():
                estimator.observe(value)

    @property
    def mean(self) -> "float | None":
        with self._lock:
            return self.sum / self.count if self.count else None

    def quantile(self, q: float) -> "float | None":
        """Estimate of quantile ``q`` (must be one of the tracked set)."""
        with self._lock:
            if q not in self._estimators:
                raise KeyError(f"histogram {self.name!r} does not track {q}")
            return self._estimators[q].value()

    def snapshot(self) -> dict:
        """All summary statistics as one plain dict."""
        with self._lock:
            stats = {
                "count": self.count, "sum": self.sum,
                "min": self.min, "max": self.max,
                "mean": self.sum / self.count if self.count else None,
            }
            for q, estimator in self._estimators.items():
                stats[f"p{q * 100:g}"] = estimator.value()
            return stats

    def state(self) -> dict:
        """Full histogram state including every P² marker (JSON-safe)."""
        with self._lock:
            return {
                "count": self.count, "sum": self.sum,
                "min": self.min, "max": self.max,
                "estimators": [e.state() for e in self._estimators.values()],
            }

    @classmethod
    def restore(cls, name: str, state: dict) -> "Histogram":
        """Rebuild a histogram from :meth:`state` output."""
        estimators = [
            P2Quantile.restore(s) for s in state.get("estimators", ())
        ]
        histogram = cls(name, quantiles=[e.p for e in estimators] or (0.5,))
        if estimators:
            histogram._estimators = {e.p: e for e in estimators}
        histogram.count = int(state.get("count", 0))
        histogram.sum = float(state.get("sum", 0.0))
        histogram.min = state.get("min")
        histogram.max = state.get("max")
        return histogram


class MetricRegistry:
    """Named metrics, created on first use, queried as one snapshot."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: typing.Dict[str, object] = {}

    def _get(self, name: str, kind: type, factory):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {kind.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str,
        quantiles: typing.Sequence[float] = (0.5, 0.95, 0.99),
    ) -> Histogram:
        """Get or create the histogram ``name``."""
        return self._get(name, Histogram, lambda: Histogram(name, quantiles))

    def names(self) -> "list[str]":
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> dict:
        """{name: value | histogram stats} for every registered metric."""
        with self._lock:
            metrics = dict(self._metrics)
        out = {}
        for name, metric in sorted(metrics.items()):
            if isinstance(metric, Histogram):
                out[name] = metric.snapshot()
            else:
                out[name] = metric.value  # Counter | Gauge
        return out

    def to_json(self) -> dict:
        """The whole registry as one JSON-safe dict.

        Unlike :meth:`snapshot` this is *lossless*: histograms carry
        their full P² marker state, so :meth:`from_json` rebuilds a
        registry whose future quantile estimates continue exactly where
        this one left off.  This is the payload TELEMETRY deltas ship.
        """
        with self._lock:
            metrics = dict(self._metrics)
        out = {}
        for name, metric in sorted(metrics.items()):
            if isinstance(metric, Counter):
                out[name] = {"kind": "counter", "value": metric.value}
            elif isinstance(metric, Gauge):
                out[name] = {"kind": "gauge", "value": metric.value}
            else:
                out[name] = {"kind": "histogram", "state": metric.state()}
        return out

    @classmethod
    def from_json(cls, data: dict) -> "MetricRegistry":
        """Rebuild a registry from :meth:`to_json` output.

        Unknown kinds are skipped, not fatal: a newer worker must be
        able to ship metrics to an older collector.
        """
        registry = cls()
        for name, entry in (data or {}).items():
            kind = entry.get("kind")
            if kind == "counter":
                registry.counter(name).inc(float(entry.get("value", 0.0)))
            elif kind == "gauge":
                registry.gauge(name).set(float(entry.get("value", 0.0)))
            elif kind == "histogram":
                restored = Histogram.restore(name, entry.get("state") or {})
                with registry._lock:
                    registry._metrics[name] = restored
        return registry
