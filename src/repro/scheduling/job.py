"""Job model for the cluster-scheduling experiments (paper §VI-C).

Each trace job picks one Table I model configuration.  A static job runs
on exactly ``req_res`` workers; an elastic job may run anywhere between
``min_res`` (the model fits in GPU memory) and ``max_res`` (it still
converges), with throughput given by the calibrated performance model —
the paper likewise drives its simulator with measured throughputs.
"""

from __future__ import annotations

import dataclasses
import functools
import typing

from ..perfmodel.models import ModelSpec
from ..perfmodel.throughput import ThroughputModel

#: Per-worker batch used when sizing throughput, following the paper's
#: elastic-training configuration (batch 32 per worker).
PER_WORKER_BATCH = 32


@functools.lru_cache(maxsize=None)
def _cached_model(model_name: str) -> ThroughputModel:
    from ..perfmodel.models import get_model

    return ThroughputModel(get_model(model_name))


@dataclasses.dataclass(frozen=True)
class JobSpec:
    """One job of the scheduling trace."""

    job_id: str
    model: ModelSpec
    submit_time: float
    work: float  # total samples the job must process
    req_res: int  # workers a static scheduler must provide
    min_res: int  # smallest allocation the job can run on
    max_res: int  # largest allocation that still converges
    priority: int = 0  # larger = more important (preemption extension)

    def __post_init__(self):
        if not 1 <= self.min_res <= self.req_res <= self.max_res:
            raise ValueError(
                f"{self.job_id}: need 1 <= min {self.min_res} <= req "
                f"{self.req_res} <= max {self.max_res}"
            )
        if self.work <= 0:
            raise ValueError(f"{self.job_id}: work must be positive")

    def throughput(self, workers: int) -> float:
        """Samples/second on ``workers`` (weak scaling at batch 32)."""
        if workers == 0:
            return 0.0
        if workers < 0:
            raise ValueError("workers must be >= 0")
        model = _cached_model(self.model.name)
        return model.throughput(workers, workers * PER_WORKER_BATCH)

    def marginal_gain(self, workers: int) -> float:
        """Throughput gained by the (workers+1)-th worker (Optimus-style)."""
        return self.throughput(workers + 1) - self.throughput(workers)

    def duration_at(self, workers: int) -> float:
        """Seconds to finish the whole job on a constant allocation."""
        return self.work / self.throughput(workers)


@dataclasses.dataclass
class JobExecution:
    """Mutable bookkeeping of one job inside the scheduler simulator."""

    spec: JobSpec
    workers: int = 0
    work_done: float = 0.0
    start_time: "float | None" = None
    completion_time: "float | None" = None
    paused_until: float = 0.0  # adjustment downtime
    adjustments: int = 0

    @property
    def running(self) -> bool:
        """Whether the job currently holds workers."""
        return self.workers > 0 and self.completion_time is None

    @property
    def done(self) -> bool:
        """Whether the job has finished."""
        return self.completion_time is not None

    @property
    def remaining_work(self) -> float:
        """Samples still to process."""
        return max(0.0, self.spec.work - self.work_done)

    def rate_at(self, now: float) -> float:
        """Current processing rate (0 while paused for an adjustment)."""
        if not self.running or now < self.paused_until:
            return 0.0
        return self.spec.throughput(self.workers)

    def advance(self, start: float, end: float) -> None:
        """Accrue work over [start, end) at the current allocation."""
        if end < start:
            raise ValueError("time cannot run backwards")
        if not self.running:
            return
        effective_start = max(start, self.paused_until)
        if effective_start >= end:
            return
        self.work_done += (end - effective_start) * self.spec.throughput(
            self.workers
        )

    def eta(self, now: float) -> float:
        """Predicted completion time at the current rate (inf if idle)."""
        if self.done or not self.running:
            return float("inf")
        rate = self.spec.throughput(self.workers)
        if rate <= 0:
            return float("inf")
        start = max(now, self.paused_until)
        return start + self.remaining_work / rate
