"""Scheduling metrics: JPT, JCT, makespan, GPU utilization (§VI-C)."""

from __future__ import annotations

import dataclasses
import typing

import numpy as np

from .job import JobExecution


@dataclasses.dataclass(frozen=True)
class UtilizationPoint:
    """Cluster occupancy right after one scheduling event."""

    time: float
    busy: int


@dataclasses.dataclass(frozen=True)
class ScheduleResult:
    """Everything one simulation run produced."""

    policy: str
    system: str
    total_gpus: int
    executions: typing.List[JobExecution]
    utilization: typing.List[UtilizationPoint]
    adjustments: int
    evictions: int = 0

    def _finished(self) -> "list[JobExecution]":
        unfinished = [e for e in self.executions if not e.done]
        if unfinished:
            raise RuntimeError(
                f"{len(unfinished)} jobs never finished under {self.policy}"
            )
        return self.executions

    @property
    def average_jpt(self) -> float:
        """Mean job pending time: start - submit."""
        jobs = self._finished()
        return float(np.mean([e.start_time - e.spec.submit_time for e in jobs]))

    @property
    def average_jct(self) -> float:
        """Mean job completion time: completion - submit."""
        jobs = self._finished()
        return float(
            np.mean([e.completion_time - e.spec.submit_time for e in jobs])
        )

    @property
    def makespan(self) -> float:
        """Last completion minus first submission (the paper uses makespan
        as an indication of resource utilization)."""
        jobs = self._finished()
        first = min(e.spec.submit_time for e in jobs)
        last = max(e.completion_time for e in jobs)
        return last - first

    def average_utilization(self) -> float:
        """Time-averaged fraction of busy GPUs over the makespan."""
        if len(self.utilization) < 2:
            return 0.0
        busy_time = 0.0
        for current, nxt in zip(self.utilization, self.utilization[1:]):
            busy_time += current.busy * (nxt.time - current.time)
        span = self.utilization[-1].time - self.utilization[0].time
        if span <= 0:
            return 0.0
        return busy_time / (span * self.total_gpus)

    def utilization_series(
        self, resolution: float = 600.0
    ) -> "list[tuple[float, float]]":
        """Resampled (time, fraction busy) series for plotting (Fig. 21)."""
        if not self.utilization:
            return []
        points = self.utilization
        start, end = points[0].time, points[-1].time
        series = []
        index = 0
        t = start
        while t <= end:
            while index + 1 < len(points) and points[index + 1].time <= t:
                index += 1
            series.append((t, points[index].busy / self.total_gpus))
            t += resolution
        return series


def summarize(results: typing.Sequence[ScheduleResult]) -> dict:
    """Aggregate repeated runs: mean and std of each headline metric."""
    if not results:
        raise ValueError("no results to summarize")
    jpts = [r.average_jpt for r in results]
    jcts = [r.average_jct for r in results]
    spans = [r.makespan for r in results]
    return {
        "policy": results[0].policy,
        "system": results[0].system,
        "jpt_mean": float(np.mean(jpts)),
        "jpt_std": float(np.std(jpts)),
        "jct_mean": float(np.mean(jcts)),
        "jct_std": float(np.std(jcts)),
        "makespan_mean": float(np.mean(spans)),
        "makespan_std": float(np.std(spans)),
    }
