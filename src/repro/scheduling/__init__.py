"""Elastic DL job scheduling: trace, policies, simulator, metrics (§VI-C)."""

from .adapter import PolicyAdapter
from .costs import (
    AdjustmentCostModel,
    ElanCosts,
    IdealCosts,
    ShutdownRestartCosts,
)
from .job import PER_WORKER_BATCH, JobExecution, JobSpec
from .metrics import ScheduleResult, UtilizationPoint, summarize
from .planning import (
    CapacityPoint,
    capacity_sweep,
    elasticity_hardware_savings,
    required_gpus,
)
from .policies import (
    BackfillPolicy,
    ElasticBackfillPolicy,
    ElasticFifoPolicy,
    FifoPolicy,
    SchedulingPolicy,
)
from .priority import PriorityElasticPolicy
from .simulator import ClusterSimulator
from .srtf import ElasticSrtfPolicy
from .trace import TWO_DAYS, generate_trace
from .traceio import load_trace, save_trace, trace_from_dicts, trace_to_dicts

__all__ = [
    "AdjustmentCostModel",
    "BackfillPolicy",
    "CapacityPoint",
    "ClusterSimulator",
    "ElanCosts",
    "ElasticBackfillPolicy",
    "ElasticFifoPolicy",
    "ElasticSrtfPolicy",
    "FifoPolicy",
    "IdealCosts",
    "JobExecution",
    "JobSpec",
    "PER_WORKER_BATCH",
    "PolicyAdapter",
    "PriorityElasticPolicy",
    "ScheduleResult",
    "SchedulingPolicy",
    "ShutdownRestartCosts",
    "TWO_DAYS",
    "UtilizationPoint",
    "capacity_sweep",
    "elasticity_hardware_savings",
    "generate_trace",
    "load_trace",
    "required_gpus",
    "save_trace",
    "trace_from_dicts",
    "trace_to_dicts",
    "summarize",
]
