"""Synthetic trace generation (paper §VI-C "Trace").

The paper replays a down-sampled two-day trace from a Sensetime production
cluster, scaled to 128 GPUs, with each job assigned one Table I model
configuration; ``min_res``/``max_res`` are set so the model fits in GPU
memory at the minimum and still converges at the maximum.  That trace is
proprietary, so we generate one with the same structure: bursty diurnal
arrivals (the fluctuation visible in the paper's Fig. 1), power-of-two
resource requests skewed toward small jobs, and service demands spanning
minutes to hours.
"""

from __future__ import annotations

import math
import typing

import numpy as np

from ..perfmodel.memory import min_workers_for_batch
from ..perfmodel.models import MODEL_ZOO, ModelSpec
from .job import JobSpec

#: Power-of-two request sizes with production-like skew (most jobs small).
REQUEST_SIZES = (1, 2, 4, 8, 16, 32)
REQUEST_WEIGHTS = (0.20, 0.20, 0.20, 0.18, 0.14, 0.08)

TWO_DAYS = 2 * 24 * 3600.0


def _diurnal_rate(time_of_day: float, base_rate: float) -> float:
    """Arrival intensity at a given second-of-day: busy daytime, quiet
    night — the pattern behind Fig. 1's utilization swings."""
    hours = (time_of_day / 3600.0) % 24.0
    # Peak around 15:00, trough around 03:00.
    return base_rate * (1.0 + 0.85 * math.sin((hours - 9.0) / 24.0 * 2 * math.pi))


def generate_trace(
    num_jobs: int = 210,
    span: float = TWO_DAYS,
    seed: int = 0,
    mean_runtime: float = 3.0 * 3600,
    models: "typing.Sequence[ModelSpec] | None" = None,
) -> "list[JobSpec]":
    """Generate ``num_jobs`` jobs over ``span`` seconds.

    ``mean_runtime`` is the average duration a job would take on its
    requested allocation; actual durations are log-normal around it
    (production DL jobs span minutes to days).
    """
    if num_jobs < 1:
        raise ValueError("num_jobs must be >= 1")
    rng = np.random.default_rng(seed)
    models = list(models or MODEL_ZOO.values())

    # Thinning-based inhomogeneous Poisson arrivals.
    base_rate = num_jobs / span
    peak_rate = base_rate * 1.85
    arrivals: typing.List[float] = []
    t = 0.0
    while len(arrivals) < num_jobs:
        t += rng.exponential(1.0 / peak_rate)
        if t > span:
            # Wrap: keep drawing inside the window (the trace is a sample,
            # not a renewal process; this keeps num_jobs exact).
            t = float(rng.uniform(0, span))
            arrivals.append(t)
            continue
        if rng.uniform() < _diurnal_rate(t, base_rate) / peak_rate:
            arrivals.append(t)
    arrivals.sort()

    jobs = []
    for index, submit in enumerate(arrivals):
        model = models[int(rng.integers(0, len(models)))]
        req = int(rng.choice(REQUEST_SIZES, p=REQUEST_WEIGHTS))
        runtime = float(
            np.clip(rng.lognormal(math.log(mean_runtime), 0.8),
                    10 * 60, 12 * 3600)
        )
        # min_res: the paper's rule — the job's total batch must fit in
        # GPU memory when split over min_res workers; max_res: the model
        # still converges (bounded by the paper's 64-worker ceiling).
        total_batch = req * 32  # one worker per 32 samples of batch
        min_res = min(req, max(1, req // 4,
                               min_workers_for_batch(model, total_batch)))
        max_res = min(64, req * 4)
        spec = JobSpec(
            job_id=f"job{index:04d}",
            model=model,
            submit_time=float(submit),
            work=1.0,  # placeholder; set below from the requested rate
            req_res=req,
            min_res=min_res,
            max_res=max(req, max_res),
        )
        work = runtime * spec.throughput(req)
        jobs.append(
            JobSpec(
                job_id=spec.job_id,
                model=model,
                submit_time=spec.submit_time,
                work=work,
                req_res=req,
                min_res=spec.min_res,
                max_res=spec.max_res,
            )
        )
    return jobs
