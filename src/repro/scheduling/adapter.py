"""The one front door to ``SchedulingPolicy.allocate`` (§VI-C).

Both consumers of a scheduling policy — the discrete-event
:class:`~repro.scheduling.simulator.ClusterSimulator` (simulated
seconds) and the live cluster scheduler service
(:mod:`repro.cluster`, wall clock) — go through :class:`PolicyAdapter`
instead of calling the policy directly.  The adapter pins down the
contract once, so the simulator and the live service cannot drift:

* inputs are :class:`~repro.scheduling.job.JobExecution` views (queued
  jobs at 0 workers, running jobs at their current allocation) plus the
  *current* GPU capacity — which may differ from the nominal cluster
  size under spot churn;
* the output maps ``job_id -> workers`` for every job that should
  (keep) running; jobs absent from the mapping hold 0 workers;
* the adapter validates what every caller must be able to rely on —
  no negative or non-integer allocations, no allocations to jobs the
  policy was never shown — and, optionally, clamps the total to the
  offered capacity (the live scheduler's safety net; the simulator
  keeps its own historical overcommit guard instead).

The live side additionally needs to *build* those executions from live
job records; :meth:`PolicyAdapter.execution` is that one conversion,
so wall-clock state and simulator state take the same shape before the
policy ever sees them.
"""

from __future__ import annotations

import typing

from .job import JobExecution, JobSpec
from .policies import SchedulingPolicy


class PolicyAdapter:
    """Uniform, validated access to one :class:`SchedulingPolicy`."""

    def __init__(self, policy: SchedulingPolicy):
        self.policy = policy

    @property
    def name(self) -> str:
        return self.policy.name

    @property
    def elastic(self) -> bool:
        return bool(self.policy.elastic)

    @staticmethod
    def execution(
        spec: JobSpec, workers: int = 0, work_done: float = 0.0,
        start_time: "float | None" = None,
    ) -> JobExecution:
        """One policy-visible view of a live job.

        The live scheduler measures progress in iterations; converting
        ``iterations_done / iterations_total`` into ``work_done``
        samples here keeps the policy arithmetic (remaining time,
        marginal gain per remaining work) identical to the simulator's.
        """
        return JobExecution(
            spec=spec, workers=workers, work_done=work_done,
            start_time=start_time,
        )

    def target_allocation(
        self,
        now: float,
        queue: "typing.Sequence[JobExecution]",
        running: "typing.Sequence[JobExecution]",
        total_gpus: int,
        clamp: bool = False,
    ) -> "dict[str, int]":
        """Ask the policy for a target allocation and validate it.

        With ``clamp=True`` (the live scheduler) allocations are capped
        at ``total_gpus`` by trimming workers beyond each elastic job's
        ``min_res``, largest allocation first — a defensive floor, not
        a scheduling decision; a policy that overcommits *minimums* is
        still surfaced to the caller (the preemption path owns that).
        """
        if total_gpus < 1:
            raise ValueError("total_gpus must be >= 1")
        known = {job.spec.job_id for job in queue}
        known.update(job.spec.job_id for job in running)
        allocation = dict(self.policy.allocate(
            now, list(queue), list(running), total_gpus
        ))
        for job_id, workers in allocation.items():
            if job_id not in known:
                raise ValueError(
                    f"policy {self.name} allocated to unknown job "
                    f"{job_id!r}"
                )
            if workers != int(workers) or workers < 0:
                raise ValueError(
                    f"policy {self.name} allocated {workers!r} workers "
                    f"to {job_id!r}"
                )
            allocation[job_id] = int(workers)
        if clamp:
            self._clamp(allocation, queue, running, total_gpus)
        return allocation

    def _clamp(
        self, allocation: "dict[str, int]",
        queue: "typing.Sequence[JobExecution]",
        running: "typing.Sequence[JobExecution]",
        total_gpus: int,
    ) -> None:
        by_id = {job.spec.job_id: job for job in list(queue) + list(running)}
        excess = sum(allocation.values()) - total_gpus
        while excess > 0:
            # Trim the largest allocation still above its floor.
            candidates = [
                (workers, job_id) for job_id, workers in allocation.items()
                if workers > by_id[job_id].spec.min_res
            ]
            if not candidates:
                break  # minimums alone overcommit: the caller must evict
            _workers, job_id = max(candidates)
            allocation[job_id] -= 1
            excess -= 1
