"""Capacity planning: what-if sweeps over the scheduling simulator.

Answers the operator questions the paper's §VI-C motivates — how many
GPUs does a workload need under each policy to hit a completion-time
target, and what does elasticity save in hardware?  Each sweep replays
one trace across cluster sizes and reports the smallest cluster meeting
the target.
"""

from __future__ import annotations

import dataclasses
import typing

from .costs import AdjustmentCostModel, ElanCosts
from .job import JobSpec
from .metrics import ScheduleResult
from .policies import SchedulingPolicy
from .simulator import ClusterSimulator


@dataclasses.dataclass(frozen=True)
class CapacityPoint:
    """One cluster size's outcome in a sweep."""

    gpus: int
    average_jct: float
    average_jpt: float
    makespan: float
    utilization: float


def capacity_sweep(
    trace: typing.Sequence[JobSpec],
    policy: SchedulingPolicy,
    gpu_counts: typing.Sequence[int],
    costs: "AdjustmentCostModel | None" = None,
) -> "list[CapacityPoint]":
    """Replay ``trace`` under ``policy`` at each cluster size."""
    if not gpu_counts:
        raise ValueError("no cluster sizes to sweep")
    points = []
    for gpus in sorted(set(gpu_counts)):
        result: ScheduleResult = ClusterSimulator(
            trace, policy, total_gpus=gpus, costs=costs or ElanCosts()
        ).run()
        points.append(
            CapacityPoint(
                gpus=gpus,
                average_jct=result.average_jct,
                average_jpt=result.average_jpt,
                makespan=result.makespan,
                utilization=result.average_utilization(),
            )
        )
    return points


def required_gpus(
    trace: typing.Sequence[JobSpec],
    policy: SchedulingPolicy,
    jct_target: float,
    gpu_counts: typing.Sequence[int],
    costs: "AdjustmentCostModel | None" = None,
) -> "int | None":
    """Smallest swept cluster whose average JCT meets ``jct_target``.

    Returns ``None`` if even the largest swept cluster misses the target.
    """
    if jct_target <= 0:
        raise ValueError("jct_target must be positive")
    feasible = [
        point.gpus
        for point in capacity_sweep(trace, policy, gpu_counts, costs)
        if point.average_jct <= jct_target
    ]
    return min(feasible) if feasible else None


def elasticity_hardware_savings(
    trace: typing.Sequence[JobSpec],
    static_policy: SchedulingPolicy,
    elastic_policy: SchedulingPolicy,
    jct_target: float,
    gpu_counts: typing.Sequence[int],
) -> "dict[str, int | None]":
    """GPUs each policy needs for the same JCT target.

    The headline operator's number: elasticity typically reaches the same
    service level on a visibly smaller cluster.
    """
    return {
        static_policy.name: required_gpus(
            trace, static_policy, jct_target, gpu_counts
        ),
        elastic_policy.name: required_gpus(
            trace, elastic_policy, jct_target, gpu_counts
        ),
    }
