"""An extension beyond the paper: SRTF-ordered elastic scheduling.

The paper's §VI-C closes with "a more complicated scheduling policy is
out of the scope of this paper, we leave it for future work."  This
module provides one such policy: admission and the marginal-gain
tie-breaking favour the job with the *shortest remaining service time*
(SRTF), the classic average-JCT-optimal discipline, adapted to elastic
allocations:

* queued jobs are admitted in increasing remaining-time order (estimated
  at ``req_res``), subject to the same min_res feasibility rule;
* the greedy worker distribution divides each job's marginal throughput
  gain by its remaining work, so a worker goes where it buys the largest
  *completion-time* reduction rather than the largest raw throughput.

The ablation benchmark compares it against E-FIFO on the same traces.
"""

from __future__ import annotations

from .job import JobExecution
from .policies import SchedulingPolicy


class ElasticSrtfPolicy(SchedulingPolicy):
    """Elastic scheduling with shortest-remaining-time-first ordering."""

    name = "e-srtf"
    elastic = True

    def allocate(self, now, queue, running, total_gpus):
        def remaining(job: JobExecution) -> float:
            rate = job.spec.throughput(job.spec.req_res)
            return job.remaining_work / rate

        admitted = list(running)
        floor = sum(job.spec.min_res for job in admitted)
        for job in sorted(queue, key=remaining):
            if floor + job.spec.min_res <= total_gpus:
                admitted.append(job)
                floor += job.spec.min_res
        allocation = {job.spec.job_id: job.spec.min_res for job in admitted}
        free = total_gpus - sum(allocation.values())
        by_id = {job.spec.job_id: job for job in admitted}
        while free > 0:
            best_id, best_score = None, 0.0
            for job_id, workers in allocation.items():
                job = by_id[job_id]
                if workers >= job.spec.max_res:
                    continue
                gain = job.spec.marginal_gain(workers)
                if gain <= 0:
                    continue
                # Completion-time leverage: throughput gained per unit of
                # remaining work — small jobs near the finish line win.
                score = gain / max(1.0, job.remaining_work)
                if score > best_score:
                    best_id, best_score = job_id, score
            if best_id is None:
                break
            allocation[best_id] += 1
            free -= 1
        return allocation
