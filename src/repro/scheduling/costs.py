"""Per-system adjustment costs and overheads for the scheduler (Fig. 22).

The §VI-C2 comparison runs the same elastic policy under three systems:
*Ideal* (zero-cost, instantaneous elasticity), *Elan* and *S&R*.  The
simulator charges each resource adjustment a downtime sampled from the
corresponding timing model and multiplies throughput by (1 - runtime
overhead).
"""

from __future__ import annotations

import typing

from ..baselines.timing import (
    ElanAdjustmentModel,
    ShutdownRestartModel,
    runtime_overhead_fraction,
)
from ..perfmodel.models import ModelSpec


class AdjustmentCostModel:
    """Interface: downtime charged for one resource adjustment."""

    name = "abstract"

    def downtime(
        self, model: ModelSpec, old_workers: int, new_workers: int
    ) -> float:
        """Seconds the job pauses for this adjustment."""
        raise NotImplementedError

    def overhead_factor(self, model: ModelSpec, workers: int) -> float:
        """Steady-state throughput multiplier (1.0 = no overhead)."""
        return 1.0


class IdealCosts(AdjustmentCostModel):
    """The paper's 'Ideal': free, instantaneous elasticity."""

    name = "ideal"

    def downtime(self, model, old_workers, new_workers) -> float:
        return 0.0


class ElanCosts(AdjustmentCostModel):
    """Elan: sub-second adjustments, per-mille runtime overhead."""

    name = "elan"

    def __init__(self, seed: int = 0):
        self._model = ElanAdjustmentModel(seed=seed)
        self._cache: typing.Dict[tuple, float] = {}

    def downtime(self, model, old_workers, new_workers) -> float:
        if new_workers == old_workers:
            return 0.0
        kind = "scale_out" if new_workers > old_workers else "scale_in"
        key = (kind, model.name, old_workers, new_workers)
        if key not in self._cache:
            self._cache[key] = self._model.adjustment_time(
                kind, model, old_workers, new_workers
            ).total
        return self._cache[key]

    def overhead_factor(self, model, workers) -> float:
        return 1.0 - runtime_overhead_fraction(model, max(1, workers))


class ShutdownRestartCosts(AdjustmentCostModel):
    """S&R: every adjustment pays checkpoint + restart (tens of seconds)."""

    name = "sr"

    def __init__(self, seed: int = 0):
        self._model = ShutdownRestartModel(seed=seed)
        self._cache: typing.Dict[tuple, float] = {}

    def downtime(self, model, old_workers, new_workers) -> float:
        if new_workers == old_workers:
            return 0.0
        kind = "scale_out" if new_workers > old_workers else "scale_in"
        key = (kind, model.name, old_workers, new_workers)
        if key not in self._cache:
            self._cache[key] = self._model.adjustment_time(
                kind, model, old_workers, new_workers
            ).total
        return self._cache[key]

    def overhead_factor(self, model, workers) -> float:
        # Same coordination overhead as Elan when idle (§VI-A1).
        return 1.0 - runtime_overhead_fraction(model, max(1, workers))
