"""Trace serialization: save/load scheduling traces as JSON.

Lets users pin a generated trace to disk (for exact cross-run
comparisons, sharing, or hand-editing) and replay external traces through
the simulator, as long as each job names a Table I model.
"""

from __future__ import annotations

import json
import pathlib
import typing

from ..perfmodel.models import get_model
from .job import JobSpec


def trace_to_dicts(jobs: typing.Sequence[JobSpec]) -> "list[dict]":
    """Plain-dict form of a trace (stable key order for diffs)."""
    return [
        {
            "job_id": job.job_id,
            "model": job.model.name,
            "submit_time": job.submit_time,
            "work": job.work,
            "req_res": job.req_res,
            "min_res": job.min_res,
            "max_res": job.max_res,
            "priority": job.priority,
        }
        for job in jobs
    ]


def trace_from_dicts(records: typing.Sequence[dict]) -> "list[JobSpec]":
    """Rebuild a trace; validates resource bounds and model names."""
    jobs = []
    for record in records:
        missing = {
            "job_id", "model", "submit_time", "work",
            "req_res", "min_res", "max_res",
        } - set(record)
        if missing:
            raise ValueError(
                f"trace record {record.get('job_id', '?')!r} is missing "
                f"fields: {sorted(missing)}"
            )
        jobs.append(
            JobSpec(
                job_id=record["job_id"],
                model=get_model(record["model"]),
                submit_time=float(record["submit_time"]),
                work=float(record["work"]),
                req_res=int(record["req_res"]),
                min_res=int(record["min_res"]),
                max_res=int(record["max_res"]),
                priority=int(record.get("priority", 0)),
            )
        )
    jobs.sort(key=lambda j: j.submit_time)
    return jobs


def save_trace(jobs: typing.Sequence[JobSpec], path: "str | pathlib.Path") -> None:
    """Write a trace to a JSON file."""
    payload = {"format": "repro-elan-trace-v1", "jobs": trace_to_dicts(jobs)}
    pathlib.Path(path).write_text(json.dumps(payload, indent=2))


def load_trace(path: "str | pathlib.Path") -> "list[JobSpec]":
    """Read a trace from a JSON file written by :func:`save_trace`."""
    payload = json.loads(pathlib.Path(path).read_text())
    if payload.get("format") != "repro-elan-trace-v1":
        raise ValueError(
            f"{path}: not a repro-elan trace "
            f"(format={payload.get('format')!r})"
        )
    return trace_from_dicts(payload["jobs"])
