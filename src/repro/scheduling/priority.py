"""Priority-aware elastic scheduling with preemption (extension).

The paper notes that "local training clusters can exploit elasticity to
provide preemption, migration and over-subscription" (§VI-C).  This
policy realizes the preemption part on top of the elastic machinery:

* admission considers higher-priority jobs first;
* high-priority jobs are topped up toward ``req_res`` *before* any
  marginal-gain distribution — when a high-priority job arrives, running
  low-priority jobs shrink toward ``min_res`` at the next scheduling
  event (an Elan scale-in, costing well under a second, instead of a
  kill);
* leftover GPUs then flow by marginal gain as in the base policy.
"""

from __future__ import annotations

from .policies import SchedulingPolicy


class PriorityElasticPolicy(SchedulingPolicy):
    """Elastic scheduling with priority classes and soft preemption."""

    name = "e-priority"
    elastic = True

    def allocate(self, now, queue, running, total_gpus):
        def rank(job):
            return (-job.spec.priority, job.spec.submit_time, job.spec.job_id)

        admitted = list(running)
        floor = sum(job.spec.min_res for job in admitted)
        for job in sorted(queue, key=rank):
            if floor + job.spec.min_res <= total_gpus:
                admitted.append(job)
                floor += job.spec.min_res
        allocation = {job.spec.job_id: job.spec.min_res for job in admitted}
        free = total_gpus - sum(allocation.values())
        by_id = {job.spec.job_id: job for job in admitted}

        # Guarantee pass: top priority classes reach req_res first.
        for job in sorted(admitted, key=rank):
            if free <= 0:
                break
            want = min(job.spec.req_res, job.spec.max_res)
            grant = min(free, max(0, want - allocation[job.spec.job_id]))
            allocation[job.spec.job_id] += grant
            free -= grant

        # Marginal-gain pass over the remainder (same rule as E-FIFO).
        while free > 0:
            best_id, best_gain = None, 0.0
            for job_id, workers in allocation.items():
                job = by_id[job_id]
                if workers >= job.spec.max_res:
                    continue
                gain = job.spec.marginal_gain(workers)
                if gain > best_gain:
                    best_id, best_gain = job_id, gain
            if best_id is None:
                break
            allocation[best_id] += 1
            free -= 1
        return allocation
