"""The cluster scheduling simulator (paper §VI-C "Simulation").

An exact event-driven simulator: between events every running job accrues
work at its model-derived throughput; events are job arrivals and job
completions, and every event triggers the scheduling policy.  Allocation
changes on a running job are charged the per-system adjustment downtime
(Elan / S&R / Ideal) — the mechanism behind the Fig. 22 comparison — and
steady-state throughput is scaled by the per-system runtime overhead.

The paper's simulator is likewise trace-driven with measured throughputs,
runtime overheads and adjustment costs.
"""

from __future__ import annotations

import typing

from .adapter import PolicyAdapter
from .costs import AdjustmentCostModel, IdealCosts
from .job import JobExecution, JobSpec
from .metrics import ScheduleResult, UtilizationPoint
from .policies import SchedulingPolicy

_EPSILON = 1e-6


class ClusterSimulator:
    """Simulate one policy executing one trace on one cluster."""

    def __init__(
        self,
        jobs: typing.Sequence[JobSpec],
        policy: SchedulingPolicy,
        total_gpus: int = 128,
        costs: "AdjustmentCostModel | None" = None,
        capacity_profile: "typing.Sequence[tuple] | None" = None,
        tracer: "typing.Any | None" = None,
    ):
        """``capacity_profile`` models transient capacity (spot instances,
        over-subscription, §VI-C): a step function as sorted
        ``(time, gpus)`` points; before the first point the capacity is
        ``total_gpus``.  When capacity drops below current usage, elastic
        jobs are shrunk by their policy; if usage still exceeds capacity
        (static policies cannot shrink), the newest-started jobs are
        preempted back to the queue (progress preserved — checkpoint-on-
        preempt) and counted in ``evictions``."""
        if total_gpus < 1:
            raise ValueError("total_gpus must be >= 1")
        self.capacity_profile = sorted(capacity_profile or [])
        for _t, gpus in self.capacity_profile:
            if gpus < 1:
                raise ValueError("capacity must stay >= 1")
        oversized = [
            j.job_id for j in jobs
            if (j.min_res if policy.elastic else j.req_res) > total_gpus
        ]
        if oversized:
            raise ValueError(f"jobs can never fit: {oversized}")
        self.jobs = sorted(jobs, key=lambda j: j.submit_time)
        self.policy = policy
        #: The policy is only ever consulted through the shared
        #: :class:`PolicyAdapter` — the same seam the live cluster
        #: scheduler uses, so simulated and live allocation decisions
        #: cannot drift apart.
        self.adapter = PolicyAdapter(policy)
        self.total_gpus = total_gpus
        self.costs = costs or IdealCosts()
        self.adjustments = 0
        self.evictions = 0
        #: Optional :class:`~repro.observability.Tracer`: per-job
        #: allocation events (start / adjust / evict / run span) plus a
        #: ``cluster.busy_gpus`` counter land on simulated time.
        self.tracer = tracer

    def run(self) -> ScheduleResult:
        """Execute the trace to completion and return the metrics."""
        executions = {job.job_id: JobExecution(spec=job) for job in self.jobs}
        arrivals = list(self.jobs)  # sorted by submit time
        queue: "list[JobExecution]" = []
        running: "list[JobExecution]" = []
        utilization: "list[UtilizationPoint]" = []
        now = self.jobs[0].submit_time if self.jobs else 0.0
        arrival_index = 0

        def advance_to(target: float) -> None:
            nonlocal now
            for job in running:
                effective_start = max(now, job.paused_until)
                if effective_start >= target or job.workers <= 0:
                    continue
                rate = job.spec.throughput(job.workers) * (
                    self.costs.overhead_factor(job.spec.model, job.workers)
                )
                job.work_done += (target - effective_start) * rate
            now = target

        def busy_gpus() -> int:
            return sum(job.workers for job in running)

        def record_utilization() -> None:
            point = UtilizationPoint(time=now, busy=busy_gpus())
            if utilization and utilization[-1].time == now:
                utilization[-1] = point
            else:
                utilization.append(point)
            if self.tracer is not None:
                self.tracer.add_counter("cluster.busy_gpus", now, point.busy,
                                        track="cluster")

        def complete_finished() -> None:
            for job in list(running):
                if job.remaining_work <= _EPSILON * job.spec.work:
                    job.completion_time = now
                    if self.tracer is not None:
                        self.tracer.add_span(
                            "job.run", job.start_time, now,
                            track=job.spec.job_id, cat="schedule",
                            workers=job.workers,
                            adjustments=job.adjustments,
                        )
                    job.workers = 0
                    running.remove(job)

        def apply_allocation(target: "dict[str, int]") -> None:
            for job in list(queue):
                workers = target.get(job.spec.job_id, 0)
                if workers > 0:
                    job.workers = workers
                    job.start_time = now if job.start_time is None else job.start_time
                    queue.remove(job)
                    running.append(job)
                    if self.tracer is not None:
                        self.tracer.add_instant(
                            "job.start", now, track=job.spec.job_id,
                            cat="schedule", workers=workers,
                        )
            for job in running:
                workers = target.get(job.spec.job_id, job.workers)
                if workers != job.workers:
                    downtime = self.costs.downtime(
                        job.spec.model, job.workers, workers
                    )
                    if self.tracer is not None:
                        self.tracer.add_instant(
                            "job.adjust", now, track=job.spec.job_id,
                            cat="schedule", old_workers=job.workers,
                            new_workers=workers, downtime=downtime,
                        )
                    job.paused_until = max(job.paused_until, now + downtime)
                    job.workers = workers
                    job.adjustments += 1
                    self.adjustments += 1
            limit = max(self.total_gpus,
                        max((g for _t, g in self.capacity_profile),
                            default=self.total_gpus))
            overcommit = sum(job.workers for job in running)
            if overcommit > limit:
                raise RuntimeError(
                    f"policy {self.policy.name} overcommitted: "
                    f"{overcommit} > {limit}"
                )

        def capacity_at(when: float) -> int:
            capacity = self.total_gpus
            for change_time, gpus in self.capacity_profile:
                if change_time <= when:
                    capacity = gpus
                else:
                    break
            return capacity

        def evict_to_fit(capacity: int) -> None:
            # Newest-started first: the classic spot-preemption order.
            for job in sorted(
                running,
                key=lambda j: (j.start_time or 0.0),
                reverse=True,
            ):
                if sum(j.workers for j in running) <= capacity:
                    return
                job.workers = 0
                running.remove(job)
                # Re-queue in submit order so FIFO semantics survive.
                queue.append(job)
                queue.sort(key=lambda j: j.spec.submit_time)
                self.evictions += 1
                if self.tracer is not None:
                    self.tracer.add_instant(
                        "job.evicted", now, track=job.spec.job_id,
                        cat="schedule",
                    )

        def next_event_time() -> float:
            candidates = []
            if arrival_index < len(arrivals):
                candidates.append(arrivals[arrival_index].submit_time)
            for change_time, _gpus in self.capacity_profile:
                if change_time > now + _EPSILON:
                    candidates.append(change_time)
                    break
            for job in running:
                eta = self._eta_with_overhead(job, now)
                if eta < float("inf"):
                    candidates.append(eta)
            return min(candidates) if candidates else float("inf")

        while arrival_index < len(arrivals) or running or queue:
            target = next_event_time()
            if target == float("inf"):
                if queue and not running:
                    raise RuntimeError(
                        f"policy {self.policy.name} deadlocked with "
                        f"{len(queue)} queued jobs and an empty cluster"
                    )
                break
            advance_to(max(now, target))
            while (
                arrival_index < len(arrivals)
                and arrivals[arrival_index].submit_time <= now + _EPSILON
            ):
                queue.append(executions[arrivals[arrival_index].job_id])
                arrival_index += 1
            complete_finished()
            capacity = capacity_at(now)
            apply_allocation(
                self.adapter.target_allocation(now, queue, running, capacity)
            )
            evict_to_fit(capacity)
            record_utilization()

        return ScheduleResult(
            policy=self.policy.name,
            system=self.costs.name,
            total_gpus=self.total_gpus,
            executions=list(executions.values()),
            utilization=utilization,
            adjustments=self.adjustments,
            evictions=self.evictions,
        )

    def _eta_with_overhead(self, job: JobExecution, now: float) -> float:
        """Completion estimate including the system's runtime overhead."""
        if job.done or not job.running:
            return float("inf")
        rate = job.spec.throughput(job.workers) * self.costs.overhead_factor(
            job.spec.model, job.workers
        )
        if rate <= 0:
            return float("inf")
        start = max(now, job.paused_until)
        return start + job.remaining_work / rate
