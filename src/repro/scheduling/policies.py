"""Scheduling policies: FIFO, Backfill, and their elastic variants (§VI-C).

The static policies give every job exactly ``req_res`` workers for its
whole life.  The elastic policies implement the paper's simple rules:

* **admission** — a queued job may start if the cluster can hold the
  minimum allocations of every running job plus this one;
* **allocation** — every admitted job first gets ``min_res`` workers, then
  single workers go to whichever job has the highest marginal throughput
  gain (the Optimus-style gain), until GPUs, ``max_res`` caps or positive
  gains run out.

E-FIFO admits strictly in arrival order; E-BF also admits jobs behind a
blocked head (backfill).
"""

from __future__ import annotations

import typing

from .job import JobExecution


class SchedulingPolicy:
    """Interface: map cluster state to a target allocation."""

    name = "abstract"
    elastic = False

    def allocate(
        self,
        now: float,
        queue: "list[JobExecution]",
        running: "list[JobExecution]",
        total_gpus: int,
    ) -> "dict[str, int]":
        """Return {job_id: workers} for every job that should (keep)
        running.  Jobs absent from the mapping stay/queue at 0 workers."""
        raise NotImplementedError


def _static_backfill_candidates(
    now: float,
    queue: "list[JobExecution]",
    running: "list[JobExecution]",
    free: int,
) -> "list[tuple[JobExecution, int]]":
    """EASY backfill: which queued jobs may start without delaying the
    blocked head job's reservation."""
    if not queue:
        return []
    head = queue[0]
    starts: "list[tuple[JobExecution, int]]" = []
    if head.spec.req_res <= free:
        starts.append((head, head.spec.req_res))
        return starts  # caller loops; only safe immediate starts here
    # Build the head's reservation from running jobs' completion estimates.
    horizon = sorted(
        ((job.eta(now), job.workers) for job in running), key=lambda e: e[0]
    )
    available = free
    shadow_time = float("inf")
    for eta, workers in horizon:
        available += workers
        if available >= head.spec.req_res:
            shadow_time = eta
            break
    spare_after_head = max(0, available - head.spec.req_res)
    budget = free
    for job in queue[1:]:
        req = job.spec.req_res
        if req > budget:
            continue
        finishes_in_time = now + job.spec.duration_at(req) <= shadow_time
        fits_spare = req <= spare_after_head
        if finishes_in_time or fits_spare:
            starts.append((job, req))
            budget -= req
            if fits_spare:
                spare_after_head -= req
    return starts


class FifoPolicy(SchedulingPolicy):
    """Static first-in-first-out: the head blocks the queue."""

    name = "fifo"

    def allocate(self, now, queue, running, total_gpus):
        allocation = {job.spec.job_id: job.workers for job in running}
        free = total_gpus - sum(allocation.values())
        for job in queue:
            if job.spec.req_res <= free:
                allocation[job.spec.job_id] = job.spec.req_res
                free -= job.spec.req_res
            else:
                break  # FIFO: nobody overtakes the head
        return allocation


class BackfillPolicy(SchedulingPolicy):
    """Static EASY backfill (Slurm's default, the paper's BF baseline)."""

    name = "bf"

    def allocate(self, now, queue, running, total_gpus):
        allocation = {job.spec.job_id: job.workers for job in running}
        free = total_gpus - sum(allocation.values())
        pending = list(queue)
        # Start jobs FIFO while they fit.
        while pending and pending[0].spec.req_res <= free:
            job = pending.pop(0)
            allocation[job.spec.job_id] = job.spec.req_res
            free -= job.spec.req_res
        if pending:
            started_running = list(running) + [
                job for job in queue if job.spec.job_id in allocation
                and job not in running
            ]
            for job, workers in _static_backfill_candidates(
                now, pending, started_running, free
            ):
                if workers <= free:
                    allocation[job.spec.job_id] = workers
                    free -= workers
        return allocation


class _ElasticBase(SchedulingPolicy):
    """Shared admission + marginal-gain allocation of the elastic rules."""

    elastic = True
    skip_blocked_head = False

    def allocate(self, now, queue, running, total_gpus):
        admitted = list(running)
        floor = sum(job.spec.min_res for job in admitted)
        for job in queue:
            if floor + job.spec.min_res <= total_gpus:
                admitted.append(job)
                floor += job.spec.min_res
            elif not self.skip_blocked_head:
                break
        # Allocation rule: min_res floor, then greedy marginal gain.
        allocation = {job.spec.job_id: job.spec.min_res for job in admitted}
        free = total_gpus - sum(allocation.values())
        by_id = {job.spec.job_id: job for job in admitted}
        while free > 0:
            best_id, best_gain = None, 0.0
            for job_id, workers in allocation.items():
                job = by_id[job_id]
                if workers >= job.spec.max_res:
                    continue
                gain = job.spec.marginal_gain(workers)
                if gain > best_gain:
                    best_id, best_gain = job_id, gain
            if best_id is None:
                break  # no positive marginal gain anywhere
            allocation[best_id] += 1
            free -= 1
        return allocation


class ElasticFifoPolicy(_ElasticBase):
    """E-FIFO: elastic admission in strict arrival order."""

    name = "e-fifo"
    skip_blocked_head = False


class ElasticBackfillPolicy(_ElasticBase):
    """E-BF: elastic admission that may overtake a blocked head."""

    name = "e-bf"
    skip_blocked_head = True
