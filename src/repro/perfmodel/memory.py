"""GPU memory-footprint model.

The paper's scheduling experiment sets each job's ``min_res`` so that
"the model can fit in GPU memory with min_res workers" (§VI-C): a fixed
total batch split over too few workers overflows each GPU with
activations.  This module models the footprint —

    footprint(b) = framework overhead + parameters + gradients
                   + optimizer state + b * activation bytes per sample

— and derives the largest per-worker batch and the smallest worker count
that fit on the testbed's 11 GB GeForce 1080Ti.
"""

from __future__ import annotations

import math

from .models import ModelSpec

#: GeForce 1080Ti device memory (public spec).
GPU_MEMORY_BYTES = 11 * 1024**3

#: CUDA context + framework workspace (cuDNN handles, allocator slack).
FRAMEWORK_OVERHEAD_BYTES = int(1.0 * 1024**3)

#: Per-sample activation footprints (fp32 training, standard input sizes:
#: 224x224 crops for the CNNs, typical sequence lengths for the NLP
#: models).  Derived from layer-size sums of the published architectures.
ACTIVATION_BYTES_PER_SAMPLE = {
    "ResNet-50": 120 * 1024**2,
    "VGG-19": 150 * 1024**2,
    "MobileNet-v2": 25 * 1024**2,
    "Seq2Seq": 40 * 1024**2,
    "Transformer": 60 * 1024**2,
}


def activation_bytes(model: ModelSpec, batch_per_worker: float) -> int:
    """Activation memory for one worker's micro-batch."""
    if batch_per_worker < 0:
        raise ValueError("batch must be non-negative")
    per_sample = ACTIVATION_BYTES_PER_SAMPLE.get(model.name)
    if per_sample is None:
        raise KeyError(f"no activation calibration for {model.name!r}")
    return int(batch_per_worker * per_sample)


def memory_footprint(model: ModelSpec, batch_per_worker: float) -> int:
    """Total GPU bytes one worker needs at this micro-batch."""
    gradients = model.param_bytes  # one gradient per parameter
    return (
        FRAMEWORK_OVERHEAD_BYTES
        + model.gpu_state_bytes  # params + optimizer (Table II)
        + gradients
        + activation_bytes(model, batch_per_worker)
    )


def max_batch_per_worker(
    model: ModelSpec, gpu_memory: int = GPU_MEMORY_BYTES
) -> int:
    """Largest micro-batch that fits on one GPU."""
    fixed = memory_footprint(model, 0)
    if fixed >= gpu_memory:
        raise ValueError(
            f"{model.name} does not fit on a {gpu_memory / 1024**3:.0f} GB GPU "
            "even at batch 0"
        )
    per_sample = ACTIVATION_BYTES_PER_SAMPLE[model.name]
    return max(1, (gpu_memory - fixed) // per_sample)


def min_workers_for_batch(
    model: ModelSpec, total_batch_size: int, gpu_memory: int = GPU_MEMORY_BYTES
) -> int:
    """Smallest worker count whose per-worker share fits in GPU memory —
    the paper's min_res rule."""
    if total_batch_size < 1:
        raise ValueError("total batch must be >= 1")
    fixed = memory_footprint(model, 0)
    if fixed >= gpu_memory:
        raise ValueError(
            f"{model.name} does not fit on a {gpu_memory / 1024**3:.0f} GB GPU"
        )
    activation_budget = gpu_memory - fixed
    per_sample = ACTIVATION_BYTES_PER_SAMPLE[model.name]
    # Exact minimality: workers * budget must cover the whole batch's
    # activations (per-worker micro-batches may be fractional shares).
    return max(
        1, math.ceil(total_batch_size * per_sample / activation_budget)
    )


def fits(
    model: ModelSpec,
    workers: int,
    total_batch_size: int,
    gpu_memory: int = GPU_MEMORY_BYTES,
) -> bool:
    """Whether (workers, total batch) is memory-feasible."""
    if workers < 1:
        raise ValueError("workers must be >= 1")
    return memory_footprint(model, total_batch_size / workers) <= gpu_memory
