"""Bandwidth-vs-message-size sweeps (paper Fig. 8).

The paper measures the bandwidth of the three GPU-to-GPU transports —
peer-to-peer DMA (P2P), CPU shared-memory staging (SHM) and the 56 Gbps
InfiniBand network (NET) — across message sizes, finding P2P > SHM > NET
everywhere.  This module regenerates that sweep from the calibrated
:class:`~repro.topology.links.BandwidthProfile`.
"""

from __future__ import annotations

import typing

from ..topology.links import BandwidthProfile, Transport

#: Message sizes the sweep reports, in bytes: 4 KB .. 1 GB, x4 steps —
#: the range Fig. 8 plots.
DEFAULT_SIZES = tuple(4 * 1024 * (4**i) for i in range(10))


def bandwidth_sweep(
    profile: "BandwidthProfile | None" = None,
    sizes: typing.Sequence[int] = DEFAULT_SIZES,
) -> "dict[Transport, list[tuple[int, float]]]":
    """Effective bandwidth of each transport at each message size.

    Returns ``{transport: [(size_bytes, bandwidth_bytes_per_s), ...]}``.
    """
    profile = profile or BandwidthProfile()
    return {
        transport: [
            (size, profile.spec(transport).effective_bandwidth(size))
            for size in sizes
        ]
        for transport in Transport
    }


def verify_figure8_ordering(
    sweep: "dict[Transport, list[tuple[int, float]]] | None" = None,
) -> bool:
    """Check the paper's Fig. 8 invariant: P2P > SHM > NET at every size."""
    sweep = sweep or bandwidth_sweep()
    p2p = dict(sweep[Transport.P2P])
    shm = dict(sweep[Transport.SHM])
    net = dict(sweep[Transport.NET])
    return all(
        p2p[size] > shm[size] > net[size] for size in p2p
    )
