"""Analytic performance models calibrated to the paper's testbed.

Covers the system view (§III-1: strong/weak-scaling throughput, Figs. 3/4/17),
the transport bandwidths (Fig. 8), and the algorithm view (§III-2:
batch-size/accuracy trade-off, Figs. 5/18, Table IV).
"""

from . import calibration
from .bandwidth import DEFAULT_SIZES, bandwidth_sweep, verify_figure8_ordering
from .collectives import (
    best_algorithm,
    hierarchical_allreduce_time,
    ring_allreduce_time,
    tree_allreduce_time,
)
from .convergence import (
    MOBILENETV2_CIFAR100,
    RESNET50_IMAGENET,
    AccuracyModel,
    ConvergenceSpec,
    LrPhase,
    LrPolicy,
)
from .models import (
    MOBILENET_V2,
    MODEL_LABELS,
    MODEL_ZOO,
    RESNET50,
    SEQ2SEQ,
    TRANSFORMER,
    VGG19,
    ModelSpec,
    get_model,
)
from .memory import (
    ACTIVATION_BYTES_PER_SAMPLE,
    GPU_MEMORY_BYTES,
    fits,
    max_batch_per_worker,
    memory_footprint,
    min_workers_for_batch,
)
from .throughput import EVAL_CLUSTER, PAPER_CLUSTER, ClusterSpec, ThroughputModel

__all__ = [
    "ACTIVATION_BYTES_PER_SAMPLE",
    "AccuracyModel",
    "ClusterSpec",
    "ConvergenceSpec",
    "DEFAULT_SIZES",
    "EVAL_CLUSTER",
    "GPU_MEMORY_BYTES",
    "LrPhase",
    "LrPolicy",
    "MOBILENETV2_CIFAR100",
    "MOBILENET_V2",
    "MODEL_LABELS",
    "MODEL_ZOO",
    "PAPER_CLUSTER",
    "RESNET50",
    "RESNET50_IMAGENET",
    "SEQ2SEQ",
    "TRANSFORMER",
    "ThroughputModel",
    "VGG19",
    "bandwidth_sweep",
    "best_algorithm",
    "calibration",
    "fits",
    "hierarchical_allreduce_time",
    "max_batch_per_worker",
    "memory_footprint",
    "min_workers_for_batch",
    "ring_allreduce_time",
    "tree_allreduce_time",
    "get_model",
    "verify_figure8_ordering",
]
