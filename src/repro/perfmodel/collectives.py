"""Analytic models of collective-communication algorithms.

Elan targets data-parallel training with collective communication; the
choice of allreduce algorithm shapes the strong/weak scaling curves the
hybrid scaling mechanism reads.  Three standard algorithms are modelled
(latency `a` per step, bandwidth `B`, message `S`, workers `N`):

* **ring** — 2(N-1) steps moving S/N each: t = 2(N-1)a + 2S(N-1)/(NB).
  Bandwidth-optimal; latency grows linearly with the ring.
* **tree** (binomial reduce + broadcast) — 2·ceil(log2 N) steps moving the
  full S: t = 2a·log2(N) + 2S·log2(N)/B.  Latency-optimal for small
  messages; wastes bandwidth on large ones.
* **hierarchical** — intra-node ring, inter-node ring over node leaders,
  intra-node broadcast: the standard multi-node layout that avoids
  dragging every rank's traffic over the network.

An ablation benchmark compares them; the throughput model's built-in ring
assumption matches the paper's NCCL-era setting.
"""

from __future__ import annotations

import math

from . import calibration


def ring_allreduce_time(
    workers: int,
    size: int,
    bandwidth: float,
    hop_latency: float = calibration.ALLREDUCE_HOP_LATENCY,
) -> float:
    """Ring allreduce: bandwidth-optimal, latency linear in ring length."""
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if workers == 1:
        return 0.0
    steps = 2 * (workers - 1)
    volume = 2.0 * (workers - 1) / workers * size
    return steps * hop_latency + volume / bandwidth


def tree_allreduce_time(
    workers: int,
    size: int,
    bandwidth: float,
    hop_latency: float = calibration.ALLREDUCE_HOP_LATENCY,
) -> float:
    """Binomial-tree reduce + broadcast: log-latency, full-size transfers."""
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if workers == 1:
        return 0.0
    depth = math.ceil(math.log2(workers))
    return 2 * depth * (hop_latency + size / bandwidth)


def hierarchical_allreduce_time(
    workers: int,
    size: int,
    intra_bandwidth: float = calibration.INTRA_NODE_BUS_BANDWIDTH,
    inter_bandwidth: float = calibration.INTER_NODE_BUS_BANDWIDTH,
    gpus_per_node: int = calibration.GPUS_PER_NODE,
    hop_latency: float = calibration.ALLREDUCE_HOP_LATENCY,
) -> float:
    """Two-level allreduce: intra-node rings + one inter-node ring.

    Phase 1: each node ring-reduces locally; phase 2: node leaders
    ring-allreduce over the network; phase 3: leaders broadcast locally.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if workers == 1:
        return 0.0
    local = min(workers, gpus_per_node)
    nodes = math.ceil(workers / gpus_per_node)
    intra_reduce = ring_allreduce_time(
        local, size, intra_bandwidth, hop_latency
    ) / 2.0  # reduce only (half of an allreduce's volume/steps)
    inter = ring_allreduce_time(nodes, size, inter_bandwidth, hop_latency)
    intra_broadcast = intra_reduce
    return intra_reduce + inter + intra_broadcast


def best_algorithm(
    workers: int,
    size: int,
    bandwidth: float,
    hop_latency: float = calibration.ALLREDUCE_HOP_LATENCY,
) -> str:
    """Which flat algorithm wins for this (workers, size) point."""
    ring = ring_allreduce_time(workers, size, bandwidth, hop_latency)
    tree = tree_allreduce_time(workers, size, bandwidth, hop_latency)
    return "ring" if ring <= tree else "tree"
