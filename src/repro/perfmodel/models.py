"""The model zoo of paper Table I.

Each entry records the model's architectural scale (parameter count, FLOPs
per training sample) and the sizes of its training state (paper Table II:
model parameters and optimizer state on GPU; data-loading and runtime state
on CPU).  Parameter counts come from Table I; FLOPs per sample are the
standard published figures (forward+backward ~= 3x forward).
"""

from __future__ import annotations

import dataclasses
import typing

from . import calibration

BYTES_PER_PARAM = 4  # fp32


@dataclasses.dataclass(frozen=True)
class ModelSpec:
    """Static description of one deep-learning model (paper Table I)."""

    name: str
    family: str  # CNN / RNN / Attention
    domain: str  # CV / NLP
    parameters: int  # number of trainable parameters
    dataset: str
    dataset_size: int  # training samples
    flops_per_sample: float  # forward+backward FLOPs for one sample
    #: Per-worker batch size at which the GPU reaches half its max
    #: efficiency; smaller values mean the model saturates the GPU easily.
    saturation_batch: float
    #: Momentum-SGD keeps one extra fp32 buffer per parameter.
    optimizer_slots: int = 1

    @property
    def param_bytes(self) -> int:
        """Size of the fp32 parameter tensor in bytes."""
        return self.parameters * BYTES_PER_PARAM

    @property
    def optimizer_bytes(self) -> int:
        """Size of the optimizer state (momentum buffers) in bytes."""
        return self.parameters * BYTES_PER_PARAM * self.optimizer_slots

    @property
    def gpu_state_bytes(self) -> int:
        """Bytes of training state resident in GPU memory (Table II)."""
        return self.param_bytes + self.optimizer_bytes

    @property
    def cpu_state_bytes(self) -> int:
        """Bytes of CPU-resident state: data-loader offset, RNG, epoch and
        iteration counters, hyperparameters (Table II: 'quite small')."""
        return 4096

    @property
    def gradient_bytes(self) -> int:
        """Bytes all-reduced per iteration (one fp32 gradient per param)."""
        return self.parameters * BYTES_PER_PARAM


#: Paper Table I (parameter counts as printed; ResNet-50 = 26M standard).
RESNET50 = ModelSpec(
    name="ResNet-50",
    family="CNN",
    domain="CV",
    parameters=26_000_000,
    dataset="ImageNet",
    dataset_size=calibration.IMAGENET_TRAIN_SIZE,
    flops_per_sample=12.4e9,  # ~4.1 GFLOPs forward x3
    saturation_batch=12.0,
)

VGG19 = ModelSpec(
    name="VGG-19",
    family="CNN",
    domain="CV",
    parameters=143_000_000,
    dataset="ImageNet",
    dataset_size=calibration.IMAGENET_TRAIN_SIZE,
    flops_per_sample=59.0e9,  # ~19.6 GFLOPs forward x3
    saturation_batch=8.0,
)

MOBILENET_V2 = ModelSpec(
    name="MobileNet-v2",
    family="CNN",
    domain="CV",
    parameters=3_000_000,
    dataset="ImageNet",
    dataset_size=calibration.IMAGENET_TRAIN_SIZE,
    flops_per_sample=0.96e9,  # ~0.32 GFLOPs forward x3
    saturation_batch=48.0,  # tiny kernels need large batches to fill the GPU
)

SEQ2SEQ = ModelSpec(
    name="Seq2Seq",
    family="RNN",
    domain="NLP",
    parameters=45_000_000,
    dataset="Tatoeba",
    dataset_size=900_000,
    flops_per_sample=5.4e9,  # 45M params x ~40 tokens x2 x3 / sequence
    saturation_batch=32.0,  # RNNs are launch-bound; need big batches
)

TRANSFORMER = ModelSpec(
    name="Transformer",
    family="Attention",
    domain="NLP",
    parameters=47_000_000,
    dataset="WMT'16",
    dataset_size=4_500_000,
    flops_per_sample=8.5e9,
    saturation_batch=24.0,
)

#: The five Table I models in the paper's A-E labelling (Fig. 15).
MODEL_ZOO: typing.Dict[str, ModelSpec] = {
    spec.name: spec
    for spec in (RESNET50, VGG19, MOBILENET_V2, SEQ2SEQ, TRANSFORMER)
}

#: Fig. 15 denotes models by letters A-E.
MODEL_LABELS = {
    "A": RESNET50,
    "B": VGG19,
    "C": MOBILENET_V2,
    "D": SEQ2SEQ,
    "E": TRANSFORMER,
}


def get_model(name: str) -> ModelSpec:
    """Look up a Table I model by name (case-insensitive)."""
    for key, spec in MODEL_ZOO.items():
        if key.lower() == name.lower():
            return spec
    raise KeyError(
        f"unknown model {name!r}; available: {sorted(MODEL_ZOO)}"
    )
