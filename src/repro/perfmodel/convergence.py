"""Accuracy/convergence model (paper §III-2, Figs. 5, 18, Table IV).

Real large-scale convergence behaviour cannot be re-measured here (no GPU
cluster, no ImageNet), so this module provides a *calibrated parametric
model* of the two phenomena the paper's algorithm view rests on:

1. **Epoch-wise accuracy trajectories** — a piecewise-exponential learning
   curve with step learning-rate decays, calibrated so a 90-epoch ResNet-50
   ImageNet run lands at 75.9% top-1 with the 74.5/75/75.5% targets crossed
   in the final LR phase, consistent with paper Fig. 18 / Table IV.
2. **Large-batch generalization penalty** — final accuracy degrades with
   the total batch size (paper Fig. 5 "Default"); scaling the learning rate
   linearly with the batch recovers most of it, and ramping that change
   progressively (the paper's progressive linear scaling rule) recovers it
   up to a critical batch size beyond which accuracy drops again (Fig. 5
   "Hybrid" dips at 2^12).

The *mechanical* version of phenomenon 2 — fewer optimizer updates at a
fixed epoch budget — is additionally reproduced from scratch by the real
numpy trainer in :mod:`repro.training.sgd`; this module is the analytic
counterpart used for ImageNet-scale timelines.
"""

from __future__ import annotations

import dataclasses
import enum
import math
import typing


class LrPolicy(enum.Enum):
    """How the learning rate follows batch-size changes."""

    #: Keep the original learning rate regardless of batch size
    #: (paper Fig. 5 "Default").
    FIXED = "fixed"
    #: Scale the LR linearly with batch size, applied as a step change.
    LINEAR_ABRUPT = "linear_abrupt"
    #: Linear scaling applied progressively over T iterations — the paper's
    #: progressive linear scaling rule (Fig. 5 "Hybrid").
    PROGRESSIVE_LINEAR = "progressive_linear"


@dataclasses.dataclass(frozen=True)
class LrPhase:
    """One constant-LR segment of a step schedule."""

    start_epoch: float
    end_epoch: float
    ceiling: float  # accuracy this phase converges toward, in [0, 1]
    tau: float  # epochs to close ~63% of the remaining gap


@dataclasses.dataclass(frozen=True)
class ConvergenceSpec:
    """Calibration of one (model, dataset) accuracy trajectory."""

    name: str
    phases: typing.Tuple[LrPhase, ...]
    initial_accuracy: float
    base_total_batch: int  # batch size the trajectory was calibrated at
    #: Accuracy lost per doubling of total batch when the LR is NOT scaled.
    fixed_lr_penalty_per_doubling: float
    #: Largest total batch at which linear LR scaling fully preserves
    #: accuracy (the paper observes degradation beyond ~2^11 on Cifar100).
    critical_total_batch: int
    #: Quadratic penalty coefficient beyond the critical batch
    #: (accuracy lost ~ coeff * doublings_past_critical^2).
    beyond_critical_penalty: float
    #: Extra penalty for changing the LR abruptly instead of progressively
    #: (sharp changes "may lead the model to divergence", §III-3).
    abrupt_change_penalty: float


#: ResNet-50 / ImageNet, 90-epoch step schedule (decay x0.1 at 30 and 60).
#: Calibrated to paper §VI-B: final top-1 75.89% at TBS 512; targets
#: 74.5/75/75.5% crossed at roughly epochs 70/72/76 (back-solved from the
#: paper's Table IV times and its 16-worker throughput).
RESNET50_IMAGENET = ConvergenceSpec(
    name="ResNet-50/ImageNet",
    phases=(
        LrPhase(start_epoch=0.0, end_epoch=30.0, ceiling=0.62, tau=6.0),
        LrPhase(start_epoch=30.0, end_epoch=60.0, ceiling=0.725, tau=9.0),
        LrPhase(start_epoch=60.0, end_epoch=90.0, ceiling=0.7605, tau=7.0),
    ),
    initial_accuracy=0.001,  # 1/1000 classes
    base_total_batch=512,
    fixed_lr_penalty_per_doubling=0.012,
    critical_total_batch=4096,
    beyond_critical_penalty=0.008,
    abrupt_change_penalty=0.006,
)

#: MobileNet-v2 / Cifar100 (paper Fig. 5), 200-epoch cosine-ish schedule
#: collapsed to a single phase; calibrated to ~74% top-1 at TBS 32 with
#: visible decay per doubling under a fixed LR and a Hybrid dip at 2^12.
MOBILENETV2_CIFAR100 = ConvergenceSpec(
    name="MobileNet-v2/Cifar100",
    phases=(LrPhase(start_epoch=0.0, end_epoch=200.0, ceiling=0.745, tau=35.0),),
    initial_accuracy=0.01,  # 1/100 classes
    base_total_batch=32,
    fixed_lr_penalty_per_doubling=0.014,
    critical_total_batch=2048,
    beyond_critical_penalty=0.010,
    abrupt_change_penalty=0.008,
)


class AccuracyModel:
    """Evaluate accuracy trajectories and batch-size penalties."""

    def __init__(self, spec: ConvergenceSpec):
        self.spec = spec

    # -- batch-size penalty (algorithm view, Fig. 5) -------------------------

    def final_accuracy_penalty(
        self, total_batch_size: int, policy: LrPolicy
    ) -> float:
        """Accuracy lost (fraction in [0,1]) at ``total_batch_size``.

        Relative to training at the spec's base batch size.  Batches at or
        below the base incur no penalty under any policy.
        """
        spec = self.spec
        if total_batch_size <= 0:
            raise ValueError(f"batch size must be positive, got {total_batch_size}")
        doublings = math.log2(total_batch_size / spec.base_total_batch)
        if doublings <= 0:
            return 0.0
        if policy is LrPolicy.FIXED:
            return spec.fixed_lr_penalty_per_doubling * doublings
        # Linear LR scaling recovers the penalty up to the critical batch.
        past_critical = math.log2(
            max(1.0, total_batch_size / spec.critical_total_batch)
        )
        penalty = spec.beyond_critical_penalty * past_critical**2
        if policy is LrPolicy.LINEAR_ABRUPT:
            penalty += spec.abrupt_change_penalty * min(doublings, 1.0)
        return penalty

    def final_accuracy(
        self, total_batch_size: int, policy: LrPolicy
    ) -> float:
        """Final accuracy after the full schedule at one total batch size."""
        end = self.spec.phases[-1].end_epoch
        base = self.accuracy_at_epoch(end)
        return max(0.0, base - self.final_accuracy_penalty(total_batch_size, policy))

    # -- trajectory (system x algorithm views, Fig. 18) ----------------------

    def accuracy_at_epoch(self, epoch: float, penalty: float = 0.0) -> float:
        """Top-1 accuracy after ``epoch`` epochs of the step schedule.

        ``penalty`` shifts every phase ceiling down by a constant — how the
        large-batch generalization gap manifests over a whole run.
        """
        if epoch < 0:
            raise ValueError(f"epoch must be >= 0, got {epoch}")
        accuracy = self.spec.initial_accuracy
        for phase in self.spec.phases:
            if epoch <= phase.start_epoch:
                break
            ceiling = max(0.0, phase.ceiling - penalty)
            span = min(epoch, phase.end_epoch) - phase.start_epoch
            accuracy = ceiling - (ceiling - accuracy) * math.exp(-span / phase.tau)
        return accuracy

    def epoch_reaching(self, target_accuracy: float, penalty: float = 0.0) -> float:
        """First (fractional) epoch at which the trajectory hits ``target``.

        Raises ``ValueError`` if the schedule never reaches the target —
        callers use this to detect that a batch-size policy broke the model.
        """
        end = self.spec.phases[-1].end_epoch
        if self.accuracy_at_epoch(end, penalty) < target_accuracy:
            raise ValueError(
                f"{self.spec.name} never reaches {target_accuracy:.2%} "
                f"(final {self.accuracy_at_epoch(end, penalty):.2%})"
            )
        low, high = 0.0, end
        for _ in range(60):  # bisection to ~1e-16 epoch resolution
            mid = (low + high) / 2
            if self.accuracy_at_epoch(mid, penalty) >= target_accuracy:
                high = mid
            else:
                low = mid
        return high
