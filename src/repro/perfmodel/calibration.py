"""Calibration constants for the performance models.

Every constant is sourced either from the paper's testbed description
(§VI-A: 8 servers, 2x20-core Intel Silver 4114, 8x GeForce 1080Ti, 56 Gbps
InfiniBand, Lustre, PyTorch 1.3) or from public hardware characteristics of
that generation.  Centralizing them here keeps the analytic models honest:
a model file never hard-codes a magic number.
"""

from __future__ import annotations

# --- GPU compute ----------------------------------------------------------

#: GeForce 1080Ti peak fp32 throughput (public spec: 11.3 TFLOPS).
GPU_PEAK_FLOPS = 11.3e12

#: Fraction of peak a well-tuned training step sustains at large batch.
#: cuDNN-era CNN training on Pascal sustained roughly 40-55% of peak.
GPU_MAX_EFFICIENCY = 0.45

#: Per-iteration fixed overhead (kernel launches, optimizer step, Python
#: dispatch) in seconds.  PyTorch 1.3-era measurements put this at a few ms.
ITERATION_OVERHEAD = 0.004

# --- Interconnects ---------------------------------------------------------

#: Effective intra-node all-reduce bus bandwidth (PCIe 3.0 x16 ring through
#: switches), bytes/s.
INTRA_NODE_BUS_BANDWIDTH = 8.0e9

#: Effective inter-node bus bandwidth: 56 Gbps FDR InfiniBand => 7 GB/s raw,
#: ~5 GB/s effective with RDMA (paper Fig. 8's NET curve saturation).
INTER_NODE_BUS_BANDWIDTH = 5.0e9

#: Per-hop cost of one ring-allreduce step, seconds.  This is not wire
#: latency alone: it folds in the per-bucket CPU dispatch and rank
#: synchronization overhead of PyTorch-1.3-era bucketed DDP, which grows
#: with ring length and is what bends the strong-scaling curves downward
#: (paper Fig. 3's "increases and then decreases").
ALLREDUCE_HOP_LATENCY = 0.4e-3

#: Communication can hide under the backward pass: up to this fraction of
#: the compute time is available to overlap allreduce (PyTorch DDP buckets
#: gradients and all-reduces them while backprop continues).
OVERLAP_WINDOW_FRACTION = 0.7

#: GPUs per server in the paper's testbed.
GPUS_PER_NODE = 8

# --- Evaluation-cluster interconnect (§VI-A testbed) -------------------------
#
# The §III scaling analysis ran on V100 servers, but the §VI evaluation ran
# on the production 1080Ti cluster, whose cross-node scaling is far worse:
# one 56 Gbps HCA shared by 8 GPUs and PyTorch-1.3 DDP give the modest
# phase speedups implied by Table IV (16->32 workers ~1.5x, 16->64 ~2x).

#: Effective inter-node all-reduce bus bandwidth on the evaluation
#: cluster (one shared HCA per 8-GPU server), bytes/s.
EVAL_INTER_NODE_BANDWIDTH = 1.2e9

#: Per-hop allreduce cost on the evaluation cluster, seconds.
EVAL_ALLREDUCE_HOP_LATENCY = 2.0e-3

# --- Storage / checkpoint (paper Fig. 11 baseline phases) -------------------

#: Sustained Lustre write bandwidth seen by one client, bytes/s.
LUSTRE_WRITE_BANDWIDTH = 1.0e9

#: Sustained Lustre read bandwidth seen by one client, bytes/s.
LUSTRE_READ_BANDWIDTH = 1.5e9

#: GPU->CPU (and CPU->GPU) copy bandwidth over PCIe, bytes/s.
PCIE_COPY_BANDWIDTH = 10.0e9

#: Fixed cost of serializing/deserializing a checkpoint (seconds).
CHECKPOINT_SERIALIZE_OVERHEAD = 0.7

# --- Process lifecycle (paper Fig. 11: start + init dominate S&R) -----------

#: Cold process start: scheduler dispatch, container/env setup, Python
#: imports of the DL framework.  Paper-era PyTorch jobs: several seconds.
WORKER_START_TIME = 8.0

#: Initialization: CUDA context creation, cuDNN handles, NCCL communicator
#: bootstrap, model build + first allocation.  Paper-era: 10-20 s;
#: calibrated so S&R scale-outs land in the paper's 10-80x band (Fig. 15).
WORKER_INIT_TIME = 14.0

#: Std-dev of start+init time across workers (stragglers; the async
#: coordination mechanism hides this variance).
WORKER_STARTUP_JITTER = 3.0

#: Graceful shutdown of a worker process (seconds).
WORKER_SHUTDOWN_TIME = 2.0

# --- Control plane ----------------------------------------------------------

#: One AM<->worker coordination round-trip (ZeroMQ over Ethernet), seconds.
COORDINATION_RTT = 0.5e-3

#: Blocking cost of one coordination on the training loop, seconds.  The
#: Coordinate call is fire-and-forget: the worker enqueues its check-in and
#: picks the directive up at the next boundary, so only the enqueue is on
#: the critical path (this is what keeps Fig. 14's overhead under 3 per
#: mille even for fast-iterating models).
COORDINATION_BLOCKING_COST = 30e-6

#: Communication-group (NCCL communicator) reconstruction after an
#: adjustment, seconds.  Sub-second because contexts stay alive.
GROUP_RECONSTRUCT_TIME = 0.3

#: Data repartition under the serial loading semantics: broadcasting one
#: integer offset + rebuilding loader iterators, seconds.
DATA_REPARTITION_TIME = 0.05

# --- Dataset sizes (samples) -------------------------------------------------

IMAGENET_TRAIN_SIZE = 1_281_167
CIFAR100_TRAIN_SIZE = 50_000
