"""Analytic throughput model for data-parallel training (paper §III-1).

Reproduces the system-view observations behind Figures 3, 4 and 17:

* **strong scaling** (fixed total batch size) — throughput rises, peaks and
  falls as workers are added, and the peak moves right for larger total
  batch sizes;
* **weak scaling** (fixed per-worker batch) — throughput grows nearly
  linearly, with a slope that increases with the per-worker batch.

The iteration time of ``N`` workers with per-worker batch ``b`` is modelled
as

    t_iter = t_compute(b) + max(0, t_allreduce(N) - eta * t_compute(b))

``t_compute`` uses an efficiency curve ``eff(b) = eff_max * b / (b + b_sat)``
— small batches underutilize the GPU (launch-bound kernels).  ``t_allreduce``
is the standard ring model (bandwidth term with an intra-node/InfiniBand
hierarchy, plus a per-hop software/sync cost that grows with ring length).
The ``max(0, ...)`` term models DDP's bucket overlap: up to ``eta`` of the
compute time can hide communication.  Under weak scaling the compute window
is wide, communication stays hidden and throughput grows near-linearly;
under strong scaling the shrinking per-worker batch both raises the exposed
communication and runs into the efficiency floor, so throughput peaks and
falls — and the peak moves right with larger total batch, exactly the two
observations of §III-1.
"""

from __future__ import annotations

import dataclasses
import typing

from . import calibration
from .models import ModelSpec


@dataclasses.dataclass(frozen=True)
class ClusterSpec:
    """Compute/communication constants of the testbed."""

    gpu_peak_flops: float = calibration.GPU_PEAK_FLOPS
    gpu_max_efficiency: float = calibration.GPU_MAX_EFFICIENCY
    iteration_overhead: float = calibration.ITERATION_OVERHEAD
    intra_node_bandwidth: float = calibration.INTRA_NODE_BUS_BANDWIDTH
    inter_node_bandwidth: float = calibration.INTER_NODE_BUS_BANDWIDTH
    hop_latency: float = calibration.ALLREDUCE_HOP_LATENCY
    overlap_window_fraction: float = calibration.OVERLAP_WINDOW_FRACTION
    gpus_per_node: int = calibration.GPUS_PER_NODE


#: The §III analysis testbed (8x V100 servers): healthy scaling.
PAPER_CLUSTER = ClusterSpec()

#: The §VI evaluation testbed (8x 1080Ti servers, one shared 56 Gbps HCA):
#: the modest cross-node scaling behind Table IV's 20% speedup and the
#: "512-2048 (64) is hard to obtain a speedup" observation.
EVAL_CLUSTER = ClusterSpec(
    inter_node_bandwidth=calibration.EVAL_INTER_NODE_BANDWIDTH,
    hop_latency=calibration.EVAL_ALLREDUCE_HOP_LATENCY,
)


class ThroughputModel:
    """Throughput of one Table I model on one cluster shape."""

    def __init__(self, model: ModelSpec, cluster: ClusterSpec = PAPER_CLUSTER):
        self.model = model
        self.cluster = cluster

    # -- components ---------------------------------------------------------

    def compute_time(self, batch_per_worker: float) -> float:
        """Seconds of forward+backward for one worker's micro-batch."""
        if batch_per_worker <= 0:
            raise ValueError(f"batch per worker must be > 0, got {batch_per_worker}")
        c = self.cluster
        efficiency = c.gpu_max_efficiency * batch_per_worker / (
            batch_per_worker + self.model.saturation_batch
        )
        flops = batch_per_worker * self.model.flops_per_sample
        return c.iteration_overhead + flops / (c.gpu_peak_flops * efficiency)

    def allreduce_time(self, workers: int) -> float:
        """Seconds to ring-allreduce one gradient set across ``workers``."""
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if workers == 1:
            return 0.0
        c = self.cluster
        size = self.model.gradient_bytes
        bandwidth = (
            c.intra_node_bandwidth
            if workers <= c.gpus_per_node
            else c.inter_node_bandwidth
        )
        volume = 2.0 * (workers - 1) / workers * size
        return volume / bandwidth + 2.0 * (workers - 1) * c.hop_latency

    def iteration_time(self, workers: int, total_batch_size: float) -> float:
        """Seconds for one synchronous training iteration."""
        if total_batch_size < workers:
            raise ValueError(
                f"total batch {total_batch_size} smaller than {workers} workers"
            )
        batch = total_batch_size / workers
        compute = self.compute_time(batch)
        comm = self.allreduce_time(workers)
        window = self.cluster.overlap_window_fraction * compute
        exposed = max(0.0, comm - window)
        return compute + exposed

    def throughput(self, workers: int, total_batch_size: float) -> float:
        """Training throughput in samples/second."""
        return total_batch_size / self.iteration_time(workers, total_batch_size)

    # -- scaling curves (Fig. 3 / Fig. 4 / Fig. 17) ---------------------------

    def strong_scaling_curve(
        self, total_batch_size: int, worker_counts: typing.Sequence[int]
    ) -> "list[tuple[int, float]]":
        """(workers, throughput) under strong scaling at one total batch."""
        return [
            (n, self.throughput(n, total_batch_size))
            for n in worker_counts
            if total_batch_size >= n
        ]

    def weak_scaling_curve(
        self, batch_per_worker: int, worker_counts: typing.Sequence[int]
    ) -> "list[tuple[int, float]]":
        """(workers, throughput) under weak scaling at one per-worker batch."""
        return [
            (n, self.throughput(n, n * batch_per_worker)) for n in worker_counts
        ]

    def optimal_workers(self, total_batch_size: int, max_workers: int = 1024) -> int:
        """N_opt: the worker count maximizing strong-scaling throughput.

        This is the quantity Algorithm 1 (hybrid scaling, line 10) queries.
        The search is exhaustive over ``1..min(max_workers, total_batch)``
        because the curve is cheap to evaluate and not guaranteed unimodal
        at the intra/inter-node bandwidth boundary.
        """
        if total_batch_size < 1:
            raise ValueError(f"total batch must be >= 1, got {total_batch_size}")
        limit = min(max_workers, int(total_batch_size))
        best_n, best_tp = 1, 0.0
        for n in range(1, limit + 1):
            tp = self.throughput(n, total_batch_size)
            if tp > best_tp:
                best_n, best_tp = n, tp
        return best_n

    def epoch_time(self, workers: int, total_batch_size: float) -> float:
        """Seconds for one pass over the model's dataset."""
        iterations = self.model.dataset_size / total_batch_size
        return iterations * self.iteration_time(workers, total_batch_size)
