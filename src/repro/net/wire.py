"""Wire format: framing, codecs, binary data plane, and the handshake.

Everything that crosses a process boundary goes through this module, so
the format is documented once (docs/PROTOCOL.md, "Wire format") and the
in-memory transport never needs it — which is exactly the point of the
:class:`repro.net.Transport` seam.

* **Framing** — length-prefixed: a 4-byte big-endian unsigned length
  followed by that many payload bytes.  Frames are self-delimiting, so a
  reader never depends on TCP segmentation.
* **Codec** — JSON by default (always available); msgpack when the
  optional ``msgpack`` package is importable.  The codec is negotiated
  in the handshake, and ndarray values ride inside either codec as
  ``{"__nd__": ...}`` envelopes (raw bytes, base64 under JSON).
* **Binary frames** — the data plane.  When both peers negotiate the
  ``bin`` feature, any frame whose payload holds ndarrays or raw bytes
  is written as a small codec-encoded *header* followed by the raw
  array segments: the length prefix carries :data:`BINARY_FLAG` in its
  top bit, segments are contiguous ``memoryview``\\ s written with
  scatter/gather IO, and the reader rebuilds arrays with
  ``np.frombuffer`` over one receive buffer — no base64, no
  intermediate copies.
* **Handshake** — the first frame on a connection must be ``hello``
  carrying the protocol version, the node id, the requested codec, and
  the data-plane feature flag; the server answers ``welcome`` (echoing
  what it negotiated) or ``reject`` and closes.  A version mismatch is
  a hard reject: silent cross-version traffic is how elastic clusters
  corrupt jobs.  A peer that does not advertise ``bin`` simply keeps
  receiving base64 envelopes — the feature degrades, it never rejects.
"""

from __future__ import annotations

import base64
import hashlib
import json
import math
import socket
import struct
import typing

import numpy as np

from ..coordination.messages import Message, MessageType

try:  # optional accelerated codec; the wire works without it
    import msgpack  # type: ignore
except ImportError:  # pragma: no cover - exercised where msgpack exists
    msgpack = None

#: Protocol version carried by every handshake.  Bump on any
#: *incompatible* change; the binary data plane is feature-negotiated
#: (``bin`` in the handshake), so version 1 peers interoperate whether
#: or not they speak it.
PROTOCOL_VERSION = 1

#: Hard upper bound on one frame's payload, a corruption guard: a bogus
#: length prefix must fail loudly, not allocate gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Top bit of the length prefix: set for binary frames, where the
#: remaining 31 bits are the *header* length and the raw segments
#: follow.  Payloads are capped far below 2**31, so the bit is
#: unambiguous.
BINARY_FLAG = 0x80000000

#: Largest number of buffers handed to one ``sendmsg`` call (IOV_MAX on
#: common platforms is 1024; stay far below it).
_SENDMSG_BATCH = 256

_LENGTH = struct.Struct(">I")


class WireError(ConnectionError):
    """Framing or handshake violation; the connection must be dropped."""


def available_codecs() -> "tuple[str, ...]":
    """Codecs this process can encode/decode, preferred first."""
    return ("msgpack", "json") if msgpack is not None else ("json",)


def negotiate_codec(requested: str) -> str:
    """Clamp a requested codec to what this process can actually speak.

    The server calls this to answer a ``hello``; the client calls it
    before *sending* one, so it never requests a codec it cannot
    decode.  Falls back to JSON when the requested codec is unknown or
    not importable here — JSON is the mandatory baseline both sides
    have.
    """
    return requested if requested in available_codecs() else "json"


# -- buffer views -------------------------------------------------------------


def _flat_view(buffer) -> memoryview:
    """A contiguous 1-D byte view of any buffer-ish object (no copy)."""
    view = memoryview(buffer)
    if view.ndim != 1 or view.itemsize != 1 or view.format != "B":
        if view.nbytes == 0:
            # cast() refuses zeros in shape/strides; an empty view of
            # anything is an empty view of bytes.
            return memoryview(b"")
        view = view.cast("B")
    return view


def _array_view(array: np.ndarray) -> memoryview:
    """A C-order byte view of ``array`` (copies only if non-contiguous)."""
    if not array.flags["C_CONTIGUOUS"]:
        array = np.ascontiguousarray(array)
    return _flat_view(array)


def payload_nbytes(obj) -> int:
    """Data-plane bytes inside a payload: ndarrays plus raw buffers.

    A cheap, transport-independent size estimate used to tag ``net.*``
    spans and byte counters identically over TCP (where frames have a
    real wire size) and in-memory (where nothing is serialized).
    """
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, memoryview):
        return obj.nbytes
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, dict):
        return sum(payload_nbytes(value) for value in obj.values())
    if isinstance(obj, (list, tuple)):
        return sum(payload_nbytes(item) for item in obj)
    return 0


# -- value envelopes (codec fallback: arrays as base64) -----------------------


def _pack_arrays(obj):
    """Recursively wrap ndarrays / raw bytes in a codec-safe envelope."""
    if isinstance(obj, np.ndarray):
        return {
            "__nd__": base64.b64encode(_array_view(obj)).decode("ascii"),
            "dtype": str(obj.dtype),
            "shape": list(obj.shape),
        }
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return {"__bytes__": base64.b64encode(bytes(obj)).decode("ascii")}
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, dict):
        return {key: _pack_arrays(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_pack_arrays(item) for item in obj]
    return obj


def _unpack_arrays(obj):
    """Inverse of :func:`_pack_arrays`."""
    if isinstance(obj, dict):
        if "__nd__" in obj:
            raw = base64.b64decode(obj["__nd__"])
            return np.frombuffer(raw, dtype=np.dtype(obj["dtype"])).reshape(
                obj["shape"]
            ).copy()
        if "__bytes__" in obj:
            return base64.b64decode(obj["__bytes__"])
        return {key: _unpack_arrays(value) for key, value in obj.items()}
    if isinstance(obj, list):
        return [_unpack_arrays(item) for item in obj]
    return obj


def encode_payload(payload: dict) -> dict:
    """Make an arbitrary payload (possibly holding ndarrays) codec-safe."""
    return _pack_arrays(payload)


def decode_payload(payload: dict) -> dict:
    """Restore ndarrays inside a decoded payload."""
    return _unpack_arrays(payload)


def params_digest(params: "dict[str, np.ndarray]") -> str:
    """Stable content hash of a parameter dict (replica-consistency checks).

    Streams each array's byte view straight into the hasher —
    ``hashlib`` consumes the buffer protocol, so a contiguous array is
    hashed with **zero copies** (the old implementation materialized a
    ``tobytes()`` copy of every array).  Non-contiguous views are
    compacted first (one copy, unavoidable: the digest is defined over
    C-order bytes); zero-size arrays contribute their name/dtype/shape
    only.  The output is bit-identical to the historical format.
    """
    hasher = hashlib.sha256()
    for name in sorted(params):
        array = np.asarray(params[name])
        hasher.update(name.encode())
        hasher.update(str(array.dtype).encode())
        hasher.update(str(array.shape).encode())
        if array.size:
            hasher.update(_array_view(array))
    return hasher.hexdigest()


# -- the binary data plane: segment extraction --------------------------------


def split_buffers(
    obj, segments: "list[memoryview] | None" = None
) -> "tuple[typing.Any, list[memoryview]]":
    """Replace ndarray / raw-bytes values with segment placeholders.

    Returns ``(codec_safe_obj, segments)``: the transformed object can
    be encoded by any codec, and each segment is a contiguous byte view
    of the *original* data — the zero-copy half of a binary frame (and
    of a state blob).  Non-contiguous arrays are the one exception:
    they are compacted first, one bounded copy.
    """
    if segments is None:
        segments = []
    if isinstance(obj, np.ndarray):
        if obj.dtype.hasobject:
            raise WireError("object-dtype arrays cannot cross the wire")
        placeholder = {
            "__seg__": len(segments),
            "dtype": str(obj.dtype),
            "shape": list(obj.shape),
        }
        segments.append(_array_view(obj))
        return placeholder, segments
    if isinstance(obj, (bytes, bytearray, memoryview)):
        placeholder = {"__seg__": len(segments)}
        segments.append(_flat_view(obj))
        return placeholder, segments
    if isinstance(obj, np.generic):
        return obj.item(), segments
    if isinstance(obj, dict):
        return (
            {k: split_buffers(v, segments)[0] for k, v in obj.items()},
            segments,
        )
    if isinstance(obj, (list, tuple)):
        return [split_buffers(item, segments)[0] for item in obj], segments
    return obj, segments


def join_buffers(obj, segments: "typing.Sequence[memoryview]"):
    """Inverse of :func:`split_buffers` over received segment views.

    Arrays are rebuilt with ``np.frombuffer`` directly over the receive
    buffer — no intermediate copies.  Every placeholder is validated
    against its segment's actual length; a mismatch (truncated or
    corrupt segment table) raises :class:`WireError`.
    """
    if isinstance(obj, dict):
        if "__seg__" in obj:
            index = obj["__seg__"]
            if not isinstance(index, int) or not 0 <= index < len(segments):
                raise WireError(f"segment index {index!r} out of range")
            data = segments[index]
            if "dtype" not in obj:
                return data  # raw bytes payload: hand back the view
            try:
                dtype = np.dtype(obj["dtype"])
                shape = tuple(int(d) for d in obj["shape"])
            except (KeyError, TypeError, ValueError) as exc:
                raise WireError(f"corrupt array placeholder: {exc}") from exc
            expected = dtype.itemsize * math.prod(shape)
            if data.nbytes != expected:
                raise WireError(
                    f"segment {index} holds {data.nbytes} bytes, but "
                    f"dtype {dtype} shape {shape} needs {expected}"
                )
            return np.frombuffer(data, dtype=dtype).reshape(shape)
        return {k: join_buffers(v, segments) for k, v in obj.items()}
    if isinstance(obj, list):
        return [join_buffers(item, segments) for item in obj]
    return obj


# -- codecs -------------------------------------------------------------------


def encode_frame(frame: dict, codec: str = "json") -> bytes:
    """Serialize one frame dict to payload bytes."""
    if codec == "msgpack" and msgpack is not None:
        return msgpack.packb(frame, use_bin_type=True)
    return json.dumps(frame, separators=(",", ":")).encode("utf-8")


def decode_frame(data: "bytes | bytearray", codec: str = "json") -> dict:
    """Deserialize payload bytes back to a frame dict.

    Any decode failure — corrupt bytes, a codec mismatch, a payload
    that is not a dict — raises :class:`WireError`, so read loops
    handle corruption through the same drop-and-reconnect path as
    framing violations instead of dying on a codec exception.
    """
    try:
        if codec == "msgpack" and msgpack is not None:
            frame = msgpack.unpackb(data, raw=False)
        else:
            frame = json.loads(bytes(data).decode("utf-8"))
    except Exception as exc:
        raise WireError(
            f"undecodable {codec} frame: {type(exc).__name__}: {exc}"
        ) from exc
    if not isinstance(frame, dict):
        raise WireError(
            f"frame payload decodes to {type(frame).__name__}, not a dict"
        )
    return frame


# -- framing ------------------------------------------------------------------


def frame_bytes(frame: dict, codec: str = "json") -> bytes:
    """One length-prefixed codec frame, ready for ``sendall``."""
    payload = encode_frame(frame, codec)
    if len(payload) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(payload)} bytes exceeds the maximum")
    return _LENGTH.pack(len(payload)) + payload


def binary_frame_buffers(
    frame: dict, codec: str = "json"
) -> "tuple[list | None, int]":
    """Scatter/gather buffer list for one binary frame.

    Returns ``(buffers, total_bytes)``; ``buffers`` is None when the
    frame holds no arrays or raw bytes — a plain codec frame is both
    smaller and cheaper then, so the caller should fall back to
    :func:`frame_bytes`.
    """
    header_obj, segments = split_buffers(frame)
    if not segments:
        return None, 0
    header_obj["__segs__"] = [segment.nbytes for segment in segments]
    header = encode_frame(header_obj, codec)
    total = len(header) + sum(segment.nbytes for segment in segments)
    if total > MAX_FRAME_BYTES:
        raise WireError(f"frame of {total} bytes exceeds the maximum")
    prefix = _LENGTH.pack(BINARY_FLAG | len(header))
    return [prefix, header, *segments], _LENGTH.size + total


def sendmsg_gather(sock: socket.socket, buffers: typing.Sequence) -> None:
    """Write a buffer list with scatter/gather IO.

    Uses ``socket.sendmsg`` (one ``writev`` per batch, no flattening
    copy) where available, ``sendall`` per buffer otherwise.  Handles
    partial writes by advancing views in place.
    """
    views = [_flat_view(buffer) for buffer in buffers if len(buffer)]
    if not hasattr(sock, "sendmsg"):  # pragma: no cover - all POSIX have it
        for view in views:
            sock.sendall(view)
        return
    while views:
        sent = sock.sendmsg(views[:_SENDMSG_BATCH])
        while sent:
            head = views[0]
            if sent >= head.nbytes:
                sent -= head.nbytes
                views.pop(0)
            else:
                views[0] = head[sent:]
                sent = 0


def _recv_exact(sock: socket.socket, count: int) -> "bytearray | None":
    """Read exactly ``count`` bytes, or None on a clean EOF at a frame
    boundary; a mid-frame EOF raises :class:`WireError`.

    Reads with ``recv_into`` over one preallocated buffer — constant
    memory and linear time, where the historical ``bytes``
    concatenation loop went quadratic on large frames.
    """
    buffer = bytearray(count)
    view = memoryview(buffer)
    received = 0
    while received < count:
        n = sock.recv_into(view[received:])
        if n == 0:
            if received == 0:
                return None
            raise WireError("connection closed mid-frame")
        received += n
    return buffer


def _recv_into(sock: socket.socket, view: memoryview) -> None:
    """Fill ``view`` completely from the socket (mid-frame EOF raises)."""
    received = 0
    while received < view.nbytes:
        n = sock.recv_into(view[received:])
        if n == 0:
            raise WireError("connection closed mid-frame")
        received += n


def _read_binary_frame(
    sock: socket.socket, header_len: int, codec: str
) -> dict:
    """Read the remainder of a binary frame after its flagged prefix."""
    if header_len > MAX_FRAME_BYTES:
        raise WireError(f"binary header length {header_len} exceeds the maximum")
    header = _recv_exact(sock, header_len)
    if header is None:
        raise WireError("connection closed mid-frame")
    frame = decode_frame(header, codec)
    seg_lens = frame.pop("__segs__", None)
    if not isinstance(seg_lens, list) or not all(
        isinstance(n, int) and n >= 0 for n in seg_lens
    ):
        raise WireError("binary frame carries no valid segment table")
    total = sum(seg_lens)
    if total + header_len > MAX_FRAME_BYTES:
        raise WireError(f"frame of {total + header_len} bytes exceeds the maximum")
    buffer = bytearray(total)
    view = memoryview(buffer)
    if total:
        _recv_into(sock, view)
    segments, offset = [], 0
    for length in seg_lens:
        segments.append(view[offset:offset + length])
        offset += length
    return join_buffers(frame, segments)


def read_frame(sock: socket.socket, codec: str = "json") -> "dict | None":
    """Read one frame (codec or binary) from a socket; None on clean EOF."""
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length & BINARY_FLAG:
        return _read_binary_frame(sock, length & ~BINARY_FLAG, codec)
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame length {length} exceeds the maximum")
    payload = _recv_exact(sock, length) if length else b""
    if payload is None:
        raise WireError("connection closed mid-frame")
    return decode_frame(payload, codec)


def write_frame(
    sock: socket.socket,
    frame: dict,
    codec: str = "json",
    binary: bool = False,
) -> int:
    """Write one frame; returns the bytes put on the wire.

    With ``binary=True`` (both peers negotiated the data plane), frames
    holding arrays or raw bytes go out as binary frames via
    scatter/gather; everything else — and every frame when
    ``binary=False`` — is a plain codec frame with base64 envelopes.
    """
    if binary:
        buffers, total = binary_frame_buffers(frame, codec)
        if buffers is not None:
            sendmsg_gather(sock, buffers)
            return total
    data = frame_bytes(frame, codec)
    sock.sendall(data)
    return len(data)


# -- frame kinds --------------------------------------------------------------


def hello_frame(node_id: str, codec: str = "json", binary: bool = True) -> dict:
    """The mandatory first frame of every connection."""
    return {
        "kind": "hello",
        "version": PROTOCOL_VERSION,
        "node": node_id,
        "codec": codec,
        "bin": bool(binary),
    }


def welcome_frame(
    node_id: str, codec: str = "json", binary: bool = False,
    epoch: "int | None" = None,
) -> dict:
    """The server's handshake acceptance.

    ``epoch`` carries the server's fencing epoch when it has one (the
    networked AM always does): a client that reconnects and sees the
    epoch move knows it is talking to a successor AM and must
    re-enroll.  Peers that predate the field simply ignore it —
    :data:`PROTOCOL_VERSION` is unchanged.
    """
    frame = {
        "kind": "welcome",
        "version": PROTOCOL_VERSION,
        "node": node_id,
        "codec": codec,
        "bin": bool(binary),
    }
    if epoch is not None:
        frame["epoch"] = int(epoch)
    return frame


def reject_frame(reason: str) -> dict:
    """The server's handshake refusal (connection closes after it)."""
    return {"kind": "reject", "version": PROTOCOL_VERSION, "reason": reason}


def heartbeat_frame(node_id: str, seq: int) -> dict:
    """Client keep-alive; the server answers ``heartbeat_ack``."""
    return {"kind": "heartbeat", "node": node_id, "seq": seq}


def heartbeat_ack_frame(seq: int) -> dict:
    """Server answer to a heartbeat, echoing its sequence number."""
    return {"kind": "heartbeat_ack", "seq": seq}


def message_frame(message: Message, raw: bool = False) -> dict:
    """Envelope for one protocol :class:`Message`.

    ``raw=True`` leaves ndarrays and byte buffers in place for the
    binary data plane (the frame writer extracts them as segments);
    ``raw=False`` wraps them in base64 envelopes for codec-only peers.
    """
    return {
        "kind": "msg",
        "msg_id": message.msg_id,
        "type": message.msg_type.value,
        "sender": message.sender,
        "payload": (
            dict(message.payload) if raw else encode_payload(message.payload)
        ),
    }


def decode_message(frame: dict) -> Message:
    """Rebuild the :class:`Message` carried by a ``msg`` frame."""
    return Message(
        msg_id=int(frame["msg_id"]),
        msg_type=MessageType(frame["type"]),
        sender=frame["sender"],
        payload=decode_payload(frame.get("payload") or {}),
    )


def reply_frame(
    node_id: str, in_reply_to: int, payload: dict, raw: bool = False,
    ctx: "dict | None" = None,
) -> dict:
    """Server response to one ``msg`` frame, correlated by message id.

    ``ctx`` optionally carries the server's trace context for this
    *transmission* (its node id, fencing epoch, and the receive/send
    timestamps on its own clock) so the client can estimate the clock
    offset NTP-style.  It lives at the frame level — never inside the
    cached reply payload — because a retransmitted request re-sends the
    cached payload but must get *fresh* timestamps.  Peers that predate
    the field ignore it; :data:`PROTOCOL_VERSION` is unchanged.
    """
    frame = {
        "kind": "reply",
        "node": node_id,
        "in_reply_to": in_reply_to,
        "payload": dict(payload) if raw else encode_payload(payload),
    }
    if ctx is not None:
        frame["ctx"] = dict(ctx)
    return frame


class Handshake(typing.NamedTuple):
    """A validated ``hello``: peer identity plus negotiated features."""

    node: str
    codec: str
    binary: bool


def check_handshake(
    frame: "dict | None", binary: bool = True
) -> Handshake:
    """Validate a ``hello``; returns the negotiated :class:`Handshake`.

    ``binary`` is whether *this* side is willing to speak the binary
    data plane; the negotiated flag is the AND of both sides, so a peer
    that never heard of it (no ``bin`` key) degrades to base64
    envelopes instead of being rejected.
    """
    if frame is None:
        raise WireError("connection closed before the handshake")
    if frame.get("kind") != "hello":
        raise WireError(f"expected hello, got {frame.get('kind')!r}")
    version = frame.get("version")
    if version != PROTOCOL_VERSION:
        raise WireError(
            f"protocol version mismatch: peer speaks {version}, "
            f"this node speaks {PROTOCOL_VERSION}"
        )
    node = frame.get("node")
    if not node:
        raise WireError("hello carries no node id")
    return Handshake(
        node=str(node),
        codec=negotiate_codec(str(frame.get("codec", "json"))),
        binary=bool(frame.get("bin")) and bool(binary),
    )
