"""Wire format: framing, codecs, and the version-tagged handshake.

Everything that crosses a process boundary goes through this module, so
the format is documented once (docs/PROTOCOL.md, "Wire format") and the
in-memory transport never needs it — which is exactly the point of the
:class:`repro.net.Transport` seam.

* **Framing** — length-prefixed: a 4-byte big-endian unsigned length
  followed by that many payload bytes.  Frames are self-delimiting, so a
  reader never depends on TCP segmentation.
* **Codec** — JSON by default (always available); msgpack when the
  optional ``msgpack`` package is importable.  The codec is negotiated
  in the handshake, and ndarray values ride inside either codec as
  ``{"__nd__": ...}`` envelopes (raw bytes, base64 under JSON).
* **Handshake** — the first frame on a connection must be ``hello``
  carrying the protocol version, the node id, and the requested codec;
  the server answers ``welcome`` (echoing the negotiated codec) or
  ``reject`` and closes.  A version mismatch is a hard reject: silent
  cross-version traffic is how elastic clusters corrupt jobs.
"""

from __future__ import annotations

import base64
import hashlib
import json
import socket
import struct
import typing

import numpy as np

from ..coordination.messages import Message, MessageType

try:  # optional accelerated codec; the wire works without it
    import msgpack  # type: ignore
except ImportError:  # pragma: no cover - exercised where msgpack exists
    msgpack = None

#: Protocol version carried by every handshake.  Bump on any change to
#: framing, frame kinds, or message encoding.
PROTOCOL_VERSION = 1

#: Hard upper bound on one frame's payload, a corruption guard: a bogus
#: length prefix must fail loudly, not allocate gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class WireError(ConnectionError):
    """Framing or handshake violation; the connection must be dropped."""


def available_codecs() -> "tuple[str, ...]":
    """Codecs this process can encode/decode, preferred first."""
    return ("msgpack", "json") if msgpack is not None else ("json",)


def negotiate_codec(requested: str) -> str:
    """Clamp a requested codec to what this process can actually speak.

    The server calls this to answer a ``hello``; the client calls it
    before *sending* one, so it never requests a codec it cannot
    decode.  Falls back to JSON when the requested codec is unknown or
    not importable here — JSON is the mandatory baseline both sides
    have.
    """
    return requested if requested in available_codecs() else "json"


# -- value envelopes ----------------------------------------------------------


def _pack_arrays(obj):
    """Recursively wrap ndarrays in a codec-safe envelope."""
    if isinstance(obj, np.ndarray):
        return {
            "__nd__": base64.b64encode(np.ascontiguousarray(obj).tobytes())
            .decode("ascii"),
            "dtype": str(obj.dtype),
            "shape": list(obj.shape),
        }
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, dict):
        return {key: _pack_arrays(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_pack_arrays(item) for item in obj]
    return obj


def _unpack_arrays(obj):
    """Inverse of :func:`_pack_arrays`."""
    if isinstance(obj, dict):
        if "__nd__" in obj:
            raw = base64.b64decode(obj["__nd__"])
            return np.frombuffer(raw, dtype=np.dtype(obj["dtype"])).reshape(
                obj["shape"]
            ).copy()
        return {key: _unpack_arrays(value) for key, value in obj.items()}
    if isinstance(obj, list):
        return [_unpack_arrays(item) for item in obj]
    return obj


def encode_payload(payload: dict) -> dict:
    """Make an arbitrary payload (possibly holding ndarrays) codec-safe."""
    return _pack_arrays(payload)


def decode_payload(payload: dict) -> dict:
    """Restore ndarrays inside a decoded payload."""
    return _unpack_arrays(payload)


def params_digest(params: "dict[str, np.ndarray]") -> str:
    """Stable content hash of a parameter dict (replica-consistency checks)."""
    hasher = hashlib.sha256()
    for name in sorted(params):
        array = np.ascontiguousarray(params[name])
        hasher.update(name.encode())
        hasher.update(str(array.dtype).encode())
        hasher.update(str(array.shape).encode())
        hasher.update(array.tobytes())
    return hasher.hexdigest()


# -- codecs -------------------------------------------------------------------


def encode_frame(frame: dict, codec: str = "json") -> bytes:
    """Serialize one frame dict to payload bytes."""
    if codec == "msgpack" and msgpack is not None:
        return msgpack.packb(frame, use_bin_type=True)
    return json.dumps(frame, separators=(",", ":")).encode("utf-8")


def decode_frame(data: bytes, codec: str = "json") -> dict:
    """Deserialize payload bytes back to a frame dict.

    Any decode failure — corrupt bytes, a codec mismatch, a payload
    that is not a dict — raises :class:`WireError`, so read loops
    handle corruption through the same drop-and-reconnect path as
    framing violations instead of dying on a codec exception.
    """
    try:
        if codec == "msgpack" and msgpack is not None:
            frame = msgpack.unpackb(data, raw=False)
        else:
            frame = json.loads(data.decode("utf-8"))
    except Exception as exc:
        raise WireError(
            f"undecodable {codec} frame: {type(exc).__name__}: {exc}"
        ) from exc
    if not isinstance(frame, dict):
        raise WireError(
            f"frame payload decodes to {type(frame).__name__}, not a dict"
        )
    return frame


# -- framing ------------------------------------------------------------------


def frame_bytes(frame: dict, codec: str = "json") -> bytes:
    """One length-prefixed frame, ready for ``sendall``."""
    payload = encode_frame(frame, codec)
    if len(payload) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(payload)} bytes exceeds the maximum")
    return _LENGTH.pack(len(payload)) + payload


def _recv_exact(sock: socket.socket, count: int) -> "bytes | None":
    """Read exactly ``count`` bytes, or None on a clean EOF at a frame
    boundary; a mid-frame EOF raises :class:`WireError`."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == count and not chunks:
                return None
            raise WireError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket, codec: str = "json") -> "dict | None":
    """Read one frame from a socket; None on clean EOF."""
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame length {length} exceeds the maximum")
    payload = _recv_exact(sock, length) if length else b""
    if payload is None:
        raise WireError("connection closed mid-frame")
    return decode_frame(payload, codec)


def write_frame(sock: socket.socket, frame: dict, codec: str = "json") -> int:
    """Write one frame; returns the bytes put on the wire."""
    data = frame_bytes(frame, codec)
    sock.sendall(data)
    return len(data)


# -- frame kinds --------------------------------------------------------------


def hello_frame(node_id: str, codec: str = "json") -> dict:
    """The mandatory first frame of every connection."""
    return {
        "kind": "hello",
        "version": PROTOCOL_VERSION,
        "node": node_id,
        "codec": codec,
    }


def welcome_frame(node_id: str, codec: str = "json") -> dict:
    """The server's handshake acceptance."""
    return {
        "kind": "welcome",
        "version": PROTOCOL_VERSION,
        "node": node_id,
        "codec": codec,
    }


def reject_frame(reason: str) -> dict:
    """The server's handshake refusal (connection closes after it)."""
    return {"kind": "reject", "version": PROTOCOL_VERSION, "reason": reason}


def heartbeat_frame(node_id: str, seq: int) -> dict:
    """Client keep-alive; the server answers ``heartbeat_ack``."""
    return {"kind": "heartbeat", "node": node_id, "seq": seq}


def heartbeat_ack_frame(seq: int) -> dict:
    """Server answer to a heartbeat, echoing its sequence number."""
    return {"kind": "heartbeat_ack", "seq": seq}


def message_frame(message: Message) -> dict:
    """Envelope for one protocol :class:`Message`."""
    return {
        "kind": "msg",
        "msg_id": message.msg_id,
        "type": message.msg_type.value,
        "sender": message.sender,
        "payload": encode_payload(message.payload),
    }


def decode_message(frame: dict) -> Message:
    """Rebuild the :class:`Message` carried by a ``msg`` frame."""
    return Message(
        msg_id=int(frame["msg_id"]),
        msg_type=MessageType(frame["type"]),
        sender=frame["sender"],
        payload=decode_payload(frame.get("payload") or {}),
    )


def reply_frame(node_id: str, in_reply_to: int, payload: dict) -> dict:
    """Server response to one ``msg`` frame, correlated by message id."""
    return {
        "kind": "reply",
        "node": node_id,
        "in_reply_to": in_reply_to,
        "payload": encode_payload(payload),
    }


def check_handshake(frame: "dict | None") -> typing.Tuple[str, str]:
    """Validate a ``hello``; returns (node_id, negotiated codec)."""
    if frame is None:
        raise WireError("connection closed before the handshake")
    if frame.get("kind") != "hello":
        raise WireError(f"expected hello, got {frame.get('kind')!r}")
    version = frame.get("version")
    if version != PROTOCOL_VERSION:
        raise WireError(
            f"protocol version mismatch: peer speaks {version}, "
            f"this node speaks {PROTOCOL_VERSION}"
        )
    node = frame.get("node")
    if not node:
        raise WireError("hello carries no node id")
    return str(node), negotiate_codec(str(frame.get("codec", "json")))
