"""Real network transport for the AM/worker control plane.

One protocol (:class:`Transport`), three implementations — in-memory,
length-prefixed TCP, and shared-memory ring buffers for co-located
peers — sharing a single dedup/resend code path, so the §V-D
fault-tolerance recipe and every chaos schedule behave identically
in-process, over real sockets, and across ``/dev/shm``.  On top of the seam:
:class:`NetworkedApplicationMaster` (the message-driven AM + gradient
rendezvous), :class:`WorkerAgent` (one replica), and
:class:`MultiprocessElasticJob` (an elastic job as N OS processes).
Steady-state gradients bypass the AM entirely via the decentralized
ring allreduce (:class:`RingNode` over per-worker peer endpoints,
:mod:`.peers`); the AM's star rendezvous remains the adjustment-window
and degradation fallback.

Crash tolerance rides on a write-ahead :class:`Journal`: a successor AM
replays it (:meth:`NetworkedApplicationMaster.from_journal`), fences the
predecessor out with a higher epoch, and finishes or aborts any
in-flight commit; workers re-enroll and resume.  Heartbeat leases evict
silently dead workers, and :class:`ChaosSoak` runs the whole stack under
a deterministic fault schedule against goodput/MTTR SLOs.
"""

from .agent import JoinRejected, WorkerAgent, WorkerEvicted
from .chunks import (
    DEFAULT_CHUNK_BYTES,
    ChunkAssembler,
    ChunkedFetcher,
    ChunkedUploader,
    ChunkStore,
    StateBlob,
    TransferError,
    decode_state_blob,
)
from .codecs import (
    RING_CODECS,
    decode_bucket,
    encode_bucket,
    validate_codec,
)
from .collective import (
    DEFAULT_RING_BUCKET_BYTES,
    RingDegraded,
    RingLayout,
    RingMailbox,
    RingNode,
    ring_reference_average,
)
from .job import JobFailed, MultiprocessElasticJob
from .journal import Journal, JournalError, JournalState
from .master_service import JobSpec, NetworkedApplicationMaster
from .peers import (
    MemoryPeerHost,
    PeerHost,
    TcpPeerHost,
    parse_peer_addr,
    peer_scheme,
)
from .shm import (
    DEFAULT_SHM_CAPACITY,
    ShmPeerHost,
    ShmRing,
    ShmServer,
    ShmTransport,
    shm_link,
)
from .soak import (
    ChaosSoak,
    GoodputReport,
    SLOViolation,
    SoakSchedule,
    derive_report,
)
from .tcp import TcpServer, TcpTransport, reserve_port, tcp_link
from .telemetry import TelemetryShipper
from .transport import (
    FaultAction,
    InMemoryTransport,
    ReliableLink,
    RemoteError,
    RequestTimeout,
    RetryableError,
    ServerCore,
    Transport,
    TransportClosed,
    TransportFaults,
    memory_link,
)
from .wire import PROTOCOL_VERSION, WireError, params_digest

__all__ = [
    "DEFAULT_CHUNK_BYTES",
    "PROTOCOL_VERSION",
    "ChunkAssembler",
    "ChunkStore",
    "ChunkedFetcher",
    "ChunkedUploader",
    "FaultAction",
    "InMemoryTransport",
    "StateBlob",
    "TransferError",
    "decode_state_blob",
    "DEFAULT_RING_BUCKET_BYTES",
    "DEFAULT_SHM_CAPACITY",
    "RING_CODECS",
    "ChaosSoak",
    "GoodputReport",
    "JobFailed",
    "JobSpec",
    "JoinRejected",
    "Journal",
    "JournalError",
    "JournalState",
    "MemoryPeerHost",
    "MultiprocessElasticJob",
    "NetworkedApplicationMaster",
    "PeerHost",
    "RingDegraded",
    "RingLayout",
    "RingMailbox",
    "RingNode",
    "SLOViolation",
    "ShmPeerHost",
    "ShmRing",
    "ShmServer",
    "ShmTransport",
    "SoakSchedule",
    "TcpPeerHost",
    "TelemetryShipper",
    "ring_reference_average",
    "ReliableLink",
    "RemoteError",
    "RequestTimeout",
    "RetryableError",
    "ServerCore",
    "TcpServer",
    "TcpTransport",
    "Transport",
    "TransportClosed",
    "TransportFaults",
    "WireError",
    "WorkerAgent",
    "WorkerEvicted",
    "decode_bucket",
    "derive_report",
    "encode_bucket",
    "memory_link",
    "params_digest",
    "parse_peer_addr",
    "peer_scheme",
    "reserve_port",
    "shm_link",
    "tcp_link",
    "validate_codec",
]
