"""Real network transport for the AM/worker control plane.

One protocol (:class:`Transport`), two implementations — in-memory and
length-prefixed TCP — sharing a single dedup/resend code path, so the
§V-D fault-tolerance recipe and every chaos schedule behave identically
in-process and over real sockets.  On top of the seam:
:class:`NetworkedApplicationMaster` (the message-driven AM + gradient
rendezvous), :class:`WorkerAgent` (one replica), and
:class:`MultiprocessElasticJob` (an elastic job as N OS processes).
Steady-state gradients bypass the AM entirely via the decentralized
ring allreduce (:class:`RingNode` over per-worker peer endpoints,
:mod:`.peers`); the AM's star rendezvous remains the adjustment-window
and degradation fallback.
"""

from .agent import JoinRejected, WorkerAgent
from .chunks import (
    DEFAULT_CHUNK_BYTES,
    ChunkAssembler,
    ChunkedFetcher,
    ChunkedUploader,
    ChunkStore,
    StateBlob,
    TransferError,
    decode_state_blob,
)
from .collective import (
    DEFAULT_RING_BUCKET_BYTES,
    RingDegraded,
    RingLayout,
    RingMailbox,
    RingNode,
    ring_reference_average,
)
from .job import JobFailed, MultiprocessElasticJob
from .master_service import JobSpec, NetworkedApplicationMaster
from .peers import MemoryPeerHost, PeerHost, TcpPeerHost
from .tcp import TcpServer, TcpTransport, tcp_link
from .transport import (
    FaultAction,
    InMemoryTransport,
    ReliableLink,
    RemoteError,
    RequestTimeout,
    ServerCore,
    Transport,
    TransportClosed,
    TransportFaults,
    memory_link,
)
from .wire import PROTOCOL_VERSION, WireError, params_digest

__all__ = [
    "DEFAULT_CHUNK_BYTES",
    "PROTOCOL_VERSION",
    "ChunkAssembler",
    "ChunkStore",
    "ChunkedFetcher",
    "ChunkedUploader",
    "FaultAction",
    "InMemoryTransport",
    "StateBlob",
    "TransferError",
    "decode_state_blob",
    "DEFAULT_RING_BUCKET_BYTES",
    "JobFailed",
    "JobSpec",
    "JoinRejected",
    "MemoryPeerHost",
    "MultiprocessElasticJob",
    "NetworkedApplicationMaster",
    "PeerHost",
    "RingDegraded",
    "RingLayout",
    "RingMailbox",
    "RingNode",
    "TcpPeerHost",
    "ring_reference_average",
    "ReliableLink",
    "RemoteError",
    "RequestTimeout",
    "ServerCore",
    "TcpServer",
    "TcpTransport",
    "Transport",
    "TransportClosed",
    "TransportFaults",
    "WireError",
    "WorkerAgent",
    "memory_link",
    "params_digest",
    "tcp_link",
]
