"""Write-ahead journal for the networked application master.

The AM appends every externally visible control-plane transition —
membership, fencing epochs, adjustment requests, commit plans, acks,
snapshot blobs, commits, final reports, progress boundaries — to an
append-only journal *before* replying to the worker that caused it
(journal-before-reply).  A standby or restarted AM replays the journal
into a :class:`JournalState`, bumps the fencing epoch past every epoch
ever journaled, and resumes the job: an in-flight 5-step commit is
either completed (all the acks and the snapshot are in the journal) or
cleanly aborted back to the last committed generation.

Two invariants make replay safe:

* **journaled ⊇ replied** — anything a worker could have observed is in
  the journal, so the successor can never *forget* a commitment; work
  the predecessor did but never replied to is simply re-driven by the
  workers' timeout-resend (:class:`~repro.net.transport.ReliableLink`).
* **torn tails are dropped, not fatal** — records carry a checksum over
  their canonical encoding; replay stops at the first corrupt or
  truncated line (a crash mid-``append``), which by the first invariant
  can only lose un-replied work.

Records are JSONL (one JSON object per line) with ndarray/bytes values
riding the same base64 envelopes as the wire codec
(:func:`repro.net.wire.encode_payload`), so a journal is both
human-greppable and able to hold a chunked snapshot blob verbatim.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import typing

from .wire import decode_payload, encode_payload

#: Record kinds the journal knows how to replay.  ``append`` accepts
#: only these so a typo'd kind fails at write time, not at failover.
RECORD_KINDS = frozenset({
    "init",       # job_id, spec payload, initial workers
    "epoch",      # a fencing epoch acquired by some AM incarnation
    "peer",       # a worker's advertised peer address
    "request",    # an accepted adjustment request (auto=True: eviction)
    "plan",       # a minted commit plan (generation, boundary, groups)
    "ack",        # one worker's adjust-directive ack
    "snapshot",   # the replication payload (monolithic or chunked blob)
    "commit",     # a committed adjustment (the point of no return)
    "abort",      # an in-flight plan abandoned back to the last commit
    "final",      # one worker's final report (digest, removed flag)
    "progress",   # a coordination-boundary progress watermark
    "condemn",    # a worker condemned by lease expiry
})


def _checksum(seq: int, kind: str, data: dict) -> str:
    canonical = json.dumps([seq, kind, data], sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


class JournalError(RuntimeError):
    """The journal cannot accept a record (bad kind, closed file)."""


class Journal:
    """Append-only, checksummed record log (file-backed or in-memory).

    With a ``path`` every record is written and flushed as one JSONL
    line before :meth:`append` returns — the durability point the
    journal-before-reply discipline counts on.  Without a path records
    live in a list, which is what in-process failover tests and the
    chaos soak use (the "disk" survives because the successor AM is
    handed the same object).
    """

    def __init__(self, path: "str | None" = None, metrics=None,
                 kinds: "frozenset[str] | None" = None):
        """``kinds`` overrides the accepted record-kind set (default:
        the AM's :data:`RECORD_KINDS`) — the cluster scheduler journals
        its own decision kinds through the same checksummed machinery."""
        self.path = path
        self.metrics = metrics
        self.kinds = RECORD_KINDS if kinds is None else frozenset(kinds)
        self._lock = threading.Lock()
        self._records: "list[dict]" = []
        self._seq = 0
        self._file = None
        self.truncated = 0
        if path is not None:
            existing = self._read_file(path)
            self._records = existing
            self._seq = existing[-1]["seq"] + 1 if existing else 0
            self._file = open(path, "a", encoding="utf-8")

    # -- writing ---------------------------------------------------------------

    def append(self, kind: str, /, **data) -> dict:
        """Durably append one record; returns the decoded record."""
        if kind not in self.kinds:
            raise JournalError(f"unknown journal record kind {kind!r}")
        encoded = encode_payload(dict(data))
        with self._lock:
            seq = self._seq
            self._seq += 1
            record = {
                "seq": seq, "kind": kind, "data": encoded,
                "sum": _checksum(seq, kind, encoded),
            }
            line = json.dumps(record, sort_keys=True, separators=(",", ":"))
            if self._file is not None:
                self._file.write(line + "\n")
                self._file.flush()
                os.fsync(self._file.fileno())
            self._records.append(record)
            if self.metrics is not None:
                self.metrics.counter("am.journal.appends").inc()
                self.metrics.counter("am.journal.bytes").inc(len(line) + 1)
        return {"seq": seq, "kind": kind, "data": dict(data)}

    # -- reading ---------------------------------------------------------------

    def records(self) -> "list[dict]":
        """All valid records, decoded (ndarrays/bytes restored)."""
        with self._lock:
            raw = list(self._records)
        return [
            {"seq": r["seq"], "kind": r["kind"],
             "data": decode_payload(r["data"])}
            for r in raw
        ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def _read_file(self, path: str) -> "list[dict]":
        """Parse an existing journal file, dropping any torn tail."""
        if not os.path.exists(path):
            return []
        records: "list[dict]" = []
        with open(path, encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    seq = record["seq"]
                    kind = record["kind"]
                    data = record["data"]
                    if record.get("sum") != _checksum(seq, kind, data):
                        raise ValueError("checksum mismatch")
                    if kind not in self.kinds:
                        raise ValueError(f"unknown kind {kind!r}")
                    if records and seq != records[-1]["seq"] + 1:
                        raise ValueError("sequence gap")
                except (ValueError, KeyError, TypeError):
                    # A torn or corrupt line ends the journal: nothing
                    # after it can be trusted (sequence is broken).
                    self.truncated += 1
                    break
                records.append(record)
        return records

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None


class JournalState:
    """The control-plane state a journal replays to.

    Pure data — :meth:`NetworkedApplicationMaster.from_journal` turns
    it back into a live AM.  ``last_snapshot`` deliberately survives a
    commit: a joiner whose offer reply was lost keeps polling JOIN
    after the commit, so the successor must still be able to serve the
    committed generation's snapshot.
    """

    def __init__(self):
        self.job_id: "str | None" = None
        self.spec_payload: "dict | None" = None
        self.initial_workers: "tuple[str, ...]" = ()
        self.epoch = 0
        self.peers: "dict[str, str]" = {}
        self.generation = 0
        self.groups: "dict[int, tuple[str, ...]]" = {}
        self.pending_request: "dict | None" = None
        self.plan: "dict | None" = None
        self.acked: "set[str]" = set()
        self.last_snapshot: "dict | None" = None
        self.last_commit: "dict | None" = None
        self.final: "dict[str, dict]" = {}
        self.departed: "dict[str, dict]" = {}
        self.progress = 0
        self.condemned: "set[str]" = set()
        self.adjustments_committed = 0
        self.commit_latencies: "list[float]" = []
        self.replayed = 0

    @classmethod
    def replay(cls, records: "typing.Iterable[dict]") -> "JournalState":
        state = cls()
        for record in records:
            state._apply(record["kind"], record["data"])
            state.replayed += 1
        return state

    def _apply(self, kind: str, data: dict) -> None:
        if kind == "init":
            self.job_id = data["job_id"]
            self.spec_payload = data["spec"]
            self.initial_workers = tuple(data["workers"])
            self.groups[0] = tuple(data["workers"])
        elif kind == "epoch":
            self.epoch = max(self.epoch, int(data["epoch"]))
        elif kind == "peer":
            self.peers[data["worker"]] = data["addr"]
        elif kind == "request":
            self.pending_request = dict(data)
        elif kind == "plan":
            self.plan = dict(data)
            self.acked = set()
            self.groups[int(data["generation"])] = tuple(data["new_group"])
        elif kind == "ack":
            if self.plan is not None and (
                int(data["generation"]) == int(self.plan["generation"])
            ):
                self.acked.add(data["worker"])
        elif kind == "snapshot":
            self.last_snapshot = dict(data)
        elif kind == "commit":
            self.generation = int(data["generation"])
            self.groups[self.generation] = tuple(data["new_group"])
            self.last_commit = dict(data)
            self.plan = None
            self.pending_request = None
            self.acked = set()
            self.adjustments_committed += 1
            if data.get("latency") is not None:
                self.commit_latencies.append(float(data["latency"]))
            for worker, info in (data.get("departed") or {}).items():
                self.departed[worker] = dict(info)
        elif kind == "abort":
            if self.plan is not None:
                self.groups.pop(int(self.plan["generation"]), None)
            self.plan = None
            self.pending_request = None
            self.acked = set()
        elif kind == "final":
            info = {
                "iteration": data.get("iteration"),
                "digest": data.get("digest"),
                "removed": bool(data.get("removed")),
            }
            if info["removed"]:
                self.departed[data["worker"]] = info
            else:
                self.final[data["worker"]] = info
        elif kind == "progress":
            self.progress = max(self.progress, int(data["iteration"]))
        elif kind == "condemn":
            self.condemned.add(data["worker"])

    @property
    def current_group(self) -> "tuple[str, ...]":
        return self.groups.get(self.generation, self.initial_workers)
